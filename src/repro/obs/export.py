"""JSON-lines export and schema validation for observability data.

One line per record.  Record types sharing the file (schema v2):

* ``{"type": "meta", "schema": 2, ...}`` — the header; optionally
  carries ``node`` (which node this export belongs to) and drop
  counters.
* ``{"type": "metric", "kind": "counter"|"gauge"|"histogram", "name",
  "labels", ...}`` — counters/gauges carry ``value``; histograms carry
  ``count``, ``sum`` and ``buckets`` (``[[upper_bound, count], ...]``
  with ``"inf"`` as the overflow bound).
* ``{"type": "trace", "kind": "span"|"event"|"packet", "name", "ts",
  "attrs"}`` — spans additionally carry ``duration``; packet records
  are :mod:`repro.simnet.trace` entries lowered into the obs schema.
* ``{"type": "flight", "name", "ts", "node"}`` — flight-recorder ring
  entries (:mod:`repro.obs.flight`), optionally with ``attrs``.
* ``{"type": "telemetry", "source", "seq", "ts", "interval",
  "counters", "gauges", "histograms"}`` — streaming delta snapshots
  (:mod:`repro.obs.telemetry`): counter/bucket entries are deltas since
  the previous record, gauges and histogram ``count``/``sum`` are
  absolute.  Additive in v2 — readers that predate it skip unknown
  record types.

Trace and flight records may carry the causal-identity fields
``trace_id``/``span_id``/``parent_id`` (16-hex-digit strings) and a
``node`` tag; :mod:`repro.obs.assemble` stitches multiple exports into
span trees on those.  Schema v1 records (no identity fields) remain
valid — the fields are optional.

:func:`validate_record` pins that shape; the smoke test validates whole
exports with :func:`validate_jsonl`, and ``python -m repro.obs.report``
summarizes them.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Union

from .flight import FlightRecorder
from .metrics import MetricsRegistry
from .trace import TraceRecorder

__all__ = [
    "SCHEMA_VERSION",
    "SchemaError",
    "export_jsonl",
    "read_jsonl",
    "iter_jsonl",
    "validate_record",
    "validate_jsonl",
]

SCHEMA_VERSION = 2

_NUMBER = (int, float)
_ID_FIELDS = ("trace_id", "span_id", "parent_id")


class SchemaError(Exception):
    """An exported record does not match the observability schema."""


def _records(
    registry: Optional[MetricsRegistry],
    recorder: Optional[TraceRecorder],
    node: Optional[str],
    flight: Optional[FlightRecorder],
):
    header = {"type": "meta", "schema": SCHEMA_VERSION}
    if node is not None:
        header["node"] = node
    if recorder is not None and recorder.dropped:
        header["dropped_trace_records"] = recorder.dropped
    if flight is not None and flight.dropped:
        header["dropped_flight_records"] = flight.dropped
    yield header
    if registry is not None:
        yield from registry.snapshot()
    if recorder is not None:
        if node is None:
            yield from recorder.records
        else:
            for record in recorder.records:
                if record.get("node") == node:
                    yield record
    if flight is not None:
        yield from flight.records()


def export_jsonl(
    path_or_file: Union[str, IO],
    registry: Optional[MetricsRegistry] = None,
    recorder: Optional[TraceRecorder] = None,
    *,
    node: Optional[str] = None,
    flight: Optional[FlightRecorder] = None,
) -> int:
    """Write metrics and trace records as JSON lines; returns line count.

    With no explicit ``registry``/``recorder``, exports the process-wide
    registry and the active trace recorder (if tracing is enabled).

    ``node`` narrows the export to one node's view: the meta header is
    tagged with it and only trace records stamped with that node are
    written (metrics registries are process-wide, so pass
    ``registry=None`` for strictly per-node files).  ``flight`` appends
    a flight recorder's ring contents.
    """
    from . import get_registry
    from .trace import tracer

    if registry is None and node is None:
        registry = get_registry()
    if recorder is None:
        recorder = tracer()

    def write(out: IO) -> int:
        n = 0
        for record in _records(registry, recorder, node, flight):
            out.write(json.dumps(record, sort_keys=True) + "\n")
            n += 1
        return n

    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as out:
            return write(out)
    return write(path_or_file)


def iter_jsonl(path: str):
    """Lazily parse a JSON-lines file, one record at a time.

    Unlike :func:`read_jsonl` this never materializes the file: large
    chaos exports stream straight into :func:`repro.obs.assemble.assemble`
    with O(1) records held per file.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {lineno}: not JSON: {exc}") from exc


def read_jsonl(path: str) -> list:
    """Parse a JSON-lines file into a list of records (no validation)."""
    return list(iter_jsonl(path))


def _require(record: dict, key: str, types) -> object:
    if key not in record:
        raise SchemaError(f"record missing {key!r}: {record!r}")
    value = record[key]
    if not isinstance(value, types):
        raise SchemaError(f"{key!r} has wrong type in {record!r}")
    return value


def _check_identity(record: dict) -> None:
    for field in _ID_FIELDS:
        if field in record:
            value = record[field]
            ok = isinstance(value, str) and len(value) == 16
            if ok:
                try:
                    int(value, 16)
                except ValueError:
                    ok = False
            if not ok:
                raise SchemaError(
                    f"{field!r} must be 16 hex digits in {record!r}"
                )
    if "parent_id" in record and "span_id" not in record:
        raise SchemaError(f"parent_id without span_id in {record!r}")
    if "span_id" in record and "trace_id" not in record:
        raise SchemaError(f"span_id without trace_id in {record!r}")
    if "node" in record and not isinstance(record["node"], str):
        raise SchemaError(f"'node' has wrong type in {record!r}")


def validate_record(record: object) -> str:
    """Validate one record; returns its ``type``/``kind`` tag."""
    if not isinstance(record, dict):
        raise SchemaError(f"record is not an object: {record!r}")
    rtype = _require(record, "type", str)
    if rtype == "meta":
        _require(record, "schema", int)
        if "node" in record and not isinstance(record["node"], str):
            raise SchemaError(f"'node' has wrong type in {record!r}")
        return "meta"
    if rtype == "metric":
        kind = _require(record, "kind", str)
        _require(record, "name", str)
        labels = _require(record, "labels", dict)
        for key, value in labels.items():
            if not isinstance(key, str) or not isinstance(value, (str,) + _NUMBER):
                raise SchemaError(f"bad label {key!r}={value!r} in {record!r}")
        if kind in ("counter", "gauge"):
            _require(record, "value", _NUMBER)
        elif kind == "histogram":
            _require(record, "count", int)
            _require(record, "sum", _NUMBER)
            buckets = _require(record, "buckets", list)
            for pair in buckets:
                ok = (
                    isinstance(pair, list)
                    and len(pair) == 2
                    and isinstance(pair[0], _NUMBER + (str,))
                    and isinstance(pair[1], int)
                )
                if not ok:
                    raise SchemaError(f"bad histogram bucket {pair!r} in {record!r}")
        else:
            raise SchemaError(f"unknown metric kind {kind!r}")
        return f"metric/{kind}"
    if rtype == "trace":
        kind = _require(record, "kind", str)
        if kind not in ("span", "event", "packet"):
            raise SchemaError(f"unknown trace kind {kind!r}")
        _require(record, "name", str)
        _require(record, "ts", _NUMBER)
        _require(record, "attrs", dict)
        if kind == "span":
            _require(record, "duration", _NUMBER)
        _check_identity(record)
        return f"trace/{kind}"
    if rtype == "telemetry":
        _require(record, "source", str)
        seq = _require(record, "seq", int)
        if seq < 1:
            raise SchemaError(f"'seq' must be >= 1 in {record!r}")
        _require(record, "ts", _NUMBER)
        interval = _require(record, "interval", _NUMBER)
        if interval <= 0:
            raise SchemaError(f"'interval' must be positive in {record!r}")
        for entry in _require(record, "counters", list):
            if not (isinstance(entry, list) and len(entry) == 3):
                raise SchemaError(f"bad counter entry in {record!r}")
            name, labels, delta = entry
            if not isinstance(name, str) or not isinstance(labels, dict):
                raise SchemaError(f"bad counter entry in {record!r}")
            if not isinstance(delta, int) or delta < 0:
                raise SchemaError(
                    f"counter delta must be a non-negative int in {record!r}"
                )
        for entry in _require(record, "gauges", list):
            if not (isinstance(entry, list) and len(entry) == 4):
                raise SchemaError(f"bad gauge entry in {record!r}")
            name, labels, value, updated_at = entry
            if not isinstance(name, str) or not isinstance(labels, dict):
                raise SchemaError(f"bad gauge entry in {record!r}")
            if not isinstance(value, _NUMBER) or not isinstance(
                updated_at, _NUMBER
            ):
                raise SchemaError(f"bad gauge sample in {record!r}")
        for entry in _require(record, "histograms", list):
            if not (isinstance(entry, list) and len(entry) == 7):
                raise SchemaError(f"bad histogram entry in {record!r}")
            name, labels, count_delta, count, total, deltas, bounds = entry
            ok = (
                isinstance(name, str)
                and isinstance(labels, dict)
                and isinstance(count_delta, int)
                and isinstance(count, int)
                and isinstance(total, _NUMBER)
                and isinstance(deltas, list)
                and all(isinstance(d, int) for d in deltas)
                and isinstance(bounds, list)
                and len(deltas) == len(bounds) + 1
            )
            if not ok:
                raise SchemaError(f"bad histogram entry in {record!r}")
        return "telemetry"
    if rtype == "flight":
        _require(record, "name", str)
        _require(record, "ts", _NUMBER)
        _require(record, "node", str)
        if "attrs" in record and not isinstance(record["attrs"], dict):
            raise SchemaError(f"'attrs' has wrong type in {record!r}")
        _check_identity(record)
        return "flight"
    raise SchemaError(f"unknown record type {rtype!r}")


def validate_jsonl(path: str) -> dict:
    """Validate every line of an export; returns ``{tag: count}``."""
    counts: dict[str, int] = {}
    for record in read_jsonl(path):
        tag = validate_record(record)
        counts[tag] = counts.get(tag, 0) + 1
    return counts
