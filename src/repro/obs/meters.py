"""Interval and series measurement helpers (ex ``repro.simnet.stats``).

These predate the metrics registry and remain the convenient tool for
benchmark-style measurement: a :class:`TransferMeter` brackets one
transfer, a :class:`SeriesRecorder` collects the points of one figure
series.  They live here so both backends share them (the old
``repro.simnet.stats`` home is gone).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

__all__ = ["TransferMeter", "SeriesRecorder", "mb_per_s"]


def mb_per_s(nbytes: int, seconds: float) -> float:
    """Throughput in MB/s (1 MB = 1e6 bytes, as the paper reports)."""
    if seconds <= 0:
        return float("inf")
    return nbytes / seconds / 1e6


def _as_clock(clock_or_sim: Union[Callable[[], float], object]) -> Callable[[], float]:
    if callable(clock_or_sim):
        return clock_or_sim
    return lambda: clock_or_sim.now


class TransferMeter:
    """Measures bytes moved between ``start()`` and ``stop()``.

    Accepts either a simulator (anything with a ``.now`` attribute) or a
    zero-argument clock callable, so it works over simulated and
    wall-clock time alike.
    """

    def __init__(self, sim):
        self.sim = sim
        self._clock = _as_clock(sim)
        self.t0: Optional[float] = None
        self.t1: Optional[float] = None
        self.nbytes = 0

    def start(self) -> None:
        self.t0 = self._clock()
        self.t1 = None
        self.nbytes = 0

    def add(self, nbytes: int) -> None:
        self.nbytes += nbytes

    def stop(self) -> None:
        self.t1 = self._clock()

    @property
    def seconds(self) -> float:
        if self.t0 is None:
            raise RuntimeError("meter never started")
        end = self.t1 if self.t1 is not None else self._clock()
        return end - self.t0

    @property
    def throughput(self) -> float:
        """MB/s over the measured interval."""
        return mb_per_s(self.nbytes, self.seconds)


class SeriesRecorder:
    """Collects (x, y) points for a figure series."""

    def __init__(self, name: str):
        self.name = name
        self.points: list[tuple[float, float]] = []

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> list[float]:
        return [y for _x, y in self.points]

    def xs(self) -> list[float]:
        return [x for x, _y in self.points]

    def peak(self) -> float:
        return max(self.ys()) if self.points else 0.0

    def format_rows(self, xfmt: str = "{:>10}", yfmt: str = "{:8.2f}") -> str:
        return "\n".join(
            f"{xfmt.format(int(x) if float(x).is_integer() else x)} {yfmt.format(y)}"
            for x, y in self.points
        )
