"""Summarize observability JSON-lines exports.

Usage::

    python -m repro.obs.report out.jsonl [more.jsonl ...] [--format json]

Prints counters and gauges, histogram statistics, span summaries grouped
by name (count, outcomes, total duration), event counts and — for
telemetry captures — per-source stream summaries.  Multiple files are
merged into one summary (e.g. a run's ``run.jsonl`` plus its telemetry
capture).  ``--format json`` emits the same summary as one JSON object
for tooling (``--json`` is the deprecated spelling).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .export import SchemaError, read_jsonl, validate_record

__all__ = ["summarize", "render", "main"]


def _labels_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def summarize(records: list) -> dict:
    """Reduce validated records to a JSON-able summary structure."""
    summary: dict = {
        "schema": None,
        "metrics": [],
        "spans": {},
        "events": {},
        "telemetry": {},
        "records": len(records),
    }
    for record in records:
        tag = validate_record(record)
        if tag == "meta":
            summary["schema"] = record.get("schema")
        elif tag.startswith("metric/"):
            entry = {
                "kind": record["kind"],
                "name": record["name"],
                "labels": record["labels"],
            }
            if record["kind"] == "histogram":
                entry["count"] = record["count"]
                entry["sum"] = record["sum"]
                entry["mean"] = record["sum"] / record["count"] if record["count"] else 0.0
                entry["buckets"] = record["buckets"]
            else:
                entry["value"] = record["value"]
            summary["metrics"].append(entry)
        elif tag == "trace/span":
            name = record["name"]
            group = summary["spans"].setdefault(
                name, {"count": 0, "total_duration": 0.0, "outcomes": {}}
            )
            group["count"] += 1
            group["total_duration"] += record["duration"]
            outcome = str(record["attrs"].get("outcome", "?"))
            group["outcomes"][outcome] = group["outcomes"].get(outcome, 0) + 1
        elif tag == "trace/event":
            name = record["name"]
            summary["events"][name] = summary["events"].get(name, 0) + 1
        elif tag == "telemetry":
            stream = summary["telemetry"].setdefault(
                record["source"],
                {"records": 0, "last_seq": 0, "last_ts": None, "counters": {}},
            )
            stream["records"] += 1
            stream["last_seq"] = max(stream["last_seq"], record["seq"])
            stream["last_ts"] = record["ts"]
            for name, _labels, delta in record["counters"]:
                stream["counters"][name] = stream["counters"].get(name, 0) + delta
    return summary


def render(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize` output."""
    lines = [f"observability export: {summary['records']} records "
             f"(schema v{summary['schema']})"]
    metrics = summary["metrics"]
    if metrics:
        lines.append("")
        lines.append(f"== metrics ({len(metrics)}) ==")
        for m in metrics:
            key = f"{m['name']}{_labels_str(m['labels'])}"
            if m["kind"] == "histogram":
                lines.append(
                    f"  histogram {key:58s} count={m['count']:<8d} "
                    f"sum={m['sum']:<14.6g} mean={m['mean']:.6g}"
                )
            else:
                lines.append(f"  {m['kind']:9s} {key:58s} {m['value']:.6g}")
    if summary["spans"]:
        lines.append("")
        lines.append(f"== spans ({sum(g['count'] for g in summary['spans'].values())}) ==")
        for name in sorted(summary["spans"]):
            group = summary["spans"][name]
            outcomes = ", ".join(
                f"{count} {outcome}"
                for outcome, count in sorted(group["outcomes"].items())
            )
            lines.append(
                f"  {name:40s} {group['count']:6d} spans  "
                f"total {group['total_duration']:.6g}s  ({outcomes})"
            )
    if summary["events"]:
        lines.append("")
        lines.append(f"== events ({sum(summary['events'].values())}) ==")
        for name in sorted(summary["events"]):
            lines.append(f"  {name:40s} {summary['events'][name]:6d}")
    if summary["telemetry"]:
        total = sum(s["records"] for s in summary["telemetry"].values())
        lines.append("")
        lines.append(f"== telemetry ({total} records) ==")
        for source in sorted(summary["telemetry"]):
            stream = summary["telemetry"][source]
            totals = ", ".join(
                f"{name}+{delta}"
                for name, delta in sorted(stream["counters"].items())
            )
            last_ts = stream["last_ts"]
            ts = f"{last_ts:.3f}" if last_ts is not None else "-"
            lines.append(
                f"  {source:20s} {stream['records']:5d} records  "
                f"seq={stream['last_seq']:<6d} last_ts={ts:10s} {totals}"
            )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize one or more repro.obs JSON-lines exports.",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="path",
        help="JSON-lines file(s) written by export_jsonl / the telemetry "
        "plane; multiple files are merged into one summary",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default=None,
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="deprecated alias for --format json",
    )
    args = parser.parse_args(argv)
    fmt = args.format or ("json" if args.json else "text")
    try:
        records = []
        for path in args.paths:
            records.extend(read_jsonl(path))
        summary = summarize(records)
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"error: invalid export: {exc}", file=sys.stderr)
        return 1
    if fmt == "json":
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        print(render(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
