"""Summarize an observability JSON-lines export.

Usage::

    python -m repro.obs.report out.jsonl [--json]

Prints counters and gauges, histogram statistics, span summaries grouped
by name (count, outcomes, total duration) and event counts.  ``--json``
emits the same summary as one JSON object for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from .export import SchemaError, read_jsonl, validate_record

__all__ = ["summarize", "render", "main"]


def _labels_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def summarize(records: list) -> dict:
    """Reduce validated records to a JSON-able summary structure."""
    summary: dict = {
        "schema": None,
        "metrics": [],
        "spans": {},
        "events": {},
        "records": len(records),
    }
    for record in records:
        tag = validate_record(record)
        if tag == "meta":
            summary["schema"] = record.get("schema")
        elif tag.startswith("metric/"):
            entry = {
                "kind": record["kind"],
                "name": record["name"],
                "labels": record["labels"],
            }
            if record["kind"] == "histogram":
                entry["count"] = record["count"]
                entry["sum"] = record["sum"]
                entry["mean"] = record["sum"] / record["count"] if record["count"] else 0.0
                entry["buckets"] = record["buckets"]
            else:
                entry["value"] = record["value"]
            summary["metrics"].append(entry)
        elif tag == "trace/span":
            name = record["name"]
            group = summary["spans"].setdefault(
                name, {"count": 0, "total_duration": 0.0, "outcomes": {}}
            )
            group["count"] += 1
            group["total_duration"] += record["duration"]
            outcome = str(record["attrs"].get("outcome", "?"))
            group["outcomes"][outcome] = group["outcomes"].get(outcome, 0) + 1
        elif tag == "trace/event":
            name = record["name"]
            summary["events"][name] = summary["events"].get(name, 0) + 1
    return summary


def render(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize` output."""
    lines = [f"observability export: {summary['records']} records "
             f"(schema v{summary['schema']})"]
    metrics = summary["metrics"]
    if metrics:
        lines.append("")
        lines.append(f"== metrics ({len(metrics)}) ==")
        for m in metrics:
            key = f"{m['name']}{_labels_str(m['labels'])}"
            if m["kind"] == "histogram":
                lines.append(
                    f"  histogram {key:58s} count={m['count']:<8d} "
                    f"sum={m['sum']:<14.6g} mean={m['mean']:.6g}"
                )
            else:
                lines.append(f"  {m['kind']:9s} {key:58s} {m['value']:.6g}")
    if summary["spans"]:
        lines.append("")
        lines.append(f"== spans ({sum(g['count'] for g in summary['spans'].values())}) ==")
        for name in sorted(summary["spans"]):
            group = summary["spans"][name]
            outcomes = ", ".join(
                f"{count} {outcome}"
                for outcome, count in sorted(group["outcomes"].items())
            )
            lines.append(
                f"  {name:40s} {group['count']:6d} spans  "
                f"total {group['total_duration']:.6g}s  ({outcomes})"
            )
    if summary["events"]:
        lines.append("")
        lines.append(f"== events ({sum(summary['events'].values())}) ==")
        for name in sorted(summary["events"]):
            lines.append(f"  {name:40s} {summary['events'][name]:6d}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro.obs JSON-lines export.",
    )
    parser.add_argument("path", help="JSON-lines file written by export_jsonl")
    parser.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )
    args = parser.parse_args(argv)
    try:
        records = read_jsonl(args.path)
        summary = summarize(records)
    except FileNotFoundError:
        print(f"error: no such file: {args.path}", file=sys.stderr)
        return 2
    except SchemaError as exc:
        print(f"error: invalid export: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        print(render(summary))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
