"""Causal trace context, propagated on the wire between nodes.

A :class:`TraceContext` is the Dapper-style identity triple
``(trace_id, span_id, parent_id)``.  The *trace_id* names one logical
end-to-end operation (a brokered connect, a routed transfer, an IPL
message); *span_id* names the current unit of work inside it, and
*parent_id* points at the span that caused it.  Every obs record
stamped with the same trace_id — no matter which node produced it —
belongs to the same causal tree, which :mod:`repro.obs.assemble`
reconstructs from per-node JSONL exports.

Two things make this module different from the usual tracing SDK:

* **Ids are deterministic.**  The chaos harness promises byte-identical
  reports for a ``(scenario, seed, plan)`` triple, so ids come from a
  seeded counter (mixed through a fixed 64-bit multiplier for spread),
  not from ``os.urandom`` or the clock.  :func:`seed_ids` resets the
  stream; the chaos runner calls it with the run seed.

* **The wire is authoritative, not an ambient context variable.**  The
  simulator runs nodes as cooperative generator processes in one OS
  thread, so ``contextvars`` cannot isolate per-node context across
  scheduler switches.  :func:`current`/:func:`use` exist for
  *synchronous stretches only* (a driver writing packets inside one
  ``yield from`` chain); anything that crosses a process or host
  boundary must carry the context explicitly in its frames via
  :meth:`TraceContext.encode`.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "TraceContext",
    "WIRE_SIZE",
    "seed_ids",
    "next_id",
    "current",
    "use",
    "set_current",
    "fmt_id",
]

_CTX = struct.Struct("!QQQ")

#: Encoded size of a context on the wire (three big-endian u64s).
WIRE_SIZE = _CTX.size

# SplitMix64 increment: full-period odd multiplier giving well-spread
# ids from a plain counter without sacrificing determinism.
_MIX = 0x9E3779B97F4A7C15
_MASK = (1 << 64) - 1

_seq = 0
_seed = 0


def seed_ids(seed: int = 0) -> None:
    """Reset the deterministic id stream (chaos runs call this)."""
    global _seq, _seed
    _seq = 0
    _seed = seed & _MASK


def next_id() -> int:
    """Allocate the next 64-bit id from the deterministic stream."""
    global _seq
    _seq += 1
    z = (_seed + _seq * _MIX) & _MASK
    # finalizer stage borrowed from splitmix64 for avalanche
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) or 1  # ids are never 0 (0 == "absent")


def fmt_id(value: int) -> str:
    """Render an id the way records carry it: 16 lowercase hex digits."""
    return f"{value & _MASK:016x}"


class TraceContext:
    """Identity of one unit of work inside a distributed trace."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    #: wire size, mirrored on the class for callers that already import it
    WIRE_SIZE = WIRE_SIZE

    def __init__(self, trace_id: int, span_id: int, parent_id: int = 0):
        self.trace_id = trace_id & _MASK
        self.span_id = span_id & _MASK
        self.parent_id = parent_id & _MASK

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace, no parent)."""
        trace_id = next_id()
        return cls(trace_id, next_id(), 0)

    def child(self) -> "TraceContext":
        """A child context: same trace, new span parented on this one."""
        return TraceContext(self.trace_id, next_id(), self.span_id)

    def encode(self) -> bytes:
        """Wire form: 24 bytes, three big-endian u64s."""
        return _CTX.pack(self.trace_id, self.span_id, self.parent_id)

    @classmethod
    def decode(cls, data: bytes) -> "TraceContext":
        if len(data) != WIRE_SIZE:
            raise ValueError(
                f"trace context must be {WIRE_SIZE} bytes, got {len(data)}"
            )
        return cls(*_CTX.unpack(data))

    def ids(self) -> dict:
        """The record fields this context stamps onto obs records."""
        out = {"trace_id": fmt_id(self.trace_id), "span_id": fmt_id(self.span_id)}
        if self.parent_id:
            out["parent_id"] = fmt_id(self.parent_id)
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:
        return (
            f"TraceContext({fmt_id(self.trace_id)}, "
            f"{fmt_id(self.span_id)}, parent={fmt_id(self.parent_id)})"
        )


_current: Optional[TraceContext] = None


def current() -> Optional[TraceContext]:
    """The ambient context, if one is in scope.

    Only meaningful within a synchronous stretch of one simulated
    process — the scheduler does not swap it per process.  Wire-carried
    contexts are authoritative; treat this as a best-effort convenience
    for leaf instrumentation (packet tracers, drivers).
    """
    return _current


def set_current(ctx: Optional[TraceContext]) -> Optional[TraceContext]:
    """Install *ctx* as the ambient context; returns the previous one."""
    global _current
    prev = _current
    _current = ctx
    return prev


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Scope the ambient context to a ``with`` block."""
    prev = set_current(ctx)
    try:
        yield ctx
    finally:
        set_current(prev)
