"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

The registry is the measurable substrate the ROADMAP asks for: every
subsystem (simnet drivers, brokering, the relay, the IPL, the live
backend) reports into one :class:`MetricsRegistry`, keyed by
``(name, labels)``.  Instruments are plain Python objects with O(1)
update paths, so they stay on even in hot loops; time only enters
through an injectable *clock* so the same registry works under simulated
time (``lambda: sim.now``) and wall-clock time (the default) — the grid
monitoring slot of the paper's Figure 5 needs both.

Conventions (see ``docs/OBSERVABILITY.md``):

* counter names end in ``_total`` (monotonic) — ``driver.bytes_total``;
* gauges carry a point-in-time value plus the clock reading when it was
  last set — ``path.rtt_seconds``;
* histograms have *fixed* upper-bound buckets chosen at family creation
  (``DEFAULT_BYTE_BUCKETS`` / ``DEFAULT_SECONDS_BUCKETS``), so merging
  and exporting never requires rebinning.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Callable, Iterable, Optional

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_SECONDS_BUCKETS",
]

#: upper bounds for byte-size histograms (message / block sizes)
DEFAULT_BYTE_BUCKETS = (
    64,
    256,
    1024,
    4096,
    16384,
    65536,
    262144,
    1048576,
    4194304,
)

#: upper bounds for duration histograms (establishment, probes)
DEFAULT_SECONDS_BUCKETS = (
    0.001,
    0.005,
    0.025,
    0.1,
    0.25,
    1.0,
    5.0,
    30.0,
    120.0,
)


class MetricError(Exception):
    """Inconsistent metric usage (kind clash, bucket clash, ...)."""


class Counter:
    """A monotonically increasing count (events, bytes, attempts)."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A point-in-time value; remembers the clock reading when set."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value", "updated_at", "_clock")

    def __init__(self, name: str, labels: dict, clock: Callable[[], float]):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at: Optional[float] = None
        self._clock = clock

    def set(self, value: float) -> None:
        self.value = value
        self.updated_at = self._clock()

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def _reset(self) -> None:
        self.value = 0.0
        self.updated_at = None

    def _snapshot(self) -> dict:
        return {"value": self.value, "updated_at": self.updated_at}


class Histogram:
    """Fixed-bucket distribution; the last bucket is the +inf overflow."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum")

    def __init__(self, name: str, labels: dict, buckets: tuple):
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def bucket_counts(self) -> list:
        """``[(upper_bound, count), ...]`` with ``"inf"`` for overflow."""
        bounds = list(self.buckets) + ["inf"]
        return list(zip(bounds, self.counts))

    def _reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def _snapshot(self) -> dict:
        # copy the bucket counts first and derive ``count`` from the
        # copy: a concurrent observe() may land between the two reads,
        # and buckets summing to count is an invariant telemetry checks
        counts = list(self.counts)
        bounds = list(self.buckets) + ["inf"]
        return {
            "count": sum(counts),
            "sum": self.sum,
            "buckets": [[b, c] for b, c in zip(bounds, counts)],
        }


class _Family:
    """All instruments sharing one metric name (same kind, same buckets)."""

    __slots__ = ("name", "kind", "buckets", "children")

    def __init__(self, name: str, kind: str, buckets: Optional[tuple]):
        self.name = name
        self.kind = kind
        self.buckets = buckets
        self.children: dict = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """The process-wide instrument store, keyed by ``(name, labels)``.

    Asking twice for the same name and label set returns the *same*
    instrument — that is what makes scattered instrumentation sites
    accumulate into one coherent view.  ``clock`` is any zero-argument
    callable returning a float; pass ``lambda: sim.now`` to timestamp
    gauges in simulated time.

    Structure mutation (family/instrument creation) and structure
    iteration (:meth:`snapshot`, :meth:`instruments`, :meth:`reset`,
    ...) are guarded by a lock, so a telemetry publisher may snapshot
    from one thread while the live backend registers instruments in
    another.  Updates on an *existing* instrument (``inc``/``observe``)
    stay lock-free: they are single attribute writes the snapshot path
    tolerates being torn against (a histogram snapshot may run one
    observation behind on ``sum`` — never corrupt).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or time.time
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- clock ---------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the registry clock (e.g. to a new simulator's time)."""
        with self._lock:
            self._clock = clock
            for family in self._families.values():
                if family.kind == "gauge":
                    for gauge in family.children.values():
                        gauge._clock = clock

    # -- instrument access ---------------------------------------------------
    def _family(self, name: str, kind: str, buckets: Optional[tuple]) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise MetricError(
                f"metric {name!r} already registered as a {family.kind}"
            )
        if kind == "histogram" and buckets is not None and buckets != family.buckets:
            raise MetricError(f"metric {name!r} already has different buckets")
        return family

    def counter(self, name: str, **labels) -> Counter:
        with self._lock:
            family = self._family(name, "counter", None)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Counter(name, labels)
            return child

    def gauge(self, name: str, **labels) -> Gauge:
        with self._lock:
            family = self._family(name, "gauge", None)
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Gauge(name, labels, self._clock)
            return child

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        fixed = tuple(buckets) if buckets is not None else None
        with self._lock:
            family = self._family(name, "histogram", fixed)
            if family.buckets is None:
                family.buckets = fixed or DEFAULT_BYTE_BUCKETS
            key = _label_key(labels)
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Histogram(
                    name, labels, family.buckets
                )
            return child

    # -- inspection ----------------------------------------------------------
    def get(self, name: str, **labels):
        """The existing instrument for ``(name, labels)``, or None."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def instruments(self, name: Optional[str] = None) -> list:
        """Every instrument, or every instrument of one family."""
        with self._lock:
            if name is not None:
                family = self._families.get(name)
                return list(family.children.values()) if family else []
            return [
                child
                for family in self._families.values()
                for child in family.children.values()
            ]

    def names(self) -> list:
        with self._lock:
            return sorted(self._families)

    def snapshot(self) -> list:
        """A JSON-able dump: one record per instrument, sorted by key."""
        records = []
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                for key in sorted(family.children):
                    child = family.children[key]
                    record = {
                        "type": "metric",
                        "kind": family.kind,
                        "name": name,
                        "labels": dict(key),
                    }
                    record.update(child._snapshot())
                    records.append(record)
        return records

    def reset(self) -> None:
        """Zero every instrument, keeping families and label sets."""
        with self._lock:
            for family in self._families.values():
                for child in family.children.values():
                    child._reset()

    def clear(self) -> None:
        """Forget every family and instrument."""
        with self._lock:
            self._families.clear()
