"""Stitch per-node observability exports into end-to-end causal traces.

Each node of a run (grid nodes, the relay, SOCKS proxies) exports its own
JSON-lines file (:func:`repro.obs.export.export_jsonl` with ``node=``).
Every record carries the causal identity its :class:`~repro.obs.context.
TraceContext` stamped on it, so the records of one logical operation —
a brokered connect, a routed transfer, a session resume — are scattered
across files but share one ``trace_id``.  This module loads any number
of exports and rebuilds the cross-node span tree:

* **spans** nest by ``parent_id``; spans whose parent was never recorded
  (dropped file, crashed node) become *orphans* attached at the root and
  flagged, not discarded;
* **events**, **packet** records and **flight** entries attach to the
  span whose ``span_id`` they carry (falling back to ``parent_id``);
* per-node **clock skew** is estimated from cross-node parent/child
  edges (a child cannot start before its parent) and subtracted, or
  given explicitly per node;
* each cross-node edge gets a **hop latency** (child start − parent
  start, after skew correction), and every trace gets its **critical
  path** — the chain of spans ending at the latest-finishing leaf.

Usage::

    python -m repro.obs.assemble out/*.jsonl            # text report
    python -m repro.obs.assemble out/*.jsonl --json     # machine form
    python -m repro.obs.assemble out/*.jsonl --trace 00ab12...
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, Optional

from .export import iter_jsonl

__all__ = ["assemble", "assemble_files", "render_text", "main"]


class _Span:
    __slots__ = ("record", "children", "attached", "orphan", "offset")

    def __init__(self, record: dict):
        self.record = record
        self.children: list[_Span] = []
        self.attached: list[dict] = []  # events / packets / flight entries
        self.orphan = False
        self.offset = 0.0  # clock-skew correction for this span's node

    @property
    def span_id(self) -> str:
        return self.record["span_id"]

    @property
    def parent_id(self) -> Optional[str]:
        return self.record.get("parent_id")

    @property
    def node(self) -> str:
        return self.record.get("node", "?")

    @property
    def start(self) -> float:
        return self.record["ts"] + self.offset

    @property
    def end(self) -> float:
        return self.record["ts"] + self.record.get("duration", 0.0) + self.offset


def _is_traced(record: dict) -> bool:
    return record.get("type") in ("trace", "flight") and "trace_id" in record


def _estimate_offsets(roots: list, base: Optional[dict] = None) -> dict:
    """Per-node skew from the happens-before structure of the tree.

    Walking parent → child, a child span cannot start before its parent
    started: if it appears to, the child's node clock is behind by at
    least the difference.  The maximum such deficit per node (relative
    to the root's node, pinned at zero) is that node's offset.  Real
    skews larger than genuine hop latencies are recovered exactly; the
    estimate never *introduces* negative hops.  ``base`` seeds the walk
    with explicit per-node offsets, so estimation only adds what those
    have not already repaired.
    """
    offsets: dict[str, float] = dict(base or {})
    for root in roots:
        offsets.setdefault(root.node, 0.0)
        stack = [root]
        while stack:
            parent = stack.pop()
            poff = offsets.get(parent.node, 0.0)
            for child in parent.children:
                if child.node != parent.node:
                    deficit = (parent.record["ts"] + poff) - (
                        child.record["ts"] + offsets.get(child.node, 0.0)
                    )
                    if deficit > 0:
                        offsets[child.node] = offsets.get(child.node, 0.0) + deficit
                stack.append(child)
    return {node: off for node, off in offsets.items() if off}


def _critical_path(root: _Span) -> list:
    """The chain of spans ending at the latest-finishing descendant."""
    path = [root]
    span = root
    while span.children:
        span = max(span.children, key=lambda s: s.end)
        path.append(span)
    return path


def _span_dict(span: _Span) -> dict:
    rec = span.record
    out = {
        "name": rec["name"],
        "node": span.node,
        "span_id": rec["span_id"],
        "start": round(span.start, 6),
        "duration": round(rec.get("duration", 0.0), 6),
        "attrs": rec.get("attrs", {}),
    }
    if span.orphan:
        out["orphan"] = True
    if span.attached:
        out["events"] = [
            {
                "name": e["name"],
                "node": e.get("node", "?"),
                "ts": round(e["ts"] + span.offset, 6),
                "kind": e.get("kind", e["type"]),
                "attrs": e.get("attrs", {}),
            }
            for e in sorted(span.attached, key=lambda e: e["ts"])
        ]
    if span.children:
        out["children"] = [_span_dict(c) for c in span.children]
    return out


def assemble(
    records: Iterable[dict],
    offsets: Optional[dict] = None,
    adjust_skew: bool = True,
) -> dict:
    """Rebuild causal traces from a pile of schema-v2 records.

    ``records`` may be any iterable — including a lazy generator such as
    :func:`repro.obs.export.iter_jsonl` — and is consumed in a single
    pass: only the traced records themselves are retained (bucketed by
    ``trace_id``), never the full input.

    ``offsets`` maps node name → seconds to *add* to that node's clock;
    when ``adjust_skew`` is true, additional per-node skew is estimated
    from the tree structure on top of any explicit offsets.
    """
    # One streaming pass: dedup + bucket traced records, count the rest.
    # Overlapping exports (a per-node file plus a combined run file, or a
    # re-exported bundle) legitimately repeat records — stitch each one
    # exactly once.
    seen: set = set()
    by_trace: dict[str, list] = {}
    n_traced = 0
    untraced = 0
    for record in records:
        if record.get("type") not in ("trace", "flight"):
            continue
        if not _is_traced(record):
            untraced += 1
            continue
        key = json.dumps(record, sort_keys=True)
        if key in seen:
            continue
        seen.add(key)
        n_traced += 1
        by_trace.setdefault(record["trace_id"], []).append(record)

    traces = []
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        spans: dict[str, _Span] = {}
        loose: list[dict] = []
        for record in group:
            if record.get("type") == "trace" and record.get("kind") == "span":
                sid = record.get("span_id")
                if sid:
                    spans[sid] = _Span(record)
                    continue
            loose.append(record)

        roots: list[_Span] = []
        for span in spans.values():
            parent = spans.get(span.parent_id) if span.parent_id else None
            if parent is not None and parent is not span:
                parent.children.append(span)
            else:
                span.orphan = bool(span.parent_id)
                roots.append(span)
        for span in spans.values():
            span.children.sort(key=lambda s: s.record["ts"])
        roots.sort(key=lambda s: s.record["ts"])

        # Attach events / packets / flight records to their span: primary
        # key is span_id (the record was stamped with the span's own
        # context), fallback is parent_id (a child context whose span was
        # never opened).
        unattached = 0
        for record in loose:
            target = spans.get(record.get("span_id")) or spans.get(
                record.get("parent_id")
            )
            if target is not None:
                target.attached.append(record)
            else:
                unattached += 1

        # Clock-skew correction, then derived timings.
        skew = dict(offsets or {})
        if adjust_skew:
            skew = _estimate_offsets(roots, base=skew)
        if skew:
            for span in spans.values():
                span.offset = skew.get(span.node, 0.0)

        hops = []
        for span in spans.values():
            for child in span.children:
                if child.node != span.node:
                    hops.append(
                        {
                            "from": {"name": span.record["name"], "node": span.node},
                            "to": {"name": child.record["name"], "node": child.node},
                            "latency": round(child.start - span.start, 6),
                        }
                    )
        hops.sort(key=lambda h: (h["from"]["node"], h["to"]["node"], h["latency"]))

        main_root = max(roots, key=lambda s: s.end) if roots else None
        critical = (
            [
                {
                    "name": s.record["name"],
                    "node": s.node,
                    "start": round(s.start, 6),
                    "end": round(s.end, 6),
                }
                for s in _critical_path(main_root)
            ]
            if main_root is not None
            else []
        )

        traces.append(
            {
                "trace_id": trace_id,
                "nodes": sorted({r["node"] for r in group if r.get("node")}),
                "spans": len(spans),
                "events": sum(
                    1 for r in loose if r.get("type") == "trace"
                ),
                "flight": sum(1 for r in loose if r.get("type") == "flight"),
                "orphans": sum(1 for s in spans.values() if s.orphan),
                "unattached": unattached,
                "skew": {n: round(v, 6) for n, v in sorted(skew.items())},
                "roots": [_span_dict(r) for r in roots],
                "hops": hops,
                "critical_path": critical,
            }
        )

    return {
        "traces": traces,
        "records": n_traced,
        "untraced": untraced,
    }


def assemble_files(
    paths: Iterable[str],
    offsets: Optional[dict] = None,
    adjust_skew: bool = True,
) -> dict:
    """Stream JSONL exports into :func:`assemble` (never materialized)."""

    def stream():
        for path in paths:
            yield from iter_jsonl(path)

    return assemble(stream(), offsets=offsets, adjust_skew=adjust_skew)


# -- rendering -----------------------------------------------------------------


def _render_span(span: dict, base: float, out: list, depth: int) -> None:
    pad = "  " * depth
    delta = span["start"] - base
    flags = " (orphan)" if span.get("orphan") else ""
    attrs = span.get("attrs", {})
    outcome = f" outcome={attrs['outcome']}" if "outcome" in attrs else ""
    out.append(
        f"{pad}{span['name']} [{span['node']}]  "
        f"+{delta * 1000:.3f}ms  {span['duration'] * 1000:.3f}ms"
        f"{outcome}{flags}"
    )
    for event in span.get("events", []):
        edelta = event["ts"] - base
        out.append(
            f"{pad}  · {event['name']} [{event['node']}] "
            f"+{edelta * 1000:.3f}ms ({event['kind']})"
        )
    for child in span.get("children", []):
        _render_span(child, base, out, depth + 1)


def render_text(result: dict) -> str:
    """A human-readable multi-trace report."""
    out: list[str] = []
    traces = result["traces"]
    out.append(
        f"{len(traces)} trace(s) from {result['records']} records"
        + (f" ({result['untraced']} untraced)" if result.get("untraced") else "")
    )
    for trace in traces:
        out.append("")
        out.append(
            f"trace {trace['trace_id']}  nodes={','.join(trace['nodes'])}  "
            f"spans={trace['spans']} events={trace['events']} "
            f"flight={trace['flight']}"
            + (f" orphans={trace['orphans']}" if trace["orphans"] else "")
        )
        if trace["skew"]:
            skews = ", ".join(f"{n}={v:+.6f}s" for n, v in trace["skew"].items())
            out.append(f"  clock skew: {skews}")
        base = trace["roots"][0]["start"] if trace["roots"] else 0.0
        for root in trace["roots"]:
            _render_span(root, base, out, 1)
        if trace["hops"]:
            out.append("  hops:")
            for hop in trace["hops"]:
                out.append(
                    f"    {hop['from']['node']} -> {hop['to']['node']}  "
                    f"{hop['latency'] * 1000:.3f}ms  "
                    f"({hop['from']['name']} -> {hop['to']['name']})"
                )
        if trace["critical_path"]:
            chain = " -> ".join(
                f"{s['name']}@{s['node']}" for s in trace["critical_path"]
            )
            total = trace["critical_path"][-1]["end"] - trace["critical_path"][0][
                "start"
            ]
            out.append(f"  critical path ({total * 1000:.3f}ms): {chain}")
    return "\n".join(out)


# -- CLI -----------------------------------------------------------------------


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.assemble",
        description="Stitch per-node obs exports into causal span trees.",
    )
    parser.add_argument("files", nargs="+", help="JSONL export files")
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable form"
    )
    parser.add_argument(
        "--trace", default=None, metavar="PREFIX",
        help="only the trace(s) whose id starts with PREFIX",
    )
    parser.add_argument(
        "--offset", action="append", default=[], metavar="NODE=SECONDS",
        help="explicit clock offset for a node (repeatable)",
    )
    parser.add_argument(
        "--no-skew", action="store_true",
        help="disable automatic clock-skew estimation",
    )
    args = parser.parse_args(argv)

    offsets = {}
    for spec in args.offset:
        node, _, value = spec.partition("=")
        try:
            offsets[node] = float(value)
        except ValueError:
            parser.error(f"bad --offset {spec!r} (want NODE=SECONDS)")

    result = assemble_files(
        args.files, offsets=offsets, adjust_skew=not args.no_skew
    )
    if args.trace:
        result["traces"] = [
            t for t in result["traces"] if t["trace_id"].startswith(args.trace)
        ]
    if args.json:
        json.dump(result, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        print(render_text(result))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
