"""Structured trace events: ``span(name, **attrs)`` / ``event(name, **attrs)``.

Generalizes the packet-level :mod:`repro.simnet.trace` one level up, to
the *protocol* events the paper's mechanisms produce — establishment
attempts and decision-tree fallbacks, driver-stack assembly, relay hops,
per-message send/receive.  Records are plain dicts of JSON-able
attributes so the JSON-lines exporter and the report CLI need no schema
negotiation.

Records may carry a causal identity: pass a
:class:`~repro.obs.context.TraceContext` as ``ctx=`` and the record is
stamped with ``trace_id``/``span_id``/``parent_id`` (16-hex-digit
strings), plus ``node`` when the producing node is known.  Context
allocation happens at the call sites (so identities flow across the
wire whether or not tracing is enabled); this module only stamps them.

Tracing is off by default and every instrumentation site goes through
the module-level :func:`span` / :func:`event` helpers, which collapse to
a no-op when no recorder is installed — hot paths pay one global load
and one ``is None`` test.  Like the metrics registry, a recorder takes
an injectable clock, so spans measure simulated seconds under simnet and
wall-clock seconds under livenet.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from .context import TraceContext

__all__ = [
    "TraceRecorder",
    "Span",
    "enable_tracing",
    "disable_tracing",
    "set_tracer",
    "tracer",
    "span",
    "event",
    "record_span",
]


def _stamp(record: dict, ctx: Optional[TraceContext], node: Optional[str]) -> dict:
    if ctx is not None:
        record.update(ctx.ids())
    if node is not None:
        record["node"] = node
    return record


class TraceRecorder:
    """Collects spans and events; one per tracing session."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        limit: Optional[int] = None,
    ):
        self._clock = clock or time.time
        self.limit = limit
        self.records: list[dict] = []
        self.dropped = 0

    def now(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- recording ------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(record)

    def event(
        self,
        name: str,
        ctx: Optional[TraceContext] = None,
        node: Optional[str] = None,
        **attrs,
    ) -> None:
        self._append(_stamp(
            {"type": "trace", "kind": "event", "name": name,
             "ts": self._clock(), "attrs": attrs},
            ctx, node,
        ))

    def span(
        self,
        name: str,
        ctx: Optional[TraceContext] = None,
        node: Optional[str] = None,
        **attrs,
    ) -> "Span":
        return Span(self, name, attrs, ctx=ctx, node=node)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        ctx: Optional[TraceContext] = None,
        node: Optional[str] = None,
        **attrs,
    ) -> None:
        """Record a span from explicit timestamps (no context manager).

        For producers that observe a region's start and end as separate
        callbacks — the relay sees OPEN and CLOSE frames minutes apart —
        rather than wrapping a code block.
        """
        attrs.setdefault("outcome", "ok")
        self._append(_stamp(
            {"type": "trace", "kind": "span", "name": name,
             "ts": start, "duration": end - start, "attrs": attrs},
            ctx, node,
        ))

    # -- inspection ------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> list:
        return [
            r for r in self.records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> list:
        return [
            r for r in self.records
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


class Span:
    """A timed region; use as a context manager.

    The span is recorded on exit with its duration and an ``outcome``
    attribute — ``"ok"``, or ``"error"`` plus the exception type when the
    body raised.  Set attributes discovered mid-flight with :meth:`set`
    (including an explicit ``outcome`` that overrides the automatic one).

    When constructed with a :class:`TraceContext` the span records that
    identity verbatim — the context *is* the span's name in the causal
    tree, so the same ``ctx`` object can be put on the wire for remote
    children to parent themselves on.
    """

    __slots__ = ("_recorder", "name", "attrs", "ctx", "node", "_t0")

    def __init__(
        self,
        recorder: TraceRecorder,
        name: str,
        attrs: dict,
        ctx: Optional[TraceContext] = None,
        node: Optional[str] = None,
    ):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.ctx = ctx
        self.node = node
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._t0 = self._recorder.now()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        now = self._recorder.now()
        attrs = self.attrs
        if "outcome" not in attrs:
            attrs["outcome"] = "ok" if exc_type is None else "error"
        if exc_type is not None and "error" not in attrs:
            attrs["error"] = exc_type.__name__
        self._recorder._append(_stamp(
            {"type": "trace", "kind": "span", "name": self.name,
             "ts": self._t0, "duration": now - self._t0, "attrs": attrs},
            self.ctx, self.node,
        ))
        return False


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    ctx = None

    def set(self, **_attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_recorder: Optional[TraceRecorder] = None


def enable_tracing(
    clock: Optional[Callable[[], float]] = None,
    limit: Optional[int] = None,
) -> TraceRecorder:
    """Install (and return) a fresh process-wide trace recorder."""
    global _recorder
    _recorder = TraceRecorder(clock=clock, limit=limit)
    return _recorder


def disable_tracing() -> Optional[TraceRecorder]:
    """Stop tracing; returns the recorder that was active, if any."""
    global _recorder
    recorder, _recorder = _recorder, None
    return recorder


def set_tracer(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install ``recorder`` (or None); returns the previous one.

    Lets a scoped tracing session (e.g. one chaos run) restore whatever
    recorder was active before it.
    """
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous


def tracer() -> Optional[TraceRecorder]:
    """The active recorder, or None when tracing is disabled."""
    return _recorder


def span(
    name: str,
    ctx: Optional[TraceContext] = None,
    node: Optional[str] = None,
    **attrs,
):
    """A timed span on the active recorder (no-op context when disabled)."""
    rec = _recorder
    if rec is None:
        return _NULL_SPAN
    return Span(rec, name, attrs, ctx=ctx, node=node)


def event(
    name: str,
    ctx: Optional[TraceContext] = None,
    node: Optional[str] = None,
    **attrs,
) -> None:
    """A point event on the active recorder (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec._append(_stamp(
            {"type": "trace", "kind": "event", "name": name,
             "ts": rec.now(), "attrs": attrs},
            ctx, node,
        ))


def record_span(
    name: str,
    start: float,
    end: float,
    ctx: Optional[TraceContext] = None,
    node: Optional[str] = None,
    **attrs,
) -> None:
    """Record a span from explicit timestamps (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec.record_span(name, start, end, ctx=ctx, node=node, **attrs)
