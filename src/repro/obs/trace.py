"""Structured trace events: ``span(name, **attrs)`` / ``event(name, **attrs)``.

Generalizes the packet-level :mod:`repro.simnet.trace` one level up, to
the *protocol* events the paper's mechanisms produce — establishment
attempts and decision-tree fallbacks, driver-stack assembly, relay hops,
per-message send/receive.  Records are plain dicts of JSON-able
attributes so the JSON-lines exporter and the report CLI need no schema
negotiation.

Tracing is off by default and every instrumentation site goes through
the module-level :func:`span` / :func:`event` helpers, which collapse to
a no-op when no recorder is installed — hot paths pay one global load
and one ``is None`` test.  Like the metrics registry, a recorder takes
an injectable clock, so spans measure simulated seconds under simnet and
wall-clock seconds under livenet.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = [
    "TraceRecorder",
    "Span",
    "enable_tracing",
    "disable_tracing",
    "set_tracer",
    "tracer",
    "span",
    "event",
]


class TraceRecorder:
    """Collects spans and events; one per tracing session."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        limit: Optional[int] = None,
    ):
        self._clock = clock or time.time
        self.limit = limit
        self.records: list[dict] = []
        self.dropped = 0

    def now(self) -> float:
        return self._clock()

    def set_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- recording ------------------------------------------------------------
    def _append(self, record: dict) -> None:
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(record)

    def event(self, name: str, **attrs) -> None:
        self._append(
            {"type": "trace", "kind": "event", "name": name,
             "ts": self._clock(), "attrs": attrs}
        )

    def span(self, name: str, **attrs) -> "Span":
        return Span(self, name, attrs)

    # -- inspection ------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> list:
        return [
            r for r in self.records
            if r["kind"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> list:
        return [
            r for r in self.records
            if r["kind"] == "event" and (name is None or r["name"] == name)
        ]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0


class Span:
    """A timed region; use as a context manager.

    The span is recorded on exit with its duration and an ``outcome``
    attribute — ``"ok"``, or ``"error"`` plus the exception type when the
    body raised.  Set attributes discovered mid-flight with :meth:`set`
    (including an explicit ``outcome`` that overrides the automatic one).
    """

    __slots__ = ("_recorder", "name", "attrs", "_t0")

    def __init__(self, recorder: TraceRecorder, name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._t0 = self._recorder.now()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        now = self._recorder.now()
        attrs = self.attrs
        if "outcome" not in attrs:
            attrs["outcome"] = "ok" if exc_type is None else "error"
        if exc_type is not None and "error" not in attrs:
            attrs["error"] = exc_type.__name__
        self._recorder._append(
            {"type": "trace", "kind": "span", "name": self.name,
             "ts": self._t0, "duration": now - self._t0, "attrs": attrs}
        )
        return False


class _NullSpan:
    """The do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **_attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, _exc_type, _exc, _tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_recorder: Optional[TraceRecorder] = None


def enable_tracing(
    clock: Optional[Callable[[], float]] = None,
    limit: Optional[int] = None,
) -> TraceRecorder:
    """Install (and return) a fresh process-wide trace recorder."""
    global _recorder
    _recorder = TraceRecorder(clock=clock, limit=limit)
    return _recorder


def disable_tracing() -> Optional[TraceRecorder]:
    """Stop tracing; returns the recorder that was active, if any."""
    global _recorder
    recorder, _recorder = _recorder, None
    return recorder


def set_tracer(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install ``recorder`` (or None); returns the previous one.

    Lets a scoped tracing session (e.g. one chaos run) restore whatever
    recorder was active before it.
    """
    global _recorder
    previous, _recorder = _recorder, recorder
    return previous


def tracer() -> Optional[TraceRecorder]:
    """The active recorder, or None when tracing is disabled."""
    return _recorder


def span(name: str, **attrs):
    """A timed span on the active recorder (no-op context when disabled)."""
    rec = _recorder
    if rec is None:
        return _NULL_SPAN
    return Span(rec, name, attrs)


def event(name: str, **attrs) -> None:
    """A point event on the active recorder (no-op when disabled)."""
    rec = _recorder
    if rec is not None:
        rec._append(
            {"type": "trace", "kind": "event", "name": name,
             "ts": rec.now(), "attrs": attrs}
        )
