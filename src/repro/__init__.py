"""repro — reproduction of "Wide-Area Communication for Grids" (HPDC 2004).

An integrated solution to the connectivity, performance and security
problems of grid wide-area communication, re-implemented in Python:

* :mod:`repro.simnet` — deterministic simulated WAN (TCP, firewalls, NAT,
  SOCKS, links with delay/bandwidth/loss).
* :mod:`repro.security` — from-scratch TLS-like security (ChaCha20, DH,
  HKDF, Schnorr certificates).
* :mod:`repro.core` — the paper's contribution: connection-establishment
  methods (client/server, TCP splicing, SOCKS proxy, routed messages), the
  Figure 4 decision tree, and composable link-utilization drivers
  (TCP_Block, parallel streams, compression, TLS).
* :mod:`repro.ipl` — the Ibis Portability Layer: send/receive ports, name
  service, typed messages.
* :mod:`repro.livenet` — the same driver API over real asyncio sockets.
* :mod:`repro.obs` — observability: a process-wide metrics registry and
  structured trace events over both backends, with JSON-lines export.
* :mod:`repro.chaos` — deterministic fault injection: seeded
  ``FaultPlan``s, a scenario runner and end-to-end invariant checks.

The names below are the supported top-level surface; everything is
imported lazily so ``import repro`` stays light.
"""

__version__ = "1.0.0"

#: exported name -> (module, attribute)
_EXPORTS = {
    # scenario / runtime entry points
    "GridScenario": ("repro.core.scenarios", "GridScenario"),
    "GridNode": ("repro.core.node", "GridNode"),
    "Ibis": ("repro.ipl.runtime", "Ibis"),
    "LiveIbis": ("repro.livenet.runtime", "LiveIbis"),
    # connection establishment + utilization
    "BrokeredConnectionFactory": ("repro.core.factory", "BrokeredConnectionFactory"),
    "TlsConfig": ("repro.core.factory", "TlsConfig"),
    "StackSpec": ("repro.core.utilization.spec", "StackSpec"),
    "LayerSpec": ("repro.core.utilization.spec", "LayerSpec"),
    "StackSpecError": ("repro.core.utilization.spec", "StackSpecError"),
    # IPL ports
    "SendPort": ("repro.ipl.ports", "SendPort"),
    "ReceivePort": ("repro.ipl.ports", "ReceivePort"),
    # monitoring / automated selection
    "PathMonitor": ("repro.core.monitor", "PathMonitor"),
    "PathEstimate": ("repro.core.monitor", "PathEstimate"),
    "select_spec": ("repro.core.monitor", "select_spec"),
    # retry / chaos
    "RetryPolicy": ("repro.core.retry", "RetryPolicy"),
    "RetryExhausted": ("repro.core.retry", "RetryExhausted"),
    "FaultPlan": ("repro.chaos", "FaultPlan"),
    "run_chaos": ("repro.chaos", "run_chaos"),
    "ChaosReport": ("repro.chaos", "ChaosReport"),
    # observability
    "MetricsRegistry": ("repro.obs", "MetricsRegistry"),
    "get_registry": ("repro.obs", "get_registry"),
    "set_registry": ("repro.obs", "set_registry"),
    "enable_tracing": ("repro.obs", "enable_tracing"),
    "disable_tracing": ("repro.obs", "disable_tracing"),
    "span": ("repro.obs", "span"),
    "event": ("repro.obs", "event"),
    "export_jsonl": ("repro.obs", "export_jsonl"),
}


def __getattr__(name):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = ["__version__", *sorted(_EXPORTS)]
