"""repro — reproduction of "Wide-Area Communication for Grids" (HPDC 2004).

An integrated solution to the connectivity, performance and security
problems of grid wide-area communication, re-implemented in Python:

* :mod:`repro.simnet` — deterministic simulated WAN (TCP, firewalls, NAT,
  SOCKS, links with delay/bandwidth/loss).
* :mod:`repro.security` — from-scratch TLS-like security (ChaCha20, DH,
  HKDF, Schnorr certificates).
* :mod:`repro.core` — the paper's contribution: connection-establishment
  methods (client/server, TCP splicing, SOCKS proxy, routed messages), the
  Figure 4 decision tree, and composable link-utilization drivers
  (TCP_Block, parallel streams, compression, TLS).
* :mod:`repro.ipl` — the Ibis Portability Layer: send/receive ports, name
  service, typed messages.
* :mod:`repro.livenet` — the same driver API over real asyncio sockets.
"""

__version__ = "1.0.0"


def __getattr__(name):
    # Convenience top-level entry points, imported lazily to keep
    # `import repro` light.
    if name == "GridScenario":
        from .core.scenarios import GridScenario

        return GridScenario
    if name == "Ibis":
        from .ipl.runtime import Ibis

        return Ibis
    if name == "LiveIbis":
        from .livenet.runtime import LiveIbis

        return LiveIbis
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = ["__version__", "GridScenario", "Ibis", "LiveIbis"]
