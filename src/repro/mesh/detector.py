"""Deadline-style phi accrual failure detector.

A full phi-accrual detector models inter-arrival times as a distribution
and reports ``-log10 P(silence this long)``.  Heartbeats here arrive on a
known cadence (the gossip interval), so a two-term approximation is
enough and stays fully deterministic: suspicion is the observed silence
divided by the smoothed inter-arrival interval, with a hard deadline
backstop that *bounds* detection time — the property the chaos
convergence invariant asserts.

The detector never reads a clock; every method takes ``now``, so the sim
relay feeds simulated time and the live relay feeds the event loop clock.
"""

from __future__ import annotations

from typing import Optional

from .config import DEFAULT_MESH_CONFIG, MeshConfig

__all__ = ["DeadlineDetector"]

#: exponential smoothing factor for the inter-arrival estimate
_ALPHA = 0.2

#: floor on the smoothed interval so one burst of rapid gossip cannot
#: collapse the divisor and spuriously suspect a healthy peer
_MIN_INTERVAL = 1e-3


class DeadlineDetector:
    """Per-peer liveness suspicion from heartbeat arrival history."""

    def __init__(self, config: Optional[MeshConfig] = None):
        self.config = config or DEFAULT_MESH_CONFIG
        # peer -> (last_heard, smoothed_interval)
        self._history: dict[str, tuple[float, float]] = {}

    def heard(self, peer: str, now: float) -> None:
        """Record a heartbeat advance (a dominating entry arrived)."""
        prev = self._history.get(peer)
        if prev is None:
            self._history[peer] = (now, self.config.gossip_interval)
            return
        last, interval = prev
        sample = max(now - last, 0.0)
        smoothed = (1 - _ALPHA) * interval + _ALPHA * sample
        self._history[peer] = (now, max(smoothed, _MIN_INTERVAL))

    def last_heard(self, peer: str) -> float:
        entry = self._history.get(peer)
        return entry[0] if entry is not None else float("-inf")

    def phi(self, peer: str, now: float) -> float:
        """Suspicion level: silence measured in smoothed intervals."""
        entry = self._history.get(peer)
        if entry is None:
            return float("inf")
        last, interval = entry
        return max(now - last, 0.0) / max(interval, _MIN_INTERVAL)

    def suspect(self, peer: str, now: float) -> bool:
        """True when the peer should be declared dead.

        Either accrued suspicion crossed ``phi_threshold`` or silence hit
        the hard ``deadline`` — whichever fires first.  The deadline term
        guarantees ``detect_time <= deadline`` once the last heartbeat
        aged out, which is what bounds mesh convergence.
        """
        entry = self._history.get(peer)
        if entry is None:
            return False  # never heard from: not ours to declare
        last, _ = entry
        silence = now - last
        return (
            self.phi(peer, now) >= self.config.phi_threshold
            or silence >= self.config.deadline
        )

    def forget(self, peer: str) -> None:
        self._history.pop(peer, None)

    def reset_clock(self, now: float) -> None:
        """Re-baseline every peer's last-heard time, keeping intervals.

        Used when the *observer* itself was down: silence accumulated
        while it could not listen is not evidence of anyone's death, so
        suspicion restarts from ``now``.
        """
        for peer, (_last, interval) in list(self._history.items()):
            self._history[peer] = (now, interval)
