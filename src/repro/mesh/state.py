"""Gossiped mesh state: what every relay knows about every relay.

The unit of gossip is a :class:`RelayEntry` — one relay's self-description,
versioned by ``(incarnation, seq)``.  ``incarnation`` bumps when the relay
process restarts (a fresh start must dominate stale rumours about its
previous life); ``seq`` is the heartbeat counter the owner bumps every
anti-entropy round.  Merging two views keeps, per relay id, the entry with
the larger ``(incarnation, seq)`` — a join-semilattice, so **any** delivery
order of the same set of entries converges to the same state (the
hypothesis property test in ``tests/mesh`` pins this).

:class:`MeshState` owns a node's (or relay's) view plus the arrival
bookkeeping the failure detector feeds on.  It is backend-agnostic: the
sim relay drives it with simulated time, the live relay with the event
loop clock; nothing here imports either.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

from .. import obs
from ..util.framing import ByteReader, ByteWriter, FrameError
from .config import DEFAULT_MESH_CONFIG, MeshConfig
from .detector import DeadlineDetector

__all__ = ["RelayEntry", "MeshState", "encode_entries", "decode_entries"]


@dataclass(frozen=True)
class RelayEntry:
    """One relay's gossiped self-description."""

    relay_id: str
    addr: tuple[str, int]
    incarnation: int
    seq: int
    #: registered-session count — the weighted-balancing load signal
    load: int = 0
    #: node ids registered at this relay (ownership map for trunk routing)
    nodes: tuple[str, ...] = ()

    @property
    def version(self) -> tuple[int, int]:
        return (self.incarnation, self.seq)

    def dominates(self, other: "RelayEntry") -> bool:
        return self.version > other.version


def encode_entries(entries: Iterable[RelayEntry]) -> bytes:
    """Wire form of a view: deterministic (sorted by relay id)."""
    ordered = sorted(entries, key=lambda e: e.relay_id)
    w = ByteWriter().u32(len(ordered))
    for e in ordered:
        w.lp_str(e.relay_id)
        w.lp_str(e.addr[0]).u32(e.addr[1])
        w.u64(e.incarnation).u64(e.seq).u32(e.load)
        w.u32(len(e.nodes))
        for n in sorted(e.nodes):
            w.lp_str(n)
    return w.getvalue()


def decode_entries(body: bytes) -> list[RelayEntry]:
    r = ByteReader(body)
    count = r.u32()
    if count > 4096:
        raise FrameError(f"implausible mesh view size {count}")
    out = []
    for _ in range(count):
        relay_id = r.lp_str()
        addr = (r.lp_str(), r.u32())
        incarnation, seq, load = r.u64(), r.u64(), r.u32()
        n = r.u32()
        nodes = tuple(r.lp_str() for _ in range(n))
        out.append(
            RelayEntry(relay_id, addr, incarnation, seq, load=load, nodes=nodes)
        )
    return out


class MeshState:
    """A mesh participant's converging view of every relay.

    ``self_id`` is empty for pure observers (host-side mesh clients merge
    relay-pushed views but never originate an entry).
    """

    def __init__(
        self,
        self_id: str = "",
        config: Optional[MeshConfig] = None,
    ):
        self.self_id = self_id
        self.config = config or DEFAULT_MESH_CONFIG
        self.entries: dict[str, RelayEntry] = {}
        self.detector = DeadlineDetector(self.config)
        #: ids currently declared dead, with the detection timestamp —
        #: cleared when a dominating (reincarnated/newer) entry arrives
        self.dead: dict[str, float] = {}
        #: audit trail for the chaos convergence invariant:
        #: (relay_id, last_heard_at, detected_dead_at)
        self.deaths: list[tuple[str, float, float]] = []

    # -- owner side ----------------------------------------------------------
    def refresh_self(
        self, now: float, addr: tuple[str, int], load: int,
        nodes: Iterable[str], incarnation: int,
    ) -> RelayEntry:
        """Bump our own heartbeat (one call per anti-entropy round)."""
        prev = self.entries.get(self.self_id)
        seq = prev.seq + 1 if prev is not None else 1
        entry = RelayEntry(
            self.self_id, addr, incarnation, seq,
            load=load, nodes=tuple(sorted(nodes)),
        )
        self.entries[self.self_id] = entry
        self.detector.heard(self.self_id, now)
        return entry

    # -- merge (the semilattice join) ----------------------------------------
    def merge(self, entries: Iterable[RelayEntry], now: float) -> list[str]:
        """Fold peer entries into the view; returns ids that advanced.

        A dominating entry for a dead relay resurrects it (it restarted
        with a higher incarnation, or fresher heartbeats are flowing
        again through another gossip path).
        """
        advanced = []
        for entry in entries:
            if entry.relay_id == self.self_id:
                # Nobody outranks a relay about itself — but a rumour of a
                # *higher* incarnation means a clock-of-life conflict after
                # restart; adopt the larger incarnation for our next refresh.
                mine = self.entries.get(self.self_id)
                if mine is not None and entry.incarnation > mine.incarnation:
                    self.entries[self.self_id] = replace(
                        mine, incarnation=entry.incarnation
                    )
                continue
            current = self.entries.get(entry.relay_id)
            if current is None or entry.dominates(current):
                self.entries[entry.relay_id] = entry
                self.detector.heard(entry.relay_id, now)
                self.dead.pop(entry.relay_id, None)
                advanced.append(entry.relay_id)
        return advanced

    def restarted(self, now: float) -> None:
        """The observer was down until ``now``: re-baseline suspicion.

        Without this, a relay coming back from a crash would immediately
        declare every peer dead — their "silence" spans its own outage,
        violating the detection bound the convergence invariant asserts.
        """
        self.detector.reset_clock(now)

    # -- failure detection ---------------------------------------------------
    def sweep(self, now: float) -> list[str]:
        """Declare silent peers dead; returns newly dead ids (sorted)."""
        newly = []
        for relay_id in sorted(self.entries):
            if relay_id == self.self_id or relay_id in self.dead:
                continue
            if self.detector.suspect(relay_id, now):
                self.dead[relay_id] = now
                last_heard = self.detector.last_heard(relay_id)
                self.deaths.append((relay_id, last_heard, now))
                # convergence-lag SLI: how far behind this observer's
                # detection ran (telemetry streams it per observer)
                obs.metrics().gauge(
                    "mesh.detect_lag_seconds", observer=self.self_id
                ).set(now - last_heard)
                newly.append(relay_id)
        return newly

    # -- queries -------------------------------------------------------------
    def alive(self) -> list[RelayEntry]:
        """Live relay entries, deterministic order (by relay id)."""
        return [
            e for rid, e in sorted(self.entries.items()) if rid not in self.dead
        ]

    def alive_ids(self) -> list[str]:
        return [e.relay_id for e in self.alive()]

    def owner_of(self, node_id: str) -> Optional[RelayEntry]:
        """A live relay that has ``node_id`` registered (ties: lowest id)."""
        for entry in self.alive():
            if node_id in entry.nodes:
                return entry
        return None

    def digest(self) -> dict[str, tuple[int, int]]:
        return {rid: e.version for rid, e in self.entries.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MeshState {self.self_id or '<observer>'} "
            f"alive={self.alive_ids()} dead={sorted(self.dead)}>"
        )
