"""The host-side route table: which relay carries the next routed link.

The paper's Figure 4 decision tree answers *which method*; when the
answer is routed messages, the mesh adds a second question: *which
relay*.  The route table ranks live relays by a score combining

* **liveness** — dead relays (per the gossiped view) score zero;
* **load** — each registered session at a relay depresses its score by
  ``load_weight`` (weighted balancing: new links spread away from busy
  relays);
* **path quality** — a measured RTT toward the relay (fed from
  :class:`~repro.core.monitor.PathMonitor` ``path.rtt_seconds`` gauges,
  and continuously from a running
  :class:`~repro.tune.loop.LinkTuner`) depresses the score by
  ``rtt_weight``, and a measured loss rate by :data:`loss_weight`;
  unmeasured relays are scored on load alone, so path telemetry refines
  but never gates routing;
* **reachability of the peer** — relays that have the destination node
  registered are strictly preferred over relays that would need a trunk
  hop.

Selection is sticky: an incumbent route is kept until a challenger beats
it by the ``hysteresis`` margin (or the incumbent dies / loses the peer),
so two relays trading small score differences cannot flap a stream's
route.  With an RNG the choice among the top candidates is
score-weighted — deterministic under seed, and balancing under load.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .config import DEFAULT_MESH_CONFIG, MeshConfig
from .state import MeshState, RelayEntry

__all__ = ["RouteTable", "ScoredRoute"]


class ScoredRoute:
    """One candidate relay with its computed score (debug/report surface)."""

    __slots__ = ("entry", "score", "has_peer")

    def __init__(self, entry: RelayEntry, score: float, has_peer: bool):
        self.entry = entry
        self.score = score
        self.has_peer = has_peer

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ScoredRoute {self.entry.relay_id} score={self.score:.3f} "
            f"has_peer={self.has_peer}>"
        )


class RouteTable:
    """Ranks live relays and makes sticky, hysteresis-damped choices."""

    #: score penalty per unit of measured loss toward a relay — tuned so
    #: a 1% loss path scores like an extra ~0.5 units of load
    loss_weight = 50.0

    def __init__(
        self,
        state: MeshState,
        config: Optional[MeshConfig] = None,
        usable: Optional[Callable[[str], bool]] = None,
    ):
        self.state = state
        self.config = config or state.config or DEFAULT_MESH_CONFIG
        #: local usability filter: is this relay one *we* hold a live
        #: registration with?  (mesh clients pass their connection check)
        self.usable = usable or (lambda relay_id: True)
        #: measured RTT toward each relay, seconds (PathMonitor feed)
        self.path_rtt: dict[str, float] = {}
        #: measured loss rate toward each relay (tuner feed)
        self.path_loss: dict[str, float] = {}
        #: incumbent route per destination peer (the hysteresis memory)
        self._current: dict[str, str] = {}
        #: route switches observed (per peer), for the mesh.* gauges
        self.route_changes = 0

    # -- telemetry feed ------------------------------------------------------
    def update_path(self, relay_id: str, rtt: float,
                    loss: Optional[float] = None) -> None:
        """Feed fresh path telemetry (one probe, or a tuner's every step).

        A degraded trunk loses score — and therefore new-route traffic —
        continuously as measurements arrive, without needing the relay to
        die; recovery restores it the same way.
        """
        self.path_rtt[relay_id] = rtt
        if loss is not None:
            self.path_loss[relay_id] = loss

    # -- scoring -------------------------------------------------------------
    def score(self, entry: RelayEntry) -> float:
        cfg = self.config
        s = 1.0 / (1.0 + cfg.load_weight * max(entry.load, 0))
        rtt = self.path_rtt.get(entry.relay_id)
        if rtt is not None and cfg.rtt_weight > 0:
            s /= 1.0 + cfg.rtt_weight * max(rtt, 0.0)
        loss = self.path_loss.get(entry.relay_id)
        if loss is not None and self.loss_weight > 0:
            s /= 1.0 + self.loss_weight * max(loss, 0.0)
        return s

    def candidates(self, peer: str) -> list[ScoredRoute]:
        """Usable live relays, best first; peer-holding relays outrank
        trunk-hop relays regardless of raw score."""
        out = []
        anyone_has_peer = False
        for entry in self.state.alive():
            if not self.usable(entry.relay_id):
                continue
            has_peer = peer in entry.nodes
            anyone_has_peer = anyone_has_peer or has_peer
            out.append(ScoredRoute(entry, self.score(entry), has_peer))
        if anyone_has_peer:
            # Ownership info exists, so honour it strictly; relays without
            # the peer stay as trunk-hop fallbacks at the tail.
            out.sort(key=lambda r: (not r.has_peer, -r.score, r.entry.relay_id))
        else:
            # No ownership info (gossip still converging): score order.
            out.sort(key=lambda r: (-r.score, r.entry.relay_id))
        return out

    # -- selection -----------------------------------------------------------
    def pick(
        self, peer: str, rng: Optional[random.Random] = None
    ) -> Optional[RelayEntry]:
        """The relay to carry the next routed link toward ``peer``.

        Returns ``None`` when no usable live relay exists (the caller
        falls back to waiting/retrying).
        """
        ranked = self.candidates(peer)
        if not ranked:
            self._current.pop(peer, None)
            return None
        by_id = {r.entry.relay_id: r for r in ranked}
        incumbent = by_id.get(self._current.get(peer, ""))
        best = ranked[0]
        if incumbent is not None:
            challenger_wins = (
                best.has_peer and not incumbent.has_peer
            ) or best.score > incumbent.score * (1.0 + self.config.hysteresis)
            if not challenger_wins:
                return incumbent.entry
        # New route.  With an RNG, weight the choice across the top tier
        # (same has_peer class as the best) so concurrent links balance.
        tier = [r for r in ranked if r.has_peer == best.has_peer]
        if rng is not None and len(tier) > 1:
            total = sum(r.score for r in tier)
            roll = rng.random() * total
            chosen = tier[-1]
            for r in tier:
                roll -= r.score
                if roll <= 0:
                    chosen = r
                    break
        else:
            chosen = best
        previous = self._current.get(peer)
        self._current[peer] = chosen.entry.relay_id
        if previous is not None and previous != chosen.entry.relay_id:
            self.route_changes += 1
        return chosen.entry

    def current(self, peer: str) -> Optional[str]:
        return self._current.get(peer)

    def invalidate(self, relay_id: str) -> None:
        """Forget incumbency for routes through a now-dead relay."""
        for peer in [p for p, r in self._current.items() if r == relay_id]:
            del self._current[peer]
