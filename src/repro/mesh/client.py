"""The host-side mesh client: one registration per relay, one route table.

:class:`MeshRelayClient` presents the exact surface of a single
:class:`~repro.core.relay.RelayClient` — ``open_link`` / ``accept_link``
/ ``wait_connected`` / ``close`` / ``drop`` / ``connected`` /
``reconnects`` — so everything built on the single-relay client
(:class:`~repro.core.dispatch.RoutedDispatcher`, the broker, the stack
factory, session recovery) works unchanged on a mesh.  Underneath it
holds one auto-reconnecting sub-client per relay and answers the mesh's
question — *which relay carries this link* — with a
:class:`~repro.mesh.routes.RouteTable` fed by relay-pushed ``T_MESH``
views and ``path.rtt_seconds`` gauges.

Failover falls out of the composition: when the incumbent relay dies,
its sub-client disconnects (making it unusable to the route table) and
the next ``open_link`` — including a session's RESUME re-establishment —
lands on a surviving relay.
"""

from __future__ import annotations

import random
from typing import Callable, Generator, Optional

from .. import obs
from ..core.relay import RelayClient, RelayError, RoutedLink
from ..obs import TraceContext
from ..simnet.engine import Event
from ..simnet.packet import Addr
from ..simnet.tcp import TcpError
from ..util.framing import FrameError
from .config import DEFAULT_MESH_CONFIG, MeshConfig
from .routes import RouteTable
from .state import MeshState

__all__ = ["MeshRelayClient"]


class MeshRelayClient:
    """A node's registrations with every relay of a mesh, route-table picked.

    ``relays`` maps relay id -> address.  Sub-clients always run with
    ``auto_reconnect`` so a crashed-then-restarted relay re-joins the
    usable set without anyone asking.
    """

    def __init__(
        self,
        host,
        node_id: str,
        relays: dict[str, Addr],
        connector: Optional[Callable] = None,
        seed=0,
        config: Optional[MeshConfig] = None,
        keepalive: float = 10.0,
    ):
        self.host = host
        self.sim = host.sim
        self.node_id = node_id
        self.config = config or DEFAULT_MESH_CONFIG
        #: observer view (merged from relay-pushed T_MESH frames)
        self.state = MeshState("", self.config)
        self.table = RouteTable(self.state, self.config, usable=self._usable)
        self._rng = random.Random(f"{seed}:meshclient:{node_id}")
        self.clients: dict[str, RelayClient] = {}
        for rid, addr in sorted(relays.items()):
            client = RelayClient(
                host,
                node_id,
                addr,
                connector=connector,
                auto_reconnect=True,
                keepalive=keepalive,
            )
            client.on_mesh_view = self._on_view
            self.clients[rid] = client
        self._accept_queue: list[RoutedLink] = []
        self._accept_waiters: list[Event] = []
        self.closed = False
        self._pumps_running = False
        self._reported_changes = 0

    # -- RelayClient surface: state ------------------------------------------
    @property
    def connected(self) -> bool:
        return any(c.connected for c in self.clients.values())

    @property
    def reconnects(self) -> int:
        return sum(c.reconnects for c in self.clients.values())

    @property
    def relay_addr(self) -> Addr:
        """Primary relay address (compat with single-relay callers)."""
        first = min(self.clients)
        return self.clients[first].relay_addr

    def usable_relays(self) -> list[str]:
        return [rid for rid in sorted(self.clients) if self._usable(rid)]

    def _usable(self, relay_id: str) -> bool:
        client = self.clients.get(relay_id)
        return client is not None and client.connected

    # -- lifecycle -----------------------------------------------------------
    def connect(self) -> Generator:
        """Register with every relay; at least one must accept us.

        Relays unreachable at boot are retried in the background with the
        sub-client's reconnect policy — the mesh is degraded, not down.
        """
        self.closed = False
        up = 0
        errors: list[str] = []
        for rid in sorted(self.clients):
            client = self.clients[rid]
            try:
                yield from client.connect()
                up += 1
            except (TcpError, RelayError, FrameError, EOFError) as exc:
                errors.append(f"{rid}: {type(exc).__name__}: {exc}")
                self.sim.process(
                    client._reconnect_loop(),
                    name=f"mesh-join-{self.node_id}-{rid}",
                )
        if up == 0:
            raise RelayError(f"no relay reachable: {'; '.join(errors)}")
        if not self._pumps_running:
            self._pumps_running = True
            for rid in sorted(self.clients):
                self.sim.process(
                    self._accept_pump(self.clients[rid]),
                    name=f"mesh-accept-{self.node_id}-{rid}",
                )
        return self

    def wait_connected(self, timeout: float = 30.0) -> Generator:
        """Wait until *any* relay registration is live."""
        deadline = self.sim.now + timeout
        while True:
            if self.connected:
                return self
            if self.closed:
                raise RelayError("relay client closed")
            remaining = deadline - self.sim.now
            if remaining <= 0:
                raise TimeoutError(
                    f"no relay connection up within {timeout}s"
                )
            yield self.sim.timeout(min(0.2, remaining))

    def close(self) -> None:
        self.closed = True
        for client in self.clients.values():
            client.close()

    def drop(self) -> None:
        """Fault-injection hook: sever every relay session abruptly."""
        for client in self.clients.values():
            client.drop()

    # -- mesh view / telemetry -----------------------------------------------
    def _on_view(self, client: RelayClient) -> None:
        self.state.merge(client.mesh_view, self.sim.now)
        obs.metrics().gauge("mesh.relays_usable", node=self.node_id).set(
            len(self.usable_relays())
        )

    def _feed_paths(self) -> None:
        """Fold measured path RTTs into the route table.

        :class:`~repro.core.monitor.PathMonitor` publishes
        ``path.rtt_seconds{peer=...}``; gauges whose peer is one of our
        relays refine that relay's score.  Unmeasured relays keep their
        load-only score, so telemetry sharpens routing without gating it.
        """
        for inst in obs.metrics().instruments("path.rtt_seconds"):
            peer = inst.labels.get("peer")
            if peer in self.clients:
                self.table.update_path(peer, inst.value)

    # -- links ---------------------------------------------------------------
    def pick_relay(self, peer: str) -> Optional[str]:
        """The relay id the route table would use for ``peer`` right now."""
        self._feed_paths()
        entry = self.table.pick(peer, rng=self._rng)
        if entry is not None and self._usable(entry.relay_id):
            return entry.relay_id
        for rid in sorted(self.clients):
            if self._usable(rid):
                return rid
        return None

    def open_link(
        self, peer: str, payload: bytes = b"",
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Open a routed link to ``peer`` through the best live relay."""
        rid = self.pick_relay(peer)
        if rid is None:
            raise RelayError("no usable relay for routed open")
        if self.table.route_changes > self._reported_changes:
            obs.metrics().counter(
                "mesh.route_changes_total", node=self.node_id
            ).inc(self.table.route_changes - self._reported_changes)
            self._reported_changes = self.table.route_changes
        obs.event(
            "mesh.route", ctx=ctx, node=self.node_id, peer=peer, relay=rid
        )
        link = yield from self.clients[rid].open_link(peer, payload, ctx=ctx)
        return link

    def _accept_pump(self, client: RelayClient) -> Generator:
        """Funnel one sub-client's accepted links into the shared queue."""
        while not self.closed:
            link = yield from client.accept_link()
            if self._accept_waiters:
                self._accept_waiters.pop(0).succeed(link)
            else:
                self._accept_queue.append(link)

    def accept_link(self) -> Generator:
        """Wait for a peer-initiated routed link on *any* relay."""
        ev = self.sim.event()
        if self._accept_queue:
            ev.succeed(self._accept_queue.pop(0))
        else:
            self._accept_waiters.append(ev)
        link = yield ev
        return link

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MeshRelayClient {self.node_id} "
            f"usable={self.usable_relays()}>"
        )
