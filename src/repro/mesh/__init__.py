"""The relay mesh: gossip, failure detection and overlay routing.

Generalizes the single gateway relay of the paper's routed-message method
into a self-healing multi-relay overlay:

* relays **gossip** reachability and liveness — seeded anti-entropy
  rounds with per-relay incarnation numbers (:mod:`~repro.mesh.state`);
* a **deadline/phi failure detector** declares silent relays dead within
  a bounded time (:mod:`~repro.mesh.detector`);
* hosts consult a **route table** extending the Figure-4 decision tree
  with live path scores, load-weighted balancing and anti-flap
  hysteresis (:mod:`~repro.mesh.routes`);
* routed/session traffic **fails over mid-stream**: the surviving
  relays keep the destination reachable, and survivable sessions
  renegotiate RESUME through the new route with zero byte loss
  (:mod:`~repro.mesh.client` + :mod:`repro.core.session`).

Everything in ``state``/``detector``/``routes`` is backend-agnostic pure
logic (no clocks, no sockets); the simulated relay
(:mod:`repro.core.relay`) and the live relay (:mod:`repro.livenet.relay`)
drive the same state machines with their own timers.
"""

from .client import MeshRelayClient
from .config import DEFAULT_MESH_CONFIG, MeshConfig
from .detector import DeadlineDetector
from .routes import RouteTable, ScoredRoute
from .state import MeshState, RelayEntry, decode_entries, encode_entries

__all__ = [
    "MeshConfig",
    "DEFAULT_MESH_CONFIG",
    "MeshState",
    "RelayEntry",
    "encode_entries",
    "decode_entries",
    "DeadlineDetector",
    "RouteTable",
    "ScoredRoute",
    "MeshRelayClient",
]
