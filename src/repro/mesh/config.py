"""Tuning knobs for the relay mesh (gossip, failure detection, routing).

One frozen config object travels through every mesh component so a
scenario (or a test) can tighten the timers without touching code.  The
defaults are sized for the chaos harness: a relay death must be detected
and routed around well inside a staged transfer's lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MeshConfig", "DEFAULT_MESH_CONFIG"]


@dataclass(frozen=True)
class MeshConfig:
    """Mesh-wide tuning (see ``docs/MESH.md`` for the derivations).

    gossip_interval:
        Seconds between a relay's anti-entropy rounds.  Each round the
        relay bumps its own heartbeat sequence and exchanges full state
        with one seeded-random live peer (push-pull).
    gossip_jitter:
        Fractional jitter applied to the interval from the seeded RNG so
        relays don't phase-lock (deterministic under seed).
    phi_threshold:
        Suspicion level at which a peer is declared dead: the observed
        silence divided by the smoothed inter-arrival interval (a
        deadline-style phi accrual detector).
    deadline:
        Hard upper bound (seconds) on silence before a peer is declared
        dead regardless of history — bounds convergence time for the
        chaos invariant: ``detect <= deadline + gossip_interval``.
    hysteresis:
        A challenger route must score at least ``(1 + hysteresis)`` times
        the incumbent's score before the route table switches — the
        anti-flapping margin.
    load_weight:
        How strongly a relay's registered-session count depresses its
        route score (0 disables load balancing).
    rtt_weight:
        How strongly a measured path RTT toward a relay (from
        :class:`~repro.core.monitor.PathMonitor` gauges) depresses its
        score (0 ignores path telemetry).
    """

    gossip_interval: float = 0.5
    gossip_jitter: float = 0.2
    phi_threshold: float = 6.0
    deadline: float = 3.0
    hysteresis: float = 0.25
    load_weight: float = 0.1
    rtt_weight: float = 1.0

    @property
    def detect_bound(self) -> float:
        """Worst-case seconds from a relay's death to its being declared
        dead by any live observer (the chaos convergence bound)."""
        return self.deadline + self.gossip_interval * (1.0 + self.gossip_jitter)


DEFAULT_MESH_CONFIG = MeshConfig()
