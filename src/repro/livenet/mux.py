"""Channel multiplexing on the live (asyncio) backend.

The same frame protocol, credit semantics and scheduler contract as
:mod:`repro.mux.endpoint` — the codec (:mod:`repro.mux.frames`) and the
schedulers (:mod:`repro.mux.scheduler`) are shared verbatim; only the
concurrency substrate differs (asyncio tasks and events instead of
simulator processes).  An :class:`AsyncMuxChannel` exposes the live
socket surface (``send_all`` / ``recv`` / ``recv_exactly`` / ``close``),
so the async driver stacks compose over channels unchanged.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Optional

from .. import obs
from ..mux.frames import (
    CLOSE_ERROR,
    CLOSE_GRACEFUL,
    MUX_VERSION,
    MuxProtocolError,
    T_ACCEPT,
    T_CLOSE,
    T_CREDIT,
    T_DATA,
    T_HELLO,
    T_OPEN,
    T_WINDOW,
    decode_frame,
    encode_accept,
    encode_close,
    encode_credit,
    encode_data,
    encode_hello,
    encode_open,
    encode_window,
)
from ..mux.scheduler import RoundRobinScheduler, Scheduler
from ..obs import TraceContext
from ..util.framing import ByteWriter

__all__ = ["AsyncMuxEndpoint", "AsyncMuxChannel", "LiveMuxError"]

_DEFAULT_WINDOW = 65536
_MAX_DATA = 16384


class LiveMuxError(Exception):
    """Live mux endpoint failure."""


async def _write_frame(sock, body: bytes) -> None:
    await sock.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


async def _read_frame(sock) -> bytes:
    header = await sock.recv_exactly(4)
    return await sock.recv_exactly(int.from_bytes(header, "big"))


class AsyncMuxChannel:
    """One logical stream over a shared live socket."""

    muxed = True

    def __init__(self, endpoint: "AsyncMuxEndpoint", channel_id: int,
                 tag: bytes, window: int,
                 ctx: Optional[TraceContext] = None):
        self._ep = endpoint
        self.channel_id = channel_id
        self.tag = tag
        self.ctx = ctx
        self._tx_credit = 0
        self._txq: deque = deque()
        self._tx_buffered = 0
        self._tx_drained = asyncio.Event()
        self._tx_drained.set()
        self._rx_window = window
        self._rx_allowance = window
        self._grant_debt = 0
        self.peer_rx_window = 0
        self._rxq: deque = deque()
        self._rx_available = asyncio.Event()
        self._consumed_since_grant = 0
        self._accepted = asyncio.Event()
        self._local_closed = False
        self._close_sent = False
        self._remote_closed = False
        self._error: Optional[BaseException] = None

    async def send_all(self, data: bytes) -> None:
        if self._error is not None:
            raise self._error
        if self._local_closed:
            raise LiveMuxError(f"mux channel {self.channel_id} closed")
        if not data:
            return
        self._txq.append(bytes(data))
        self._tx_buffered += len(data)
        self._tx_drained.clear()
        self._ep._update_ready(self)
        await self._tx_drained.wait()
        if self._error is not None:
            raise self._error

    async def recv(self, maxbytes: int) -> bytes:
        while not self._rxq:
            if self._error is not None:
                raise self._error
            if self._remote_closed:
                return b""
            self._rx_available.clear()
            await self._rx_available.wait()
        chunk = self._rxq.popleft()
        if len(chunk) > maxbytes:
            self._rxq.appendleft(chunk[maxbytes:])
            chunk = chunk[:maxbytes]
        self._ep._consumed(self, len(chunk))
        return chunk

    async def recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining > 0:
            data = await self.recv(remaining)
            if not data:
                raise EOFError(f"mux channel ended {remaining}/{n} bytes short")
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)

    def close(self) -> None:
        self._ep._close_channel(self, CLOSE_GRACEFUL)

    def abort(self) -> None:
        self._txq.clear()
        self._tx_buffered = 0
        self._ep._close_channel(self, CLOSE_ERROR, reason="aborted")

    def retune_window(self, new_window: int) -> None:
        """Mid-stream credit-window renegotiation (tuner-driven).

        Same semantics as the sim channel: growth grants the delta as
        immediate CREDIT; shrink is graceful — consumption-driven grants
        are withheld until the outstanding allowance drains to the new
        window.  A WINDOW frame announces the new steady state.
        """
        if new_window <= 0:
            raise ValueError(f"window must be positive: {new_window}")
        old = self._rx_window
        if new_window == old:
            return
        self._rx_window = new_window
        delta = new_window - old
        if delta > 0:
            absorbed = min(self._grant_debt, delta)
            self._grant_debt -= absorbed
            grant = delta - absorbed
            if grant > 0:
                self._rx_allowance += grant
                self._ep._send_ctl(encode_credit(self.channel_id, grant))
        else:
            self._grant_debt += -delta
        self._ep._send_ctl(encode_window(self.channel_id, new_window))
        obs.metrics().counter("mux.window_retunes_total",
                              node=self._ep.node).inc()
        obs.event("mux.window_retune", ctx=self.ctx, node=self._ep.node,
                  channel=self.channel_id, old=old, new=new_window,
                  backend="live")

    @property
    def _tx_ready(self) -> bool:
        return (
            self._tx_buffered > 0
            and self._tx_credit > 0
            and self._accepted.is_set()
            and not self._close_sent
            and self._error is None
        )

    def _take_tx(self, limit: int) -> bytes:
        chunk = self._txq.popleft()
        if len(chunk) > limit:
            self._txq.appendleft(chunk[limit:])
            chunk = chunk[:limit]
        self._tx_buffered -= len(chunk)
        return chunk

    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        self._tx_drained.set()
        self._rx_available.set()
        self._accepted.set()


class AsyncMuxEndpoint:
    """Multiplexes logical channels over one live socket."""

    INITIATOR = "initiator"
    RESPONDER = "responder"

    def __init__(self, sock, role: str, *, window: int = _DEFAULT_WINDOW,
                 scheduler: Optional[Scheduler] = None, node: str = ""):
        self.sock = sock
        self.role = role
        self.window = int(window)
        self.node = node
        self.scheduler = scheduler or RoundRobinScheduler()
        self._channels: dict[int, AsyncMuxChannel] = {}
        self._next_cid = 1 if role == self.INITIATOR else 2
        self._pending_accept: deque = deque()
        self._accept_wake = asyncio.Event()
        self._ctlq: deque = deque()
        self._tx_wake = asyncio.Event()
        self._closed = False
        self._error: Optional[BaseException] = None
        self._tasks: list = []

    @classmethod
    async def establish(cls, sock, role: str, *,
                        window: int = _DEFAULT_WINDOW,
                        scheduler: Optional[Scheduler] = None,
                        node: str = "",
                        ctx: Optional[TraceContext] = None
                        ) -> "AsyncMuxEndpoint":
        ctx = ctx or obs.current()
        await _write_frame(sock, encode_hello(MUX_VERSION, window))
        hello = decode_frame(await _read_frame(sock))
        if hello.kind != T_HELLO:
            raise MuxProtocolError(f"expected HELLO, got {hello.name}")
        if hello.version != MUX_VERSION:
            raise MuxProtocolError(
                f"mux version mismatch: ours {MUX_VERSION}, peer {hello.version}")
        obs.event("mux.establish", ctx=ctx, node=node, role=role,
                  backend="live")
        endpoint = cls(sock, role, window=window, scheduler=scheduler,
                       node=node)
        endpoint._tasks = [
            asyncio.ensure_future(endpoint._rx_pump()),
            asyncio.ensure_future(endpoint._tx_pump()),
        ]
        return endpoint

    async def open_channel(self, tag: bytes = b"", *,
                           window: Optional[int] = None,
                           weight: int = 1,
                           ctx: Optional[TraceContext] = None
                           ) -> AsyncMuxChannel:
        self._check_alive()
        ctx = ctx or obs.current() or TraceContext.new()
        cid = self._next_cid
        self._next_cid += 2
        channel = AsyncMuxChannel(self, cid, tag, window or self.window,
                                  ctx=ctx)
        self._channels[cid] = channel
        self.scheduler.add(cid, weight)
        child = ctx.child()
        self._send_ctl(encode_open(cid, channel._rx_window, tag,
                                   child.encode()))
        await channel._accepted.wait()
        if channel._error is not None:
            raise channel._error
        obs.event("mux.channel_open", ctx=child, node=self.node, channel=cid,
                  backend="live")
        return channel

    async def accept_channel(self, tag: Optional[bytes] = None, *,
                             match=None) -> AsyncMuxChannel:
        """Accept the next incoming channel.

        With ``tag``, only a channel whose OPEN carried exactly that tag
        is claimed; with ``match`` (a predicate over the tag bytes), only
        matching channels.  Either lets independent acceptors share one
        endpoint without stealing each other's channels.
        """
        if tag is not None and match is not None:
            raise ValueError("pass tag or match, not both")
        if tag is not None:
            match = lambda t, want=bytes(tag): t == want  # noqa: E731
        while True:
            self._check_alive()
            for channel in self._pending_accept:
                if match is None or match(channel.tag):
                    self._pending_accept.remove(channel)
                    channel._accepted.set()
                    self._send_ctl(encode_accept(channel.channel_id,
                                                 channel._rx_window))
                    return channel
            self._accept_wake.clear()
            await self._accept_wake.wait()

    @property
    def alive(self) -> bool:
        return not self._closed and self._error is None

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        exc = LiveMuxError("mux endpoint closed")
        for channel in list(self._channels.values()):
            channel._fail(exc)
        self._channels.clear()
        self._tx_wake.set()
        self._accept_wake.set()
        for task in self._tasks:
            task.cancel()
        self.sock.close()

    # -- pumps ----------------------------------------------------------------
    async def _rx_pump(self) -> None:
        try:
            while not self._closed:
                frame = decode_frame(await _read_frame(self.sock))
                self._dispatch(frame)
        except asyncio.CancelledError:
            raise
        except (EOFError, ConnectionError, OSError, MuxProtocolError) as exc:
            self._fail(exc)

    async def _tx_pump(self) -> None:
        try:
            while True:
                sent = False
                while self._ctlq:
                    await _write_frame(self.sock, self._ctlq.popleft())
                    sent = True
                channel = self._pick_ready()
                if channel is not None:
                    n = min(_MAX_DATA, channel._tx_credit,
                            channel._tx_buffered)
                    payload = channel._take_tx(n)
                    channel._tx_credit -= len(payload)
                    self._update_ready(channel)
                    await _write_frame(
                        self.sock, encode_data(channel.channel_id, payload))
                    self.scheduler.sent(channel.channel_id, len(payload))
                    if channel._tx_buffered == 0:
                        channel._tx_drained.set()
                        self._flush_pending_close(channel)
                    sent = True
                if sent:
                    continue
                if self._closed or self._error is not None:
                    return
                self._tx_wake.clear()
                await self._tx_wake.wait()
        except asyncio.CancelledError:
            raise
        except (EOFError, ConnectionError, OSError) as exc:
            self._fail(exc)

    def _pick_ready(self) -> Optional[AsyncMuxChannel]:
        try:
            cid = self.scheduler.pick()
        except LookupError:
            return None
        channel = self._channels.get(cid)
        if channel is None or not channel._tx_ready:
            self.scheduler.set_ready(cid, False)
            return None
        return channel

    # -- dispatch --------------------------------------------------------------
    def _dispatch(self, frame) -> None:
        if frame.kind == T_OPEN:
            expected = 0 if self.role == self.INITIATOR else 1
            if frame.channel % 2 != expected or frame.channel in self._channels:
                raise MuxProtocolError(f"bad OPEN channel id {frame.channel}")
            ctx = None
            if frame.ctx:
                try:
                    ctx = TraceContext.decode(frame.ctx)
                except Exception:
                    ctx = None
            channel = AsyncMuxChannel(self, frame.channel, frame.tag,
                                      self.window, ctx=ctx)
            channel._tx_credit = frame.window
            self._channels[frame.channel] = channel
            self.scheduler.add(frame.channel, 1)
            self._pending_accept.append(channel)
            self._accept_wake.set()
        elif frame.kind == T_ACCEPT:
            channel = self._channels.get(frame.channel)
            if channel is None:
                raise MuxProtocolError(
                    f"ACCEPT for unknown channel {frame.channel}")
            channel._tx_credit += frame.window
            channel._accepted.set()
            self._update_ready(channel)
        elif frame.kind == T_DATA:
            channel = self._channels.get(frame.channel)
            if channel is None:
                raise MuxProtocolError(
                    f"DATA for unknown channel {frame.channel}")
            channel._rx_allowance -= len(frame.payload)
            if channel._rx_allowance < 0:
                raise MuxProtocolError(
                    f"credit violation on channel {frame.channel}")
            channel._rxq.append(frame.payload)
            channel._rx_available.set()
        elif frame.kind == T_CREDIT:
            channel = self._channels.get(frame.channel)
            if channel is not None:
                channel._tx_credit += frame.grant
                self._update_ready(channel)
        elif frame.kind == T_CLOSE:
            channel = self._channels.get(frame.channel)
            if channel is None:
                return
            channel._remote_closed = True
            if frame.flags == CLOSE_ERROR and channel._error is None:
                channel._error = LiveMuxError(
                    f"peer aborted channel {frame.channel}: {frame.reason}")
            channel._rx_available.set()
            if channel._close_sent:
                self._drop_channel(channel)
        elif frame.kind == T_WINDOW:
            channel = self._channels.get(frame.channel)
            if channel is not None:
                channel.peer_rx_window = frame.window
        else:
            raise MuxProtocolError(f"unexpected frame {frame.name}")

    # -- hooks -----------------------------------------------------------------
    def _consumed(self, channel: AsyncMuxChannel, n: int) -> None:
        channel._consumed_since_grant += n
        if channel._remote_closed:
            return
        if channel._consumed_since_grant >= max(1, channel._rx_window // 2):
            grant = channel._consumed_since_grant
            channel._consumed_since_grant = 0
            if channel._grant_debt:
                absorbed = min(channel._grant_debt, grant)
                channel._grant_debt -= absorbed
                grant -= absorbed
            if grant <= 0:
                return
            channel._rx_allowance += grant
            self._send_ctl(encode_credit(channel.channel_id, grant))

    def _update_ready(self, channel: AsyncMuxChannel) -> None:
        self.scheduler.set_ready(channel.channel_id, channel._tx_ready)
        if channel._tx_ready:
            self._tx_wake.set()
        elif (
            channel._tx_buffered > 0
            and channel._tx_credit <= 0
            and channel._accepted.is_set()
            and not channel._close_sent
            and channel._error is None
        ):
            # buffered data is waiting on peer credit: the stall signal a
            # LinkTuner's credit_stall_rate feeds on (sim twin: the
            # backpressure counter in mux/endpoint.py)
            obs.metrics().counter(
                "mux.backpressure_waits", node=self.node, backend="live"
            ).inc()

    def _send_ctl(self, frame: bytes) -> None:
        self._check_alive()
        self._ctlq.append(frame)
        self._tx_wake.set()

    def _close_channel(self, channel: AsyncMuxChannel, flags: int,
                       reason: str = "") -> None:
        if channel._local_closed:
            return
        channel._local_closed = True
        channel._pending_close = (flags, reason)
        if channel._tx_buffered == 0 or flags == CLOSE_ERROR:
            self._flush_pending_close(channel)

    def _flush_pending_close(self, channel: AsyncMuxChannel) -> None:
        pending = getattr(channel, "_pending_close", None)
        if pending is None or channel._close_sent:
            return
        flags, reason = pending
        channel._close_sent = True
        if not self._closed and self._error is None:
            self._send_ctl(encode_close(channel.channel_id, flags, reason))
        if channel._remote_closed:
            self._drop_channel(channel)

    def _drop_channel(self, channel: AsyncMuxChannel) -> None:
        self._channels.pop(channel.channel_id, None)
        self.scheduler.remove(channel.channel_id)

    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        for channel in list(self._channels.values()):
            channel._fail(exc)
        self._tx_wake.set()
        self._accept_wake.set()

    def _check_alive(self) -> None:
        if self._error is not None:
            raise self._error
        if self._closed:
            raise LiveMuxError("mux endpoint closed")
