"""Async driver stack: the same drivers over real sockets.

Wire-compatible with the simulated drivers — identical block framing,
striping layout (header on stream ``n % N``, deterministic round-robin
fragments), compression flag bytes and TLS record format — so the two
backends are two IO bindings of one protocol suite.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from typing import Iterable, Optional, Sequence

from .. import obs
from ..obs import TraceContext
from ..core.utilization.compression import FLAG_DEFLATE, FLAG_RAW
from ..core.utilization.parallel import DEFAULT_FRAGMENT
from ..security.certs import Certificate
from ..security.handshake import ClientHandshake, Identity, ServerHandshake
from ..security.record import RecordError
from .transport import LiveSocket

__all__ = [
    "AsyncDriver",
    "AsyncTcpBlockDriver",
    "AsyncParallelStreamsDriver",
    "AsyncCompressionDriver",
    "AsyncTlsDriver",
    "AsyncBlockChannel",
]


class AsyncDriver:
    """Block-oriented async driver interface."""

    async def send_block(self, block: bytes) -> None:
        raise NotImplementedError

    async def recv_block(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class AsyncTcpBlockDriver(AsyncDriver):
    """Length-prefixed blocks over one live socket.

    Takes ``link`` like its simulated twin; the old ``sock`` keyword (and
    attribute) still work.
    """

    name = "tcp_block"

    def __init__(
        self,
        link: Optional[LiveSocket] = None,
        host=None,
        *,
        sock: Optional[LiveSocket] = None,
    ):
        if link is None:
            link = sock
        if link is None:
            raise ValueError("tcp_block driver needs a socket")
        self.link = link
        self.host = host

    @property
    def sock(self) -> LiveSocket:
        return self.link

    async def send_block(self, block: bytes) -> None:
        await self.link.send_all(struct.pack("!I", len(block)) + block)
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="tx", backend="live"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="tx", backend="live"
        ).observe(len(block))

    async def recv_block(self) -> bytes:
        header = await self.link.recv_exactly(4)
        length = struct.unpack("!I", header)[0]
        block = await self.link.recv_exactly(length)
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="rx", backend="live"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="rx", backend="live"
        ).observe(len(block))
        return block

    def close(self) -> None:
        self.link.close()


class AsyncParallelStreamsDriver(AsyncDriver):
    """Striping over N live sockets (same layout as the sim driver).

    Sender-side concurrency comes from per-stream writer tasks behind
    queues, receiver-side from eager reader tasks — mirroring the
    simulated implementation.
    """

    name = "parallel"

    def __init__(
        self,
        links: Optional[Sequence[LiveSocket]] = None,
        host=None,
        fragment: int = DEFAULT_FRAGMENT,
        *,
        socks: Optional[Sequence[LiveSocket]] = None,
    ):
        if links is None:
            links = socks
        if not links:
            raise ValueError("parallel driver needs at least one socket")
        self.links = list(links)
        self.host = host
        self.fragment = fragment
        self._send_seq = 0
        self._recv_seq = 0
        self._queues = [asyncio.Queue(maxsize=8) for _ in self.links]
        self._writers = [
            asyncio.ensure_future(self._writer(q, s))
            for q, s in zip(self._queues, self.links)
        ]
        obs.metrics().gauge(
            "driver.streams", driver=self.name, backend="live"
        ).set(len(self.links))

    @property
    def socks(self) -> list:
        return self.links

    @property
    def nstreams(self) -> int:
        return len(self.links)

    async def _writer(self, queue: asyncio.Queue, sock: LiveSocket) -> None:
        while True:
            item = await queue.get()
            if item is None:
                sock.close()
                return
            await sock.send_all(item)

    async def send_block(self, block: bytes) -> None:
        n = self.nstreams
        start = self._send_seq % n
        self._send_seq += 1
        await self._queues[start].put(struct.pack("!I", len(block)))
        for i, offset in enumerate(range(0, len(block), self.fragment)):
            await self._queues[(start + i) % n].put(
                block[offset : offset + self.fragment]
            )
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="tx", backend="live"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="tx", backend="live"
        ).observe(len(block))

    async def recv_block(self) -> bytes:
        n = self.nstreams
        start = self._recv_seq % n
        self._recv_seq += 1
        header = await self.links[start].recv_exactly(4)
        length = struct.unpack("!I", header)[0]
        parts = []
        remaining = length
        i = 0
        while remaining > 0:
            take = min(self.fragment, remaining)
            parts.append(await self.links[(start + i) % n].recv_exactly(take))
            remaining -= take
            i += 1
        block = b"".join(parts)
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="rx", backend="live"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="rx", backend="live"
        ).observe(len(block))
        return block

    def close(self) -> None:
        for queue in self._queues:
            queue.put_nowait(None)


class AsyncCompressionDriver(AsyncDriver):
    """Per-block zlib filter (same flag bytes as the sim driver)."""

    name = "compress"

    def __init__(self, child: AsyncDriver, host=None, level: int = 1):
        self.child = child
        self.host = host
        self.level = level
        self.bytes_in = 0
        self.bytes_out = 0

    @property
    def ratio(self) -> float:
        if self.bytes_out == 0:
            return 1.0
        return self.bytes_in / self.bytes_out

    async def send_block(self, block: bytes) -> None:
        deflated = zlib.compress(block, self.level)
        if len(deflated) < len(block):
            payload = bytes([FLAG_DEFLATE]) + deflated
        else:
            payload = bytes([FLAG_RAW]) + block
        self.bytes_in += len(block)
        self.bytes_out += len(payload)
        reg = obs.metrics()
        reg.counter(
            "compress.bytes_total", driver=self.name, stage="in", backend="live"
        ).inc(len(block))
        reg.counter(
            "compress.bytes_total", driver=self.name, stage="out", backend="live"
        ).inc(len(payload))
        reg.gauge("compress.ratio", driver=self.name, backend="live").set(self.ratio)
        await self.child.send_block(payload)

    async def recv_block(self) -> bytes:
        payload = await self.child.recv_block()
        flag, body = payload[0], payload[1:]
        if flag == FLAG_DEFLATE:
            return zlib.decompress(body)
        return body

    def close(self) -> None:
        self.child.close()


class AsyncTlsDriver(AsyncDriver):
    """The sans-IO handshake + record layer over an async sub-driver."""

    name = "tls"

    def __init__(self, child: AsyncDriver, host=None):
        self.child = child
        self.host = host
        self.session = None

    async def handshake_client(
        self,
        trust_anchors: Iterable[Certificate],
        identity: Optional[Identity] = None,
        expected_server: Optional[str] = None,
    ) -> None:
        hs = ClientHandshake(
            trust_anchors=trust_anchors,
            identity=identity,
            expected_server=expected_server,
        )
        await self.child.send_block(hs.hello())
        server_hello = await self.child.recv_block()
        finished, self.session = hs.finish(server_hello)
        await self.child.send_block(finished)

    async def handshake_server(
        self,
        identity: Identity,
        trust_anchors: Optional[Iterable[Certificate]] = None,
        require_client_auth: bool = False,
    ) -> None:
        hs = ServerHandshake(
            identity=identity,
            trust_anchors=trust_anchors,
            require_client_auth=require_client_auth,
        )
        client_hello = await self.child.recv_block()
        await self.child.send_block(hs.respond(client_hello))
        self.session = hs.finish(await self.child.recv_block())

    @property
    def peer_subject(self) -> Optional[str]:
        return self.session.peer_subject if self.session else None

    async def send_block(self, block: bytes) -> None:
        if self.session is None:
            raise RuntimeError("TLS handshake not completed")
        await self.child.send_block(self.session.seal(block))

    async def recv_block(self) -> bytes:
        if self.session is None:
            raise RuntimeError("TLS handshake not completed")
        record = await self.child.recv_block()
        try:
            return self.session.open(record)
        except RecordError as exc:
            raise RuntimeError(f"record authentication failed: {exc}") from exc

    def close(self) -> None:
        self.child.close()


class AsyncBlockChannel:
    """Buffered channel + framed messages over an async driver stack."""

    #: message frame header — must match the simulated BlockChannel's
    #: (flags u8, bit 0 = trace context follows; length u32)
    _MSG_HDR = struct.Struct("!BI")
    _F_CTX = 1

    def __init__(self, driver: AsyncDriver, block_size: int = 65536):
        self.driver = driver
        self.block_size = block_size
        self._out = bytearray()
        self._in = bytearray()
        self._eof = False
        #: trace context carried by the most recently received message
        self.last_ctx = None

    async def write(self, data: bytes) -> None:
        self._out.extend(data)
        while len(self._out) >= self.block_size:
            block = bytes(self._out[: self.block_size])
            del self._out[: self.block_size]
            await self.driver.send_block(block)

    async def flush(self) -> None:
        if self._out:
            block = bytes(self._out)
            self._out.clear()
            await self.driver.send_block(block)

    async def read(self, maxbytes: int) -> bytes:
        while not self._in and not self._eof:
            try:
                self._in.extend(await self.driver.recv_block())
            except EOFError:
                self._eof = True
        take = bytes(self._in[:maxbytes])
        del self._in[: len(take)]
        return take

    async def read_exactly(self, n: int) -> bytes:
        parts = []
        remaining = n
        while remaining > 0:
            data = await self.read(remaining)
            if not data:
                raise EOFError(f"channel ended with {remaining}/{n} bytes missing")
            parts.append(data)
            remaining -= len(data)
        return b"".join(parts)

    async def send_message(self, payload: bytes, ctx=None) -> None:
        ctx = ctx or obs.current()
        flags = self._F_CTX if ctx is not None else 0
        await self.write(self._MSG_HDR.pack(flags, len(payload)))
        if ctx is not None:
            await self.write(ctx.encode())
        await self.write(payload)
        await self.flush()
        obs.event("channel.message", ctx=ctx, direction="tx", bytes=len(payload))

    async def recv_message(self) -> bytes:
        header = await self.read_exactly(self._MSG_HDR.size)
        flags, length = self._MSG_HDR.unpack(header)
        ctx = None
        if flags & self._F_CTX:
            blob = await self.read_exactly(TraceContext.WIRE_SIZE)
            try:
                ctx = TraceContext.decode(blob)
            except ValueError:
                ctx = None
        self.last_ctx = ctx
        payload = await self.read_exactly(length)
        obs.event("channel.message", ctx=ctx, direction="rx", bytes=len(payload))
        return payload

    def close(self) -> None:
        self.driver.close()
