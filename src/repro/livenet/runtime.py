"""LiveIbis: the Ibis runtime over real sockets.

The paper's §8 plans "a second implementation" (PadicoTM) to validate the
architecture; this is ours.  The same layering as :mod:`repro.ipl.runtime`
— name service, relay registration, port-connect requests, negotiated
driver stacks, typed messages — bound to asyncio instead of the simulator.

Establishment on a real network from user space cannot manufacture
middlebox traversal, so the live decision list is: direct TCP to the
peer's advertised service listener, falling back to relay-routed messages
— exactly the bootstrap-capable subset of Figure 4.  The full method
matrix lives in the simulator.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
from typing import Optional, Tuple

from .. import obs
from ..core.addressing import EndpointInfo
from ..core.utilization.spec import StackSpec
from ..ipl.serialization import MessageReader, MessageWriter
from ..util.framing import ByteReader, ByteWriter
from ..mux import DEFAULT_WINDOW
from ..mux.scheduler import make_scheduler
from .drivers import (
    AsyncBlockChannel,
    AsyncCompressionDriver,
    AsyncParallelStreamsDriver,
    AsyncTcpBlockDriver,
    AsyncTlsDriver,
)
from .mux import AsyncMuxEndpoint
from .registry import LiveRegistryClient
from .relay import LiveRelayClient
from .transport import LiveListener, LiveSocket, live_connect, live_listen

__all__ = ["LiveIbis", "LiveIbisError", "LiveSendPort", "LiveReceivePort"]

REQ_PORT_CONNECT = 1
RESP_OK = 0
RESP_ERR = 1

Addr = Tuple[str, int]


class LiveIbisError(Exception):
    """Live runtime failure."""


async def _write_frame(stream, body: bytes) -> None:
    await stream.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


async def _read_frame(stream) -> bytes:
    header = await stream.recv_exactly(4)
    return await stream.recv_exactly(int.from_bytes(header, "big"))


def _typed_spec(spec) -> StackSpec:
    if not isinstance(spec, StackSpec):
        raise TypeError(
            f"expected StackSpec, got {type(spec).__name__}; the string form "
            f"is wire-only — use StackSpec.parse(...)"
        )
    return spec


def _build_stack(spec, socks: list, tls_config=None):
    """Assemble async drivers from a stack spec (subset of the sim specs)."""
    parsed = _typed_spec(spec)
    if parsed.session is not None:
        raise LiveIbisError(
            "survivable sessions are simulator-only; the live backend "
            "cannot wrap its sockets in a session layer yet"
        )
    bottom = parsed.bottom
    if bottom.name == "tcp_block":
        driver = AsyncTcpBlockDriver(socks[0])
    else:
        driver = AsyncParallelStreamsDriver(
            socks, fragment=int(bottom.get("fragment", 16384))
        )
    for layer in reversed(parsed.filters):
        if layer.name in ("compress", "adaptive"):
            driver = AsyncCompressionDriver(driver, level=int(layer.get("level", 1)))
        elif layer.name == "tls":
            driver = AsyncTlsDriver(driver)
        else:
            raise LiveIbisError(
                f"layer {layer.name!r} unsupported on the live backend"
            )
    obs.event(
        "stack.built", spec=str(parsed), links=len(socks), backend="live"
    )
    return driver


class LiveWriteMessage(MessageWriter):
    """A message under construction on a live send port."""

    def __init__(self, port: "LiveSendPort"):
        super().__init__()
        self._port = port

    async def finish(self) -> int:
        payload = self.getvalue()
        for channel in self._port.channels.values():
            await channel.send_message(payload)
        self._port.messages_sent += 1
        return len(payload)


class LiveSendPort:
    """Sending endpoint: connect to named receive ports, send messages."""

    def __init__(self, runtime: "LiveIbis", name: str):
        self.runtime = runtime
        self.name = name
        self.channels: dict[str, AsyncBlockChannel] = {}
        self.messages_sent = 0

    async def connect(self, port_name: str, spec: Optional[StackSpec] = None) -> None:
        if port_name in self.channels:
            raise LiveIbisError(f"already connected to {port_name!r}")
        channel = await self.runtime._connect_port(port_name, spec)
        self.channels[port_name] = channel

    def new_message(self) -> LiveWriteMessage:
        if not self.channels:
            raise LiveIbisError(f"send port {self.name!r} is not connected")
        return LiveWriteMessage(self)

    def close(self) -> None:
        for channel in self.channels.values():
            channel.close()
        self.channels.clear()


class LiveReceivePort:
    """Receiving endpoint: fans incoming channels into one message queue."""

    def __init__(self, runtime: "LiveIbis", name: str):
        self.runtime = runtime
        self.name = name
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pumps: list[asyncio.Task] = []

    def _attach(self, channel: AsyncBlockChannel, origin: str) -> None:
        self._pumps.append(asyncio.ensure_future(self._pump(channel, origin)))

    async def _pump(self, channel: AsyncBlockChannel, origin: str) -> None:
        try:
            while True:
                payload = await channel.recv_message()
                message = MessageReader(payload)
                message.origin = origin
                await self._queue.put(message)
        except (EOFError, ConnectionError, asyncio.CancelledError):
            return

    async def receive(self) -> MessageReader:
        return await self._queue.get()

    def close(self) -> None:
        for task in self._pumps:
            task.cancel()


class LiveIbis:
    """One live Ibis instance."""

    def __init__(
        self,
        name: str,
        registry_addr: Addr,
        relay_addr: Addr,
        default_spec=None,
        listen_host: str = "127.0.0.1",
    ):
        self.name = name
        self.default_spec = (
            StackSpec.tcp() if default_spec is None else _typed_spec(default_spec)
        )
        self.registry = LiveRegistryClient(registry_addr)
        self.relay = LiveRelayClient(name, relay_addr)
        self.listen_host = listen_host
        self.listener: Optional[LiveListener] = None
        self.receive_ports: dict[str, LiveReceivePort] = {}
        self._tasks: list[asyncio.Task] = []
        self.info: Optional[EndpointInfo] = None
        #: initiator side: peer name -> (endpoint id, shared mux endpoint)
        self._shared_mux: dict[str, tuple[int, AsyncMuxEndpoint]] = {}
        #: responder side: (peer name, endpoint id) -> shared mux endpoint
        self._shared_mux_resp: dict[tuple[str, int], AsyncMuxEndpoint] = {}
        self._mux_ids = itertools.count(1)

    async def start(self) -> "LiveIbis":
        self.listener = await live_listen(self.listen_host, 0)
        await self.registry.connect()
        # The node's service address travels inside EndpointInfo:
        # local_ip holds the listener host, open_ports[0] the service port.
        self.info = EndpointInfo(
            node_id=self.name,
            local_ip=self.listener.addr[0],
            open_ports=(self.listener.port,),
        )
        await self.registry.register(self.name, self.info)
        await self.relay.connect()
        self._tasks.append(asyncio.ensure_future(self._direct_service_loop()))
        self._tasks.append(asyncio.ensure_future(self._routed_service_loop()))
        return self

    async def leave(self) -> None:
        for port in self.receive_ports.values():
            port.close()
        for _eid, endpoint in self._shared_mux.values():
            endpoint.close()
        for endpoint in self._shared_mux_resp.values():
            endpoint.close()
        self._shared_mux.clear()
        self._shared_mux_resp.clear()
        for task in self._tasks:
            task.cancel()
        await self.registry.leave(self.name)
        self.registry.close()
        self.relay.close()
        if self.listener is not None:
            self.listener.close()

    # -- ports ---------------------------------------------------------------
    async def create_receive_port(self, port_name: str) -> LiveReceivePort:
        if port_name in self.receive_ports:
            raise LiveIbisError(f"receive port {port_name!r} exists")
        port = LiveReceivePort(self, port_name)
        await self.registry.register_port(port_name, self.name)
        self.receive_ports[port_name] = port
        return port

    def create_send_port(self, port_name: str) -> LiveSendPort:
        return LiveSendPort(self, port_name)

    async def elect(self, election: str) -> str:
        return await self.registry.elect(election, self.name)

    # -- connecting --------------------------------------------------------------
    async def _connect_port(self, port_name: str, spec):
        parsed = self.default_spec if spec is None else _typed_spec(spec)
        owner, owner_info = await self.registry.lookup_port(port_name)
        ctx = obs.current() or obs.TraceContext.new()
        with obs.span(
            "port.connect", ctx=ctx, port=port_name, node=self.name,
            backend="live",
        ):
            service = await self._open_service(owner, owner_info)
            request = (
                ByteWriter()
                .u8(REQ_PORT_CONNECT)
                .lp_str(port_name)
                .lp_str(self.name)
                .getvalue()
            )
            await _write_frame(service, request)
            reply = ByteReader(await _read_frame(service))
            if reply.u8() != RESP_OK:
                raise LiveIbisError(f"connect rejected: {reply.lp_str()}")
            # Stack agreement + data connections (direct TCP or routed).
            agreement = ByteWriter().lp_str(str(parsed)).u32(65536)
            n = parsed.links_required
            if parsed.mux is not None:
                # One shared data connection per peer; every logical link
                # is a multiplexed channel over it.  The agreement names
                # the endpoint (eid) so later connects to the same peer
                # reuse it, and a fresh nonce tags this conversation's
                # channels so concurrent connects cannot steal them —
                # the same scheme as the sim factory.
                nonce = next(self._mux_ids)
                cached = self._shared_mux.get(owner)
                if cached is not None and not cached[1].alive:
                    self._shared_mux.pop(owner, None)
                    cached = None
                reuse = 1 if cached is not None else 0
                eid = cached[0] if cached is not None else next(self._mux_ids)
                agreement.u8(reuse).u64(eid).u64(nonce)
                await _write_frame(service, agreement.getvalue())
                if cached is not None:
                    endpoint = cached[1]
                    obs.event(
                        "mux.reuse", ctx=ctx, node=self.name, peer=owner,
                        backend="live",
                    )
                else:
                    sock = await self._open_data(
                        owner, owner_info, service, ctx=ctx
                    )
                    endpoint = await AsyncMuxEndpoint.establish(
                        sock,
                        AsyncMuxEndpoint.INITIATOR,
                        window=int(parsed.mux.get("win", DEFAULT_WINDOW)),
                        scheduler=make_scheduler(
                            str(parsed.mux.get("sched", "rr"))
                        ),
                        node=self.name,
                        ctx=ctx,
                    )
                    self._shared_mux[owner] = (eid, endpoint)
                tag = nonce.to_bytes(8, "big")
                socks = [
                    await endpoint.open_channel(tag, ctx=ctx)
                    for _ in range(n)
                ]
            else:
                await _write_frame(service, agreement.getvalue())
                socks = []
                for _ in range(n):
                    sock = await self._open_data(
                        owner, owner_info, service, ctx=ctx
                    )
                    socks.append(sock)
            driver = _build_stack(parsed, socks)
        return AsyncBlockChannel(driver)

    async def _open_service(self, owner: str, info: EndpointInfo):
        # Figure 4, bootstrap branch: direct client/server when the peer
        # advertises a reachable listener, else routed via the relay.
        try:
            return await live_connect((info.local_ip, info.open_ports[0]))
        except (ConnectionError, OSError, IndexError):
            return await self.relay.open_link(owner, payload=b"service")

    async def _open_data(
        self, owner: str, info: EndpointInfo, service, ctx=None
    ):
        # The request frame carries the caller's trace context so the
        # responder's side of the data connection joins the same causal
        # trace: u8 request kind, lp_bytes encoded context (empty when
        # the caller has none).
        child = ctx.child() if ctx is not None else None
        encoded = child.encode() if child is not None else b""
        await _write_frame(
            service, ByteWriter().u8(1).lp_bytes(encoded).getvalue()
        )
        reply = ByteReader(await _read_frame(service))
        kind = reply.u8()
        if kind != 0:
            raise LiveIbisError("responder offered no data listener")
        host = reply.lp_str()
        port = reply.u16()
        sock = await live_connect((host, port))
        obs.event(
            "data.connected", ctx=child, node=self.name, peer=owner,
            backend="live",
        )
        return sock

    # -- serving --------------------------------------------------------------------
    async def _direct_service_loop(self) -> None:
        while True:
            sock = await self.listener.accept()
            asyncio.ensure_future(self._serve_one(sock))

    async def _routed_service_loop(self) -> None:
        while True:
            link = await self.relay.accept_link()
            if link.open_payload == b"service":
                asyncio.ensure_future(self._serve_one(link))
            # Other tags would be routed data channels; the live responder
            # always offers direct listeners, so none are expected.

    async def _serve_one(self, service) -> None:
        try:
            request = ByteReader(await _read_frame(service))
        except (EOFError, ConnectionError):
            return
        if request.u8() != REQ_PORT_CONNECT:
            await _write_frame(
                service, ByteWriter().u8(RESP_ERR).lp_str("bad request").getvalue()
            )
            return
        port_name = request.lp_str()
        sender = request.lp_str()
        port = self.receive_ports.get(port_name)
        if port is None:
            await _write_frame(
                service,
                ByteWriter().u8(RESP_ERR).lp_str(f"no port {port_name!r}").getvalue(),
            )
            return
        await _write_frame(service, ByteWriter().u8(RESP_OK).getvalue())
        agreement = ByteReader(await _read_frame(service))
        # The spec string is the wire format: parse it silently.
        parsed = StackSpec.parse(agreement.lp_str())
        _block_size = agreement.u32()
        n = parsed.links_required
        if parsed.mux is not None:
            reuse = agreement.u8()
            eid = agreement.u64()
            nonce = agreement.u64()
            key = (sender, eid)
            endpoint = self._shared_mux_resp.get(key)
            if endpoint is not None and not endpoint.alive:
                self._shared_mux_resp.pop(key, None)
                endpoint = None
            if reuse:
                if endpoint is None:
                    raise LiveIbisError(
                        f"peer {sender!r} asked to reuse unknown mux "
                        f"endpoint {eid}"
                    )
            else:
                sock, ctx = await self._accept_data(service, sender)
                endpoint = await AsyncMuxEndpoint.establish(
                    sock,
                    AsyncMuxEndpoint.RESPONDER,
                    window=int(parsed.mux.get("win", DEFAULT_WINDOW)),
                    scheduler=make_scheduler(
                        str(parsed.mux.get("sched", "rr"))
                    ),
                    node=self.name,
                    ctx=ctx,
                )
                self._shared_mux_resp[key] = endpoint
            tag = nonce.to_bytes(8, "big")
            socks = [
                await endpoint.accept_channel(tag) for _ in range(n)
            ]
        else:
            socks = []
            for _ in range(n):
                sock, _ctx = await self._accept_data(service, sender)
                socks.append(sock)
        driver = _build_stack(parsed, socks)
        port._attach(AsyncBlockChannel(driver), origin=sender)

    async def _accept_data(self, service, sender: str):
        """One responder round of the data-connection sub-protocol.

        Returns ``(socket, trace_context)`` — the context decoded from
        the request frame (``None`` when the caller sent none), so the
        accept joins the initiator's causal trace.
        """
        request = ByteReader(await _read_frame(service))
        request.u8()  # request kind; only data connections are defined
        ctx = None
        encoded = request.lp_bytes()
        if encoded:
            try:
                ctx = obs.TraceContext.decode(encoded)
            except Exception:
                ctx = None
        listener = await live_listen(self.listen_host, 0)
        reply = (
            ByteWriter()
            .u8(0)
            .lp_str(listener.addr[0])
            .u16(listener.port)
            .getvalue()
        )
        await _write_frame(service, reply)
        sock = await listener.accept()
        listener.close()
        obs.event(
            "data.accepted", ctx=ctx, node=self.name, peer=sender,
            backend="live",
        )
        return sock, ctx
