"""Live relay: the routed-messages relay over real sockets.

Same wire protocol as :mod:`repro.core.relay` (REGISTER/OPEN/MSG/CLOSE
frames), bound to asyncio.  A public machine runs :class:`LiveRelayServer`;
nodes keep a :class:`LiveRelayClient` connection and multiplex
:class:`LiveRoutedLink` streams over it.

Mesh mode is the live twin of the sim relay mesh: servers gossip their
views over short-lived TCP exchanges (``T_GOSSIP``), declare silent
peers dead with the shared deadline/phi detector, push their converged
view to registered clients (``T_MESH``), and forward routed frames for
nodes registered at a peer relay over point-to-point trunk connections
(``T_TRUNK``).  :class:`LiveMeshRelayClient` holds one registration per
relay and route-table-picks the carrier for each link, so a mid-stream
relay kill fails over to a survivor exactly as in the simulator.
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Callable, Optional, Tuple

from .. import obs
from ..core.relay import (
    MAX_MSG,
    T_CLOSE,
    T_ERROR,
    T_GOSSIP,
    T_MESH,
    T_MSG,
    T_OPEN,
    T_REGISTER,
    T_REGISTER_OK,
    T_TRUNK,
    RelayError,
    _routed_body,
)
from ..mesh.config import DEFAULT_MESH_CONFIG, MeshConfig
from ..mesh.routes import RouteTable
from ..mesh.state import MeshState, decode_entries, encode_entries
from ..util.framing import ByteReader, ByteWriter, FrameError
from .transport import LiveSocket, live_connect, live_listen

__all__ = [
    "LiveRelayServer",
    "LiveRelayClient",
    "LiveRoutedLink",
    "LiveMeshRelayClient",
]

Addr = Tuple[str, int]

#: dial/handshake budget for relay-to-relay exchanges (gossip, trunks);
#: a dead peer must cost one bounded round, not a hung task
_PEER_IO_TIMEOUT = 2.0


async def _write_frame(sock: LiveSocket, body: bytes) -> None:
    await sock.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


async def _read_frame(sock: LiveSocket) -> bytes:
    header = await sock.recv_exactly(4)
    length = int.from_bytes(header, "big")
    if length > MAX_MSG + 1024:
        raise RelayError(f"oversized frame ({length} bytes)")
    return await sock.recv_exactly(length)


class LiveRelayServer:
    """asyncio relay server (optionally one member of a relay mesh)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, name: str = "relay"):
        self.host = host
        self.port = port
        self.name = name
        self.relay_id = name
        self.sessions: dict[str, LiveSocket] = {}
        self.forwarded_messages = 0
        self.forwarded_bytes = 0
        self.trunk_tx = 0
        self.trunk_rx = 0
        self._listener = None
        self._task: Optional[asyncio.Task] = None
        self._session_tasks: set[asyncio.Task] = set()
        # mesh mode
        self.mesh: Optional[MeshState] = None
        self._mesh_config: Optional[MeshConfig] = None
        self._mesh_peers: dict[str, Addr] = {}
        self._mesh_rng: Optional[random.Random] = None
        self._incarnation = 0
        self._gossip_task: Optional[asyncio.Task] = None
        self._trunks: dict[str, LiveSocket] = {}
        self._trunk_tasks: dict[str, asyncio.Task] = {}
        self._partitioned: set[str] = set()
        self._clock: Optional[Callable[[], float]] = None

    @property
    def addr(self) -> Addr:
        return self._listener.addr

    @property
    def running(self) -> bool:
        return self._listener is not None

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return asyncio.get_running_loop().time()

    async def start(self) -> "LiveRelayServer":
        self._listener = await live_listen(self.host, self.port)
        # Pin the OS-assigned port so a restart after a kill rebinds the
        # address every client and peer relay already knows.
        self.port = self._listener.port
        self._task = asyncio.ensure_future(self._accept_loop())
        if self.mesh is not None:
            # Restart after a crash: a fresh incarnation must dominate
            # stale rumours of the previous life, and silence accumulated
            # while we were down is not evidence of anyone's death.
            self._incarnation += 1
            self.mesh.restarted(self._now())
            self._start_gossip()
        return self

    def stop(self) -> None:
        """Crash/stop the relay: drop every session and stop accepting."""
        if self._task is not None:
            self._task.cancel()
            self._task = None
        if self._gossip_task is not None:
            self._gossip_task.cancel()
            self._gossip_task = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        for rid in list(self._trunks):
            self._drop_trunk(rid)
        for task in list(self._session_tasks):
            task.cancel()
        self._session_tasks.clear()
        for sock in list(self.sessions.values()):
            sock.abort()
        self.sessions.clear()

    def close(self) -> None:
        self.stop()

    # -- mesh mode -----------------------------------------------------------
    def enable_mesh(
        self,
        relay_id: str,
        peers: dict[str, Addr],
        seed,
        config: Optional[MeshConfig] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """Join the relay mesh as ``relay_id``.

        ``peers`` are the seed contacts (relay id -> address); the gossip
        partner set self-extends to any relay learned through merges.
        ``clock`` lets a harness supply run-relative time so detector
        timestamps line up with its fault-plan timeline.
        """
        self.relay_id = relay_id
        self.name = relay_id
        self._mesh_config = config or DEFAULT_MESH_CONFIG
        self.mesh = MeshState(relay_id, self._mesh_config)
        self._mesh_peers = {
            rid: addr for rid, addr in peers.items() if rid != relay_id
        }
        self._mesh_rng = random.Random(f"{seed}:mesh:{relay_id}")
        self._clock = clock
        self._incarnation += 1
        if self._listener is not None:
            self._start_gossip()

    def partition(self, peer_ids) -> None:
        """Fault hook: refuse gossip/trunks with these peer relays."""
        for rid in peer_ids:
            self._partitioned.add(rid)
            self._drop_trunk(rid)

    def heal_partition(self, peer_ids=None) -> None:
        healed = set(peer_ids) if peer_ids is not None else set(self._partitioned)
        self._partitioned -= healed

    def _start_gossip(self) -> None:
        if self._gossip_task is not None:
            self._gossip_task.cancel()
        self._gossip_task = asyncio.ensure_future(self._gossip_loop())

    async def _gossip_loop(self) -> None:
        cfg = self._mesh_config
        reg = obs.metrics()
        try:
            while self._listener is not None:
                now = self._now()
                self.mesh.refresh_self(
                    now,
                    self.addr,
                    load=len(self.sessions),
                    nodes=self.sessions.keys(),
                    incarnation=self._incarnation,
                )
                newly_dead = self.mesh.sweep(now)
                changed = bool(newly_dead)
                for rid in newly_dead:
                    obs.event(
                        "mesh.relay_dead", node=self.name, relay=rid,
                        backend="live",
                    )
                    self._drop_trunk(rid)
                partner = self._pick_partner()
                if partner is not None:
                    partner_id, partner_addr = partner
                    t0 = self._now()
                    ok = True
                    advanced: list[str] = []
                    try:
                        sock = await asyncio.wait_for(
                            live_connect(partner_addr), timeout=_PEER_IO_TIMEOUT
                        )
                        try:
                            await _write_frame(
                                sock,
                                ByteWriter()
                                .u8(T_GOSSIP)
                                .lp_str(self.relay_id)
                                .lp_bytes(
                                    encode_entries(self.mesh.entries.values())
                                )
                                .getvalue(),
                            )
                            reply = await asyncio.wait_for(
                                _read_frame(sock), timeout=_PEER_IO_TIMEOUT
                            )
                            r = ByteReader(reply)
                            if r.u8() == T_GOSSIP:
                                r.lp_str()  # sender id
                                advanced = self.mesh.merge(
                                    decode_entries(r.lp_bytes()), self._now()
                                )
                        finally:
                            sock.close()
                    except (
                        ConnectionError,
                        OSError,
                        EOFError,
                        RelayError,
                        FrameError,
                        asyncio.TimeoutError,
                    ):
                        ok = False
                    reg.counter(
                        "mesh.gossip_rounds_total",
                        relay=self.relay_id,
                        backend="live",
                    ).inc()
                    if advanced or not ok:
                        # Only state-changing (or failed) rounds become
                        # trace spans; steady-state rounds would drown it.
                        obs.record_span(
                            "mesh.gossip",
                            t0,
                            self._now(),
                            node=self.name,
                            peer=partner_id,
                            outcome="ok" if ok else "unreachable",
                            advanced=len(advanced),
                            backend="live",
                        )
                    changed = changed or bool(advanced)
                reg.gauge(
                    "mesh.relays_alive", relay=self.relay_id, backend="live"
                ).set(len(self.mesh.alive()))
                if changed:
                    await self._push_mesh_views()
                jitter = (
                    cfg.gossip_jitter
                    * cfg.gossip_interval
                    * (2.0 * self._mesh_rng.random() - 1.0)
                )
                await asyncio.sleep(max(cfg.gossip_interval + jitter, 0.02))
        except asyncio.CancelledError:
            return

    def _pick_partner(self) -> Optional[tuple[str, Addr]]:
        """A seeded-random live gossip partner (seeds + learned relays)."""
        candidates: dict[str, Addr] = dict(self._mesh_peers)
        for entry in self.mesh.alive():
            candidates.setdefault(entry.relay_id, entry.addr)
        eligible = sorted(
            rid
            for rid in candidates
            if rid != self.relay_id
            and rid not in self.mesh.dead
            and rid not in self._partitioned
        )
        if not eligible:
            return None
        rid = self._mesh_rng.choice(eligible)
        return rid, candidates[rid]

    def _mesh_view_frame(self) -> bytes:
        dead = sorted(self.mesh.dead)
        w = (
            ByteWriter()
            .u8(T_MESH)
            .lp_bytes(encode_entries(self.mesh.alive()))
            .u32(len(dead))
        )
        for rid in dead:
            w.lp_str(rid)
        return w.getvalue()

    async def _push_mesh_views(self) -> None:
        """Best-effort view push to every registered client."""
        frame = self._mesh_view_frame()
        for sock in list(self.sessions.values()):
            try:
                await _write_frame(sock, frame)
            except (ConnectionError, OSError):
                continue  # the session loop notices and unregisters

    async def _serve_gossip(self, sock: LiveSocket, reader: ByteReader) -> None:
        """Answer one incoming anti-entropy exchange (push-pull)."""
        sender = reader.lp_str()
        body = reader.lp_bytes()
        if self.mesh is None or sender in self._partitioned:
            sock.close()
            return
        advanced = self.mesh.merge(decode_entries(body), self._now())
        await _write_frame(
            sock,
            ByteWriter()
            .u8(T_GOSSIP)
            .lp_str(self.relay_id)
            .lp_bytes(encode_entries(self.mesh.entries.values()))
            .getvalue(),
        )
        if advanced:
            await self._push_mesh_views()
        try:
            await _read_frame(sock)  # wait for the initiator's close
        except (EOFError, ConnectionError, OSError, RelayError, FrameError):
            pass
        sock.close()

    async def _serve_trunk(self, sock: LiveSocket, reader: ByteReader) -> None:
        """Serve an incoming trunk: deliver forwarded bodies locally."""
        peer_relay = reader.lp_str()
        if self.mesh is None or peer_relay in self._partitioned:
            sock.close()
            return
        try:
            while True:
                body = await _read_frame(sock)
                await self._deliver_trunk(body, sock)
        except (EOFError, ConnectionError, OSError, RelayError, FrameError):
            pass
        sock.close()

    async def _deliver_trunk(self, body: bytes, trunk_sock: LiveSocket) -> None:
        """Deliver a trunk-forwarded routed body to a *local* session.

        Trunk frames are never re-forwarded to another relay — that is
        the loop-prevention rule of the overlay.  An unreachable local
        destination turns into a routed ``T_ERROR`` sent back over the
        same trunk, which the origin relay delivers to the opener.
        """
        reader = ByteReader(body)
        kind = reader.u8()
        if kind not in (T_OPEN, T_MSG, T_CLOSE, T_ERROR):
            raise RelayError(f"unexpected trunk frame type {kind}")
        reader.u8()  # ownership flag, forwarded untouched
        src = reader.lp_str()
        dst = reader.lp_str()
        channel = reader.u64()
        self.trunk_rx += 1
        dest_sock = self.sessions.get(dst)
        if dest_sock is None:
            if kind != T_ERROR:  # errors about errors stop here
                await _write_frame(
                    trunk_sock,
                    _routed_body(
                        T_ERROR, dst, src, channel, b"unknown destination",
                        sender_owns_channel=False,
                    ),
                )
            return
        self.forwarded_messages += 1
        self.forwarded_bytes += len(body)
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="live").inc()
        reg.counter("relay.forwarded_bytes_total", backend="live").inc(len(body))
        try:
            await _write_frame(dest_sock, body)
        except (ConnectionError, OSError):
            if self.sessions.get(dst) is dest_sock:
                del self.sessions[dst]
            dest_sock.abort()
            if kind != T_ERROR:
                await _write_frame(
                    trunk_sock,
                    _routed_body(
                        T_ERROR, dst, src, channel, b"unknown destination",
                        sender_owns_channel=False,
                    ),
                )

    async def _get_trunk(self, relay_id: str, addr: Addr) -> Optional[LiveSocket]:
        """A live outgoing trunk to ``relay_id`` (dial on first use)."""
        sock = self._trunks.get(relay_id)
        if sock is not None:
            return sock
        try:
            sock = await asyncio.wait_for(
                live_connect(addr), timeout=_PEER_IO_TIMEOUT
            )
            await _write_frame(
                sock,
                ByteWriter().u8(T_TRUNK).lp_str(self.relay_id).getvalue(),
            )
        except (ConnectionError, OSError, EOFError, asyncio.TimeoutError):
            return None
        self._trunks[relay_id] = sock
        self._trunk_tasks[relay_id] = asyncio.ensure_future(
            self._trunk_reader(relay_id, sock)
        )
        return sock

    async def _trunk_reader(self, relay_id: str, sock: LiveSocket) -> None:
        """Read replies (routed errors, return traffic) off an outgoing trunk."""
        try:
            while True:
                body = await _read_frame(sock)
                await self._deliver_trunk(body, sock)
        except (
            EOFError, ConnectionError, OSError, RelayError, FrameError,
            asyncio.CancelledError,
        ):
            pass
        if self._trunks.get(relay_id) is sock:
            del self._trunks[relay_id]
        sock.close()

    def _drop_trunk(self, relay_id: str) -> None:
        sock = self._trunks.pop(relay_id, None)
        if sock is not None:
            sock.abort()
        task = self._trunk_tasks.pop(relay_id, None)
        if task is not None:
            task.cancel()

    async def _trunk_forward(self, dst: str, body: bytes) -> bool:
        """Forward a routed body toward the relay owning ``dst``.

        Returns True when the frame was handed to a trunk; False sends
        the caller down the unknown-destination path.
        """
        if self.mesh is None:
            return False
        owner = self.mesh.owner_of(dst)
        if (
            owner is None
            or owner.relay_id == self.relay_id
            or owner.relay_id in self._partitioned
        ):
            return False
        trunk = await self._get_trunk(owner.relay_id, owner.addr)
        if trunk is None:
            return False
        try:
            await _write_frame(trunk, body)
        except (ConnectionError, OSError):
            self._drop_trunk(owner.relay_id)
            return False
        self.trunk_tx += 1
        self.forwarded_messages += 1
        self.forwarded_bytes += len(body)
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="live").inc()
        reg.counter("relay.forwarded_bytes_total", backend="live").inc(len(body))
        return True

    # -- serving -------------------------------------------------------------
    async def _accept_loop(self) -> None:
        while True:
            sock = await self._listener.accept()
            task = asyncio.ensure_future(self._session(sock))
            self._session_tasks.add(task)
            task.add_done_callback(self._session_tasks.discard)

    async def _session(self, sock: LiveSocket) -> None:
        node_id: Optional[str] = None
        try:
            body = await _read_frame(sock)
            reader = ByteReader(body)
            first = reader.u8()
            if first == T_GOSSIP:
                await self._serve_gossip(sock, reader)
                return
            if first == T_TRUNK:
                await self._serve_trunk(sock, reader)
                return
            if first != T_REGISTER:
                raise RelayError("expected REGISTER")
            node_id = reader.lp_str()
            if node_id in self.sessions:
                await _write_frame(
                    sock, ByteWriter().u8(T_ERROR).lp_str("duplicate id").getvalue()
                )
                sock.close()
                return
            self.sessions[node_id] = sock
            await _write_frame(sock, ByteWriter().u8(T_REGISTER_OK).getvalue())
            if self.mesh is not None:
                # New registrations learn the mesh immediately (their
                # route table needs the view before the first open).
                await _write_frame(sock, self._mesh_view_frame())
            while True:
                body = await _read_frame(sock)
                await self._forward(node_id, body, sock)
        except (EOFError, RelayError, FrameError, ConnectionError, OSError):
            pass
        finally:
            if node_id is not None and self.sessions.get(node_id) is sock:
                del self.sessions[node_id]
            sock.close()

    async def _forward(self, src: str, body: bytes, src_sock: LiveSocket) -> None:
        reader = ByteReader(body)
        kind = reader.u8()
        if kind not in (T_OPEN, T_MSG, T_CLOSE):
            raise RelayError(f"unexpected frame type {kind}")
        reader.u8()  # channel-ownership flag: forwarded untouched
        claimed = reader.lp_str()
        dst = reader.lp_str()
        channel = reader.u64()
        if claimed != src:
            raise RelayError("source spoofing")
        dest = self.sessions.get(dst)
        if dest is None and self.mesh is not None:
            # Not registered here — maybe at a peer relay (trunk hop).
            if await self._trunk_forward(dst, body):
                return
        if dest is None:
            await _write_frame(
                src_sock,
                _routed_body(
                    T_ERROR, dst, src, channel, b"unknown destination",
                    sender_owns_channel=False,
                ),
            )
            return
        self.forwarded_messages += 1
        self.forwarded_bytes += len(body)
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="live").inc()
        reg.counter("relay.forwarded_bytes_total", backend="live").inc(len(body))
        await _write_frame(dest, body)


class LiveRoutedLink:
    """A virtual stream over the live relay."""

    def __init__(
        self, client: "LiveRelayClient", peer: str, channel: int, owned: bool = True
    ):
        self.client = client
        self.peer = peer
        self.channel = channel
        self.owned = owned
        self._buffer = bytearray()
        self._event = asyncio.Event()
        self._eof = False
        self.open_payload = b""

    def _deliver(self, payload: bytes) -> None:
        self._buffer.extend(payload)
        self._event.set()

    def _deliver_eof(self) -> None:
        self._eof = True
        self._event.set()

    async def send_all(self, data: bytes) -> None:
        for offset in range(0, len(data), MAX_MSG):
            if self._eof or not self.client.connected:
                raise ConnectionResetError("routed link lost its relay")
            chunk = bytes(data[offset : offset + MAX_MSG])
            await self.client._send_routed(
                T_MSG, self.peer, self.channel, chunk, owned=self.owned
            )

    async def recv(self, maxbytes: int) -> bytes:
        while not self._buffer and not self._eof:
            self._event.clear()
            await self._event.wait()
        take = bytes(self._buffer[:maxbytes])
        del self._buffer[: len(take)]
        return take

    async def recv_exactly(self, n: int) -> bytes:
        parts, remaining = [], n
        while remaining > 0:
            data = await self.recv(remaining)
            if not data:
                raise EOFError(f"routed link ended with {remaining}/{n} missing")
            parts.append(data)
            remaining -= len(data)
        return b"".join(parts)

    def close(self) -> None:
        async def _send_close() -> None:
            try:
                await self.client._send_routed(
                    T_CLOSE, self.peer, self.channel, b"", owned=self.owned
                )
            except (ConnectionError, OSError, AttributeError):
                pass  # the relay session is gone; nothing to tell it

        asyncio.ensure_future(_send_close())

    def abort(self) -> None:
        """Hard-kill the local end: EOF to readers, best-effort CLOSE out."""
        self._deliver_eof()
        self.close()


class LiveRelayClient:
    """A node's live connection to the relay."""

    def __init__(self, node_id: str, relay_addr: Addr):
        self.node_id = node_id
        self.relay_addr = relay_addr
        self.connected = False
        self._sock: Optional[LiveSocket] = None
        # key: (peer, channel, owned_by_me)
        self._links: dict[tuple[str, int, bool], LiveRoutedLink] = {}
        self._accepts: asyncio.Queue = asyncio.Queue()
        self._channel_ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None
        # mesh view (populated by T_MESH pushes from a mesh-mode relay)
        self.mesh_view: list = []
        self.mesh_dead: frozenset = frozenset()
        self.mesh_view_seq = 0
        self.on_mesh_view: Optional[Callable[["LiveRelayClient"], None]] = None

    async def connect(self) -> "LiveRelayClient":
        self._sock = await live_connect(self.relay_addr)
        await _write_frame(
            self._sock, ByteWriter().u8(T_REGISTER).lp_str(self.node_id).getvalue()
        )
        body = await _read_frame(self._sock)
        if ByteReader(body).u8() != T_REGISTER_OK:
            raise RelayError(f"registration rejected: {body!r}")
        self.connected = True
        self._reader_task = asyncio.ensure_future(self._reader())
        return self

    async def _send_routed(
        self, kind: int, peer: str, channel: int, payload: bytes, owned: bool = True
    ) -> None:
        await _write_frame(
            self._sock,
            _routed_body(
                kind, self.node_id, peer, channel, payload, sender_owns_channel=owned
            ),
        )

    async def open_link(self, peer: str, payload: bytes = b"") -> LiveRoutedLink:
        channel = next(self._channel_ids)
        link = LiveRoutedLink(self, peer, channel, owned=True)
        link.open_payload = payload
        self._links[(peer, channel, True)] = link
        await self._send_routed(T_OPEN, peer, channel, payload, owned=True)
        return link

    async def accept_link(self) -> LiveRoutedLink:
        return await self._accepts.get()

    async def _reader(self) -> None:
        try:
            while True:
                body = await _read_frame(self._sock)
                self._dispatch(body)
        except (EOFError, RelayError, FrameError, ConnectionError, OSError,
                asyncio.CancelledError):
            self.connected = False
            for link in self._links.values():
                link._deliver_eof()

    def _dispatch(self, body: bytes) -> None:
        reader = ByteReader(body)
        kind = reader.u8()
        if kind == T_MESH:
            try:
                entries = decode_entries(reader.lp_bytes())
                dead = frozenset(reader.lp_str() for _ in range(reader.u32()))
            except FrameError:
                return
            self.mesh_view = entries
            self.mesh_dead = dead
            self.mesh_view_seq += 1
            if self.on_mesh_view is not None:
                self.on_mesh_view(self)
            return
        sender_owns = bool(reader.u8())
        src = reader.lp_str()
        _dst = reader.lp_str()
        channel = reader.u64()
        payload = reader.lp_bytes()
        owned_by_me = not sender_owns
        key = (src, channel, owned_by_me)
        link = self._links.get(key)
        if kind in (T_OPEN, T_MSG) and link is None and not owned_by_me:
            link = LiveRoutedLink(self, src, channel, owned=False)
            link.open_payload = payload if kind == T_OPEN else b""
            self._links[key] = link
            self._accepts.put_nowait(link)
        if link is None:
            return
        if kind == T_MSG:
            link._deliver(payload)
        elif kind in (T_CLOSE, T_ERROR):
            link._deliver_eof()

    def close(self) -> None:
        self.connected = False
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._sock is not None:
            self._sock.close()


class _MeshLinkListener:
    """The listener surface (``accept``/``close``/``addr``) over routed links.

    Lets :class:`~repro.livenet.session.AsyncSessionListener` sit on top
    of a :class:`LiveMeshRelayClient`, so survivable sessions run over
    relay-routed streams — including RESUME re-dials that land on a
    *different* relay than the one that died.
    """

    def __init__(self, mesh_client: "LiveMeshRelayClient"):
        self.mesh_client = mesh_client

    @property
    def addr(self) -> Addr:
        return ("mesh", 0)

    async def accept(self) -> LiveRoutedLink:
        return await self.mesh_client.accept_link()

    def close(self) -> None:
        pass  # the mesh client owns its own lifecycle


class LiveMeshRelayClient:
    """A node's registrations with every relay of a mesh, route-table picked.

    The live twin of :class:`~repro.mesh.client.MeshRelayClient`: one
    :class:`LiveRelayClient` per relay, an observer
    :class:`~repro.mesh.state.MeshState` merged from relay-pushed
    ``T_MESH`` views, and a :class:`~repro.mesh.routes.RouteTable` that
    answers *which relay carries this link*.  When the incumbent relay
    dies its sub-client disconnects, making it unusable, and the next
    ``open_link`` — including a session's RESUME re-dial — lands on a
    survivor.
    """

    def __init__(
        self,
        node_id: str,
        relays: dict[str, Addr],
        seed=0,
        config: Optional[MeshConfig] = None,
    ):
        self.node_id = node_id
        self.config = config or DEFAULT_MESH_CONFIG
        self.state = MeshState("", self.config)
        self.table = RouteTable(self.state, self.config, usable=self._usable)
        self._rng = random.Random(f"{seed}:meshclient:{node_id}")
        self.clients: dict[str, LiveRelayClient] = {}
        for rid, addr in sorted(relays.items()):
            client = LiveRelayClient(node_id, addr)
            client.on_mesh_view = self._on_view
            self.clients[rid] = client
        self._accepts: asyncio.Queue = asyncio.Queue()
        self._pumps: list[asyncio.Task] = []
        self.closed = False
        self._reported_changes = 0

    # -- state ---------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return any(c.connected for c in self.clients.values())

    def usable_relays(self) -> list[str]:
        return [rid for rid in sorted(self.clients) if self._usable(rid)]

    def _usable(self, relay_id: str) -> bool:
        client = self.clients.get(relay_id)
        return client is not None and client.connected

    # -- lifecycle -----------------------------------------------------------
    async def connect(self) -> "LiveMeshRelayClient":
        """Register with every relay; at least one must accept us."""
        up = 0
        errors: list[str] = []
        for rid in sorted(self.clients):
            try:
                await asyncio.wait_for(
                    self.clients[rid].connect(), timeout=_PEER_IO_TIMEOUT
                )
                up += 1
            except (
                ConnectionError, OSError, EOFError, RelayError, FrameError,
                asyncio.TimeoutError,
            ) as exc:
                errors.append(f"{rid}: {type(exc).__name__}: {exc}")
        if up == 0:
            raise RelayError(f"no relay reachable: {'; '.join(errors)}")
        for rid in sorted(self.clients):
            self._pumps.append(
                asyncio.ensure_future(self._accept_pump(self.clients[rid]))
            )
        return self

    def close(self) -> None:
        self.closed = True
        for task in self._pumps:
            task.cancel()
        for client in self.clients.values():
            client.close()

    # -- mesh view -----------------------------------------------------------
    def _on_view(self, client: LiveRelayClient) -> None:
        self.state.merge(client.mesh_view, asyncio.get_running_loop().time())
        obs.metrics().gauge(
            "mesh.relays_usable", node=self.node_id, backend="live"
        ).set(len(self.usable_relays()))

    # -- links ---------------------------------------------------------------
    def pick_relay(self, peer: str) -> Optional[str]:
        """The relay id the route table would use for ``peer`` right now."""
        entry = self.table.pick(peer, rng=self._rng)
        if entry is not None and self._usable(entry.relay_id):
            return entry.relay_id
        for rid in sorted(self.clients):
            if self._usable(rid):
                return rid
        return None

    async def open_link(self, peer: str, payload: bytes = b"") -> LiveRoutedLink:
        """Open a routed link to ``peer`` through the best live relay."""
        last: Optional[Exception] = None
        for _ in range(len(self.clients) + 1):
            rid = self.pick_relay(peer)
            if rid is None:
                break
            if self.table.route_changes > self._reported_changes:
                obs.metrics().counter(
                    "mesh.route_changes_total", node=self.node_id, backend="live"
                ).inc(self.table.route_changes - self._reported_changes)
                self._reported_changes = self.table.route_changes
            try:
                link = await self.clients[rid].open_link(peer, payload=payload)
            except (ConnectionError, OSError, EOFError, RelayError) as exc:
                last = exc
                self.clients[rid].connected = False
                self.table.invalidate(rid)
                continue
            obs.event(
                "mesh.route", node=self.node_id, peer=peer, relay=rid,
                backend="live",
            )
            return link
        raise RelayError(f"no usable relay for routed open: {last}")

    async def _accept_pump(self, client: LiveRelayClient) -> None:
        """Funnel one sub-client's accepted links into the shared queue."""
        try:
            while True:
                link = await client.accept_link()
                await self._accepts.put(link)
        except asyncio.CancelledError:
            return

    async def accept_link(self) -> LiveRoutedLink:
        """Wait for a peer-initiated routed link on *any* relay."""
        return await self._accepts.get()

    def link_listener(self) -> _MeshLinkListener:
        """An ``AsyncSessionListener``-compatible listener over routed links."""
        return _MeshLinkListener(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LiveMeshRelayClient {self.node_id} usable={self.usable_relays()}>"
