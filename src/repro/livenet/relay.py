"""Live relay: the routed-messages relay over real sockets.

Same wire protocol as :mod:`repro.core.relay` (REGISTER/OPEN/MSG/CLOSE
frames), bound to asyncio.  A public machine runs :class:`LiveRelayServer`;
nodes keep a :class:`LiveRelayClient` connection and multiplex
:class:`LiveRoutedLink` streams over it.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Optional, Tuple

from .. import obs
from ..core.relay import (
    MAX_MSG,
    T_CLOSE,
    T_ERROR,
    T_MSG,
    T_OPEN,
    T_REGISTER,
    T_REGISTER_OK,
    RelayError,
    _routed_body,
)
from ..util.framing import ByteReader, ByteWriter, FrameError
from .transport import LiveSocket, live_connect, live_listen

__all__ = ["LiveRelayServer", "LiveRelayClient", "LiveRoutedLink"]

Addr = Tuple[str, int]


async def _write_frame(sock: LiveSocket, body: bytes) -> None:
    await sock.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


async def _read_frame(sock: LiveSocket) -> bytes:
    header = await sock.recv_exactly(4)
    length = int.from_bytes(header, "big")
    if length > MAX_MSG + 1024:
        raise RelayError(f"oversized frame ({length} bytes)")
    return await sock.recv_exactly(length)


class LiveRelayServer:
    """asyncio relay server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        self.sessions: dict[str, LiveSocket] = {}
        self.forwarded_messages = 0
        self._listener = None
        self._task: Optional[asyncio.Task] = None

    @property
    def addr(self) -> Addr:
        return self._listener.addr

    async def start(self) -> "LiveRelayServer":
        self._listener = await live_listen(self.host, self.port)
        self._task = asyncio.ensure_future(self._accept_loop())
        return self

    async def _accept_loop(self) -> None:
        while True:
            sock = await self._listener.accept()
            asyncio.ensure_future(self._session(sock))

    async def _session(self, sock: LiveSocket) -> None:
        node_id: Optional[str] = None
        try:
            body = await _read_frame(sock)
            reader = ByteReader(body)
            if reader.u8() != T_REGISTER:
                raise RelayError("expected REGISTER")
            node_id = reader.lp_str()
            if node_id in self.sessions:
                await _write_frame(
                    sock, ByteWriter().u8(T_ERROR).lp_str("duplicate id").getvalue()
                )
                sock.close()
                return
            self.sessions[node_id] = sock
            await _write_frame(sock, ByteWriter().u8(T_REGISTER_OK).getvalue())
            while True:
                body = await _read_frame(sock)
                await self._forward(node_id, body, sock)
        except (EOFError, RelayError, FrameError, ConnectionError):
            pass
        finally:
            if node_id is not None and self.sessions.get(node_id) is sock:
                del self.sessions[node_id]
            sock.close()

    async def _forward(self, src: str, body: bytes, src_sock: LiveSocket) -> None:
        reader = ByteReader(body)
        kind = reader.u8()
        if kind not in (T_OPEN, T_MSG, T_CLOSE):
            raise RelayError(f"unexpected frame type {kind}")
        reader.u8()  # channel-ownership flag: forwarded untouched
        claimed = reader.lp_str()
        dst = reader.lp_str()
        channel = reader.u64()
        if claimed != src:
            raise RelayError("source spoofing")
        dest = self.sessions.get(dst)
        if dest is None:
            await _write_frame(
                src_sock,
                _routed_body(
                    T_ERROR, dst, src, channel, b"unknown destination",
                    sender_owns_channel=False,
                ),
            )
            return
        self.forwarded_messages += 1
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="live").inc()
        reg.counter("relay.forwarded_bytes_total", backend="live").inc(len(body))
        await _write_frame(dest, body)

    def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self._listener is not None:
            self._listener.close()


class LiveRoutedLink:
    """A virtual stream over the live relay."""

    def __init__(
        self, client: "LiveRelayClient", peer: str, channel: int, owned: bool = True
    ):
        self.client = client
        self.peer = peer
        self.channel = channel
        self.owned = owned
        self._buffer = bytearray()
        self._event = asyncio.Event()
        self._eof = False
        self.open_payload = b""

    def _deliver(self, payload: bytes) -> None:
        self._buffer.extend(payload)
        self._event.set()

    def _deliver_eof(self) -> None:
        self._eof = True
        self._event.set()

    async def send_all(self, data: bytes) -> None:
        for offset in range(0, len(data), MAX_MSG):
            chunk = bytes(data[offset : offset + MAX_MSG])
            await self.client._send_routed(
                T_MSG, self.peer, self.channel, chunk, owned=self.owned
            )

    async def recv(self, maxbytes: int) -> bytes:
        while not self._buffer and not self._eof:
            self._event.clear()
            await self._event.wait()
        take = bytes(self._buffer[:maxbytes])
        del self._buffer[: len(take)]
        return take

    async def recv_exactly(self, n: int) -> bytes:
        parts, remaining = [], n
        while remaining > 0:
            data = await self.recv(remaining)
            if not data:
                raise EOFError(f"routed link ended with {remaining}/{n} missing")
            parts.append(data)
            remaining -= len(data)
        return b"".join(parts)

    def close(self) -> None:
        asyncio.ensure_future(
            self.client._send_routed(
                T_CLOSE, self.peer, self.channel, b"", owned=self.owned
            )
        )


class LiveRelayClient:
    """A node's live connection to the relay."""

    def __init__(self, node_id: str, relay_addr: Addr):
        self.node_id = node_id
        self.relay_addr = relay_addr
        self._sock: Optional[LiveSocket] = None
        # key: (peer, channel, owned_by_me)
        self._links: dict[tuple[str, int, bool], LiveRoutedLink] = {}
        self._accepts: asyncio.Queue = asyncio.Queue()
        self._channel_ids = itertools.count(1)
        self._reader_task: Optional[asyncio.Task] = None

    async def connect(self) -> "LiveRelayClient":
        self._sock = await live_connect(self.relay_addr)
        await _write_frame(
            self._sock, ByteWriter().u8(T_REGISTER).lp_str(self.node_id).getvalue()
        )
        body = await _read_frame(self._sock)
        if ByteReader(body).u8() != T_REGISTER_OK:
            raise RelayError(f"registration rejected: {body!r}")
        self._reader_task = asyncio.ensure_future(self._reader())
        return self

    async def _send_routed(
        self, kind: int, peer: str, channel: int, payload: bytes, owned: bool = True
    ) -> None:
        await _write_frame(
            self._sock,
            _routed_body(
                kind, self.node_id, peer, channel, payload, sender_owns_channel=owned
            ),
        )

    async def open_link(self, peer: str, payload: bytes = b"") -> LiveRoutedLink:
        channel = next(self._channel_ids)
        link = LiveRoutedLink(self, peer, channel, owned=True)
        link.open_payload = payload
        self._links[(peer, channel, True)] = link
        await self._send_routed(T_OPEN, peer, channel, payload, owned=True)
        return link

    async def accept_link(self) -> LiveRoutedLink:
        return await self._accepts.get()

    async def _reader(self) -> None:
        try:
            while True:
                body = await _read_frame(self._sock)
                self._dispatch(body)
        except (EOFError, RelayError, FrameError, ConnectionError, asyncio.CancelledError):
            for link in self._links.values():
                link._deliver_eof()

    def _dispatch(self, body: bytes) -> None:
        reader = ByteReader(body)
        kind = reader.u8()
        sender_owns = bool(reader.u8())
        src = reader.lp_str()
        _dst = reader.lp_str()
        channel = reader.u64()
        payload = reader.lp_bytes()
        owned_by_me = not sender_owns
        key = (src, channel, owned_by_me)
        link = self._links.get(key)
        if kind in (T_OPEN, T_MSG) and link is None and not owned_by_me:
            link = LiveRoutedLink(self, src, channel, owned=False)
            link.open_payload = payload if kind == T_OPEN else b""
            self._links[key] = link
            self._accepts.put_nowait(link)
        if link is None:
            return
        if kind == T_MSG:
            link._deliver(payload)
        elif kind in (T_CLOSE, T_ERROR):
            link._deliver_eof()

    def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._sock is not None:
            self._sock.close()
