"""Live Ibis Name Service: the registry protocol over real sockets.

Byte-compatible with :mod:`repro.ipl.registry` (same ops, same frames) —
a node could in principle talk to either; only the IO binding differs.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.addressing import EndpointInfo
from ..ipl.registry import (
    OP_ELECT,
    OP_LEAVE,
    OP_LIST,
    OP_LOOKUP_NODE,
    OP_LOOKUP_PORT,
    OP_REGISTER,
    OP_REGISTER_PORT,
    OP_UNREGISTER_PORT,
    ST_OK,
    RegistryError,
    RegistryState,
)
from ..util.framing import ByteReader, ByteWriter, FrameError
from .transport import LiveSocket, live_connect, live_listen

__all__ = ["LiveRegistryServer", "LiveRegistryClient"]

Addr = Tuple[str, int]


async def _write_frame(sock: LiveSocket, body: bytes) -> None:
    await sock.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


async def _read_frame(sock: LiveSocket) -> bytes:
    header = await sock.recv_exactly(4)
    return await sock.recv_exactly(int.from_bytes(header, "big"))


class LiveRegistryServer:
    """asyncio name service reusing the simulated server's request logic."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = port
        # The IO-free state machine shared with the simulated server.
        self.state = RegistryState()
        self._listener = None
        self._task = None

    @property
    def addr(self) -> Addr:
        return self._listener.addr

    @property
    def nodes(self) -> dict:
        return self.state.nodes

    async def start(self) -> "LiveRegistryServer":
        import asyncio

        self._listener = await live_listen(self.host, self.port)
        self._task = asyncio.ensure_future(self._accept_loop())
        return self

    async def _accept_loop(self) -> None:
        import asyncio

        while True:
            sock = await self._listener.accept()
            asyncio.ensure_future(self._session(sock))

    async def _session(self, sock: LiveSocket) -> None:
        registered: Optional[str] = None
        try:
            while True:
                body = await _read_frame(sock)
                self.state.requests += 1
                reply, registered = self.state._handle(body, registered)
                await _write_frame(sock, reply)
        except (EOFError, FrameError, ConnectionError):
            pass
        finally:
            if registered is not None:
                self.state._drop_node(registered)
            sock.close()

    def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self._listener is not None:
            self._listener.close()


class LiveRegistryClient:
    """asyncio registry client (same wire calls as the sim client)."""

    def __init__(self, registry_addr: Addr):
        self.registry_addr = registry_addr
        self._sock: Optional[LiveSocket] = None

    async def connect(self) -> "LiveRegistryClient":
        self._sock = await live_connect(self.registry_addr)
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    async def _call(self, body: bytes) -> ByteReader:
        if self._sock is None:
            raise RegistryError("registry client not connected")
        await _write_frame(self._sock, body)
        reply = await _read_frame(self._sock)
        reader = ByteReader(reply)
        if reader.u8() == ST_OK:
            return reader
        raise RegistryError(reader.lp_str())

    async def register(self, name: str, info: EndpointInfo) -> None:
        await self._call(
            ByteWriter().u8(OP_REGISTER).lp_str(name).lp_bytes(info.encode()).getvalue()
        )

    async def leave(self, name: str) -> None:
        await self._call(ByteWriter().u8(OP_LEAVE).lp_str(name).getvalue())

    async def lookup_node(self, name: str) -> EndpointInfo:
        reader = await self._call(
            ByteWriter().u8(OP_LOOKUP_NODE).lp_str(name).getvalue()
        )
        return EndpointInfo.decode(reader.lp_bytes())

    async def register_port(self, port_name: str, owner: str) -> None:
        await self._call(
            ByteWriter()
            .u8(OP_REGISTER_PORT)
            .lp_str(port_name)
            .lp_str(owner)
            .getvalue()
        )

    async def unregister_port(self, port_name: str) -> None:
        await self._call(
            ByteWriter().u8(OP_UNREGISTER_PORT).lp_str(port_name).getvalue()
        )

    async def lookup_port(self, port_name: str):
        reader = await self._call(
            ByteWriter().u8(OP_LOOKUP_PORT).lp_str(port_name).getvalue()
        )
        owner = reader.lp_str()
        return owner, EndpointInfo.decode(reader.lp_bytes())

    async def elect(self, election: str, candidate: str) -> str:
        reader = await self._call(
            ByteWriter().u8(OP_ELECT).lp_str(election).lp_str(candidate).getvalue()
        )
        return reader.lp_str()

    async def list_nodes(self) -> list:
        reader = await self._call(ByteWriter().u8(OP_LIST).getvalue())
        return [reader.lp_str() for _ in range(reader.u32())]
