"""Live (asyncio, real-socket) backend.

The same protocol suite as the simulator — block framing, striping,
compression flags, relay protocol, TLS records — bound to real TCP
connections, demonstrating that the architecture is not simulation-bound.
"""

from .drivers import (
    AsyncBlockChannel,
    AsyncCompressionDriver,
    AsyncDriver,
    AsyncParallelStreamsDriver,
    AsyncTcpBlockDriver,
    AsyncTlsDriver,
)
from .proxy import ChaosTcpProxy, ProxyStats
from .registry import LiveRegistryClient, LiveRegistryServer
from .relay import (
    LiveMeshRelayClient,
    LiveRelayClient,
    LiveRelayServer,
    LiveRoutedLink,
)
from .runtime import LiveIbis, LiveIbisError, LiveReceivePort, LiveSendPort
from .session import AsyncSessionError, AsyncSessionLink, AsyncSessionListener
from .transport import (
    LiveListener,
    LiveSocket,
    live_connect,
    live_connect_simultaneous,
    live_listen,
    set_connect_hook,
)

__all__ = [
    "LiveSocket",
    "LiveListener",
    "live_connect",
    "live_listen",
    "live_connect_simultaneous",
    "set_connect_hook",
    "ChaosTcpProxy",
    "ProxyStats",
    "AsyncSessionLink",
    "AsyncSessionListener",
    "AsyncSessionError",
    "AsyncDriver",
    "AsyncTcpBlockDriver",
    "AsyncParallelStreamsDriver",
    "AsyncCompressionDriver",
    "AsyncTlsDriver",
    "AsyncBlockChannel",
    "LiveRelayServer",
    "LiveRelayClient",
    "LiveRoutedLink",
    "LiveMeshRelayClient",
    "LiveRegistryServer",
    "LiveRegistryClient",
    "LiveIbis",
    "LiveIbisError",
    "LiveSendPort",
    "LiveReceivePort",
]
