"""Real-socket transport: the sim socket API over asyncio streams.

The paper's architecture claim — establishment and utilization are
orthogonal, drivers compose over any stream — is demonstrated off the
simulator too: :mod:`repro.livenet` runs the same wire formats (block
framing, striping layout, compression flags, the sans-IO TLS handshake)
over genuine TCP connections.

Scope note: OS-level middlebox behaviour (firewalls, NAT) obviously cannot
be created from user space, so the live backend covers the *utilization*
side plus relay-routed connectivity; the establishment matrix lives in the
simulator.  Simultaneous open (TCP splicing) *is* exposed — Linux supports
it — as :func:`live_connect_simultaneous`, best-effort.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Optional, Tuple

__all__ = [
    "LiveSocket",
    "LiveListener",
    "live_connect",
    "live_listen",
    "live_connect_simultaneous",
    "set_connect_hook",
]

Addr = Tuple[str, int]

#: optional dial hook: every ``live_connect`` target passes through it,
#: letting a harness interpose a gateway (e.g. the chaos proxy) between
#: endpoints without the endpoint factories knowing.  The hook receives
#: the requested address and returns the address to actually dial.
_connect_hook = None


def set_connect_hook(hook):
    """Install (or with ``None`` clear) the dial hook; returns the old one."""
    global _connect_hook
    previous = _connect_hook
    _connect_hook = hook
    return previous


class LiveSocket:
    """A connected TCP stream (asyncio) with the library's socket API."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @property
    def laddr(self) -> Addr:
        return self._writer.get_extra_info("sockname")[:2]

    @property
    def raddr(self) -> Addr:
        return self._writer.get_extra_info("peername")[:2]

    async def send_all(self, data: bytes) -> None:
        self._writer.write(data)
        await self._writer.drain()

    async def recv(self, maxbytes: int) -> bytes:
        return await self._reader.read(maxbytes)

    async def recv_exactly(self, n: int) -> bytes:
        try:
            return await self._reader.readexactly(n)
        except asyncio.IncompleteReadError as exc:
            raise EOFError(
                f"stream ended with {n - len(exc.partial)}/{n} bytes missing"
            ) from exc

    def close(self) -> None:
        self._writer.close()

    def write_eof(self) -> None:
        """Half-close: signal EOF to the peer, keep receiving."""
        try:
            self._writer.write_eof()
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def wait_closed(self) -> None:
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def abort(self) -> None:
        transport = self._writer.transport
        if transport is not None:
            transport.abort()


class LiveListener:
    """A listening socket; ``accept`` yields :class:`LiveSocket`."""

    def __init__(self, server: asyncio.Server, queue: asyncio.Queue):
        self._server = server
        self._queue = queue

    @property
    def addr(self) -> Addr:
        return self._server.sockets[0].getsockname()[:2]

    @property
    def port(self) -> int:
        return self.addr[1]

    async def accept(self) -> LiveSocket:
        return await self._queue.get()

    def close(self) -> None:
        self._server.close()


async def live_listen(host: str = "127.0.0.1", port: int = 0) -> LiveListener:
    """Open a listener; connections queue until accepted."""
    queue: asyncio.Queue = asyncio.Queue()

    async def on_connect(reader, writer):
        await queue.put(LiveSocket(reader, writer))

    server = await asyncio.start_server(on_connect, host, port)
    return LiveListener(server, queue)


async def live_connect(addr: Addr, lport: int = 0) -> LiveSocket:
    """Connect to ``addr``; optionally from a fixed local port."""
    if _connect_hook is not None:
        addr = _connect_hook(addr) or addr
    local_addr = ("0.0.0.0", lport) if lport else None
    reader, writer = await asyncio.open_connection(
        addr[0], addr[1], local_addr=local_addr
    )
    return LiveSocket(reader, writer)


async def live_connect_simultaneous(
    addr: Addr,
    lport: int,
    attempts: int = 5,
    retry_delay: float = 0.3,
) -> LiveSocket:
    """Best-effort TCP splicing on a real network.

    Binds the agreed local port (SO_REUSEADDR) and dials the peer, retrying
    on refusal — identical in shape to the simulated splicing method.  On
    Linux, crossing SYNs complete the simultaneous open across a real
    network path.

    Note: this cannot succeed on *loopback* — with zero RTT the kernel
    evaluates each connect synchronously (no listener, no in-flight SYN →
    instant refusal), so the crossing window never opens.  The behaviour
    needs genuine network latency, which is exactly what the simulator
    provides; see the simnet splicing tests for the verified mechanism.
    """
    last: Optional[Exception] = None
    for attempt in range(attempts):
        if attempt:
            await asyncio.sleep(retry_delay)
        raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        raw.setblocking(False)
        try:
            raw.bind(("0.0.0.0", lport))
            loop = asyncio.get_running_loop()
            await loop.sock_connect(raw, addr)
        except (ConnectionError, OSError) as exc:
            raw.close()
            last = exc
            continue
        reader, writer = await asyncio.open_connection(sock=raw)
        return LiveSocket(reader, writer)
    raise last if last is not None else ConnectionError("splice failed")
