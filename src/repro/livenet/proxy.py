"""In-process fault-injecting TCP proxy for the live backend.

The sim chaos harness injects faults through hooks the simulated network
exposes (``Link.set_down``, ``StatefulFirewall.flush``, ...).  Real
sockets expose no such hooks, so the live backend gets a *gateway in a
process*: :class:`ChaosTcpProxy` listens on loopback, forwards every
accepted connection to a fixed upstream target, and injects the chaos
fault vocabulary on command:

* **kill** — RST every active connection (``kill_all``);
* **refuse** — reset new connections at accept time (``set_refusing``);
* **stall** — stop reading from both ends so kernel buffers fill and
  the sender backpressures, without any visible error (``set_stall``);
* **black-hole** — keep reading but silently drop everything
  (``set_blackhole``);
* **latency/jitter** — delay each forwarded chunk (``set_latency``),
  jitter drawn from the proxy's seeded RNG;
* **truncate** — forward exactly N more payload bytes, then RST the
  stream mid-flight (``truncate_after``).

Every byte that enters the proxy is accounted for exactly once —
forwarded, dropped (black-hole) or lost (killed/truncated in flight) —
so the live invariant suite can check conservation the way the sim
checks relay byte accounting.
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional, Tuple

from .. import obs
from .transport import LiveListener, LiveSocket, live_connect, live_listen

__all__ = ["ChaosTcpProxy", "ProxyStats"]

Addr = Tuple[str, int]

#: forwarding granularity; small enough that latency injection paces the
#: stream smoothly, large enough to stay cheap in pass-through mode
CHUNK = 16 * 1024


class ProxyStats:
    """Byte-exact accounting of everything the proxy touched."""

    __slots__ = (
        "accepted", "refused", "killed", "truncated",
        "bytes_in", "bytes_forwarded", "bytes_dropped", "bytes_lost",
    )

    def __init__(self):
        self.accepted = 0
        self.refused = 0
        self.killed = 0
        self.truncated = 0
        self.bytes_in = 0
        self.bytes_forwarded = 0
        self.bytes_dropped = 0
        self.bytes_lost = 0

    def conserved(self) -> bool:
        """Every byte read was forwarded, dropped, or lost to a kill."""
        return (
            self.bytes_in
            == self.bytes_forwarded + self.bytes_dropped + self.bytes_lost
        )

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _ProxyConn:
    """One accepted connection: two sockets, two pump tasks."""

    __slots__ = ("client", "upstream", "tasks")

    def __init__(self, client: LiveSocket, upstream: LiveSocket):
        self.client = client
        self.upstream = upstream
        self.tasks: list = []

    def kill(self) -> None:
        for sock in (self.client, self.upstream):
            sock.abort()

    def close(self) -> None:
        for sock in (self.client, self.upstream):
            sock.close()


class ChaosTcpProxy:
    """A controllable loopback TCP gateway between live endpoints.

    ``target`` is the upstream address every accepted connection is
    forwarded to (typically a node's service listener or the relay).
    All fault switches act on *current and future* connections and are
    safe to flip from timers while traffic is moving.
    """

    def __init__(
        self,
        target: Addr,
        name: str = "chaos-proxy",
        host: str = "127.0.0.1",
        seed: int = 0,
    ):
        self.target = target
        self.name = name
        self.host = host
        self.stats = ProxyStats()
        # obs mirrors of the byte ledger, labelled by proxy name: the
        # telemetry plane streams these as deltas, so SLO monitors can
        # watch conservation drift while the proxy runs
        m = obs.metrics()
        self._m_in = m.counter("proxy.bytes_in_total", proxy=name)
        self._m_fwd = m.counter("proxy.bytes_forwarded_total", proxy=name)
        self._m_drop = m.counter("proxy.bytes_dropped_total", proxy=name)
        self._m_lost = m.counter("proxy.bytes_lost_total", proxy=name)
        self._rng = random.Random(f"{seed}:{name}")
        self._listener: Optional[LiveListener] = None
        self._accept_task: Optional[asyncio.Task] = None
        self._conns: set[_ProxyConn] = set()
        # fault state
        self._refusing = False
        self._blackhole = False
        self._flowing = asyncio.Event()
        self._flowing.set()
        self._latency = 0.0
        self._jitter = 0.0
        self._truncate_remaining: Optional[int] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "ChaosTcpProxy":
        self._listener = await live_listen(self.host, 0)
        self._accept_task = asyncio.ensure_future(self._accept_loop())
        return self

    @property
    def addr(self) -> Addr:
        return self._listener.addr

    @property
    def port(self) -> int:
        return self._listener.port

    @property
    def open_connections(self) -> int:
        return len(self._conns)

    def close(self) -> None:
        self._closed = True
        if self._accept_task is not None:
            self._accept_task.cancel()
        if self._listener is not None:
            self._listener.close()
        # un-stall so pumps observe the closing sockets instead of parking
        self._flowing.set()
        for conn in list(self._conns):
            for task in conn.tasks:
                task.cancel()
            conn.close()
        self._conns.clear()

    # -- fault controls ----------------------------------------------------
    def kill_all(self) -> int:
        """RST every active connection; returns how many died."""
        victims = list(self._conns)
        for conn in victims:
            conn.kill()
        self.stats.killed += len(victims)
        obs.event(
            "chaos.proxy.kill", proxy=self.name, connections=len(victims),
            backend="live",
        )
        return len(victims)

    def set_refusing(self, flag: bool) -> None:
        """While set, new connections are reset at accept time."""
        self._refusing = flag

    def set_stall(self, flag: bool) -> None:
        """While set, the proxy stops reading: silent backpressure."""
        if flag:
            self._flowing.clear()
        else:
            self._flowing.set()

    def set_blackhole(self, flag: bool) -> None:
        """While set, bytes are read and silently discarded."""
        self._blackhole = flag

    def set_latency(self, delay: float, jitter: float = 0.0) -> None:
        """Delay every forwarded chunk by ``delay`` (+ up to ``jitter``)."""
        self._latency = delay
        self._jitter = jitter

    def truncate_after(self, nbytes: int) -> None:
        """Forward exactly ``nbytes`` more payload bytes, then RST.

        One-shot: once the cut fires, forwarding returns to normal for
        every other (and every future) connection.
        """
        self._truncate_remaining = nbytes

    # -- forwarding --------------------------------------------------------
    async def _accept_loop(self) -> None:
        while True:
            client = await self._listener.accept()
            if self._refusing:
                self.stats.refused += 1
                client.abort()
                continue
            asyncio.ensure_future(self._open_conn(client))

    async def _open_conn(self, client: LiveSocket) -> None:
        try:
            upstream = await live_connect(self.target)
        except (ConnectionError, OSError):
            client.abort()
            self.stats.refused += 1
            return
        conn = _ProxyConn(client, upstream)
        self._conns.add(conn)
        self.stats.accepted += 1
        conn.tasks = [
            asyncio.ensure_future(self._pump(conn, client, upstream)),
            asyncio.ensure_future(self._pump(conn, upstream, client)),
        ]

    async def _pump(self, conn: _ProxyConn, src: LiveSocket, dst: LiveSocket) -> None:
        try:
            while True:
                await self._flowing.wait()
                data = await src.recv(CHUNK)
                if not data:
                    # graceful EOF: half-close toward the destination so
                    # the peer sees the same stream shape it would have
                    # seen without the proxy in the path
                    dst.write_eof()
                    return
                self.stats.bytes_in += len(data)
                self._m_in.inc(len(data))
                try:
                    if self._blackhole:
                        self.stats.bytes_dropped += len(data)
                        self._m_drop.inc(len(data))
                        continue
                    delay = self._latency
                    if self._jitter:
                        delay += self._rng.random() * self._jitter
                    if delay > 0:
                        await asyncio.sleep(delay)
                    if self._truncate_remaining is not None:
                        if len(data) >= self._truncate_remaining:
                            keep = data[: self._truncate_remaining]
                            lost = len(data) - len(keep)
                            # one-shot: later connections forward normally,
                            # so a session-layer resume can actually succeed
                            self._truncate_remaining = None
                            if keep:
                                await dst.send_all(keep)
                                self.stats.bytes_forwarded += len(keep)
                                self._m_fwd.inc(len(keep))
                            self.stats.bytes_lost += lost
                            self._m_lost.inc(lost)
                            self.stats.truncated += 1
                            conn.kill()
                            return
                        self._truncate_remaining -= len(data)
                    await dst.send_all(data)
                    self.stats.bytes_forwarded += len(data)
                    self._m_fwd.inc(len(data))
                except (ConnectionError, OSError):
                    # destination died with a chunk in hand
                    self.stats.bytes_lost += len(data)
                    self._m_lost.inc(len(data))
                    raise
                except asyncio.CancelledError:
                    self.stats.bytes_lost += len(data)
                    self._m_lost.inc(len(data))
                    raise
        except (EOFError, ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            if conn in self._conns and all(
                t.done() or t is asyncio.current_task() for t in conn.tasks
            ):
                self._conns.discard(conn)
                conn.close()
