"""Survivable sessions over real sockets: the live twin of SessionLink.

:class:`~repro.core.session.SessionLink` gives simulated channels a
replay buffer, cumulative acks and transparent reconnect.  This module
is the asyncio binding of the same contract for the live backend, so the
chaos harness can prove resume polarity against genuine TCP faults (a
proxy RST mid-stream) and not just simulated ones:

* every payload byte is appended to a replay buffer before it touches
  the wire; cumulative ``ACK`` frames from the peer trim it;
* when the transport dies, the initiator redials (through whatever
  gateway the harness interposed), renegotiates offsets with a
  ``HELLO``/``HELLO_OK`` exchange, and replays the gap — the
  application-visible byte stream continues exactly where it stopped;
* the responder side parks until the initiator's reconnect arrives at
  the :class:`AsyncSessionListener`, which routes it to the existing
  session by id;
* ``FIN`` carries the sender's final offset, and a graceful close waits
  until the peer has acked every byte, so "the transfer completed" means
  the bytes are *there*, not merely written.

Wire format (own framing over the raw socket): ``u8 type, u32 len,
body``.  ``HELLO`` carries the 16-byte session id plus the dialer's
receive offset; ``HELLO_OK`` answers with the acceptor's receive offset;
``DATA`` is ``u64 offset + payload``; ``ACK`` and ``FIN`` carry a single
``u64`` offset.  Duplicate ``DATA`` (replay overlap) is deduplicated by
offset; a forward gap is a protocol violation and kills the transport,
which simply triggers another resume.

Observability matches the sim layer: each successful resume records one
``session.resume`` span with ``outcome=ok`` and increments
``session.reconnects_total`` (role-labelled), and replayed bytes land in
``session.replayed_bytes_total`` — so the chaos invariant suite and
report stats work unchanged on live runs.
"""

from __future__ import annotations

import asyncio
import struct
import time
from typing import Awaitable, Callable, Optional

from .. import obs
from ..obs import fmt_id, next_id
from .transport import LiveListener, LiveSocket

__all__ = ["AsyncSessionLink", "AsyncSessionListener", "AsyncSessionError"]

T_HELLO = 1
T_HELLO_OK = 2
T_DATA = 3
T_ACK = 4
T_FIN = 5

_HDR = struct.Struct("!BI")
_U64 = struct.Struct("!Q")

#: send a cumulative ACK at least this often (bytes of new payload)
ACK_EVERY = 32 * 1024
#: replay chunk granularity on resume
REPLAY_CHUNK = 64 * 1024
#: largest acceptable frame body (a DATA frame is never bigger than a
#: replay chunk plus its offset header)
MAX_FRAME = REPLAY_CHUNK + 64

#: per-attempt handshake budget: a gateway silently black-holing the
#: HELLO must time the attempt out, not hang the resume loop forever
HANDSHAKE_TIMEOUT = 3.0

#: graceful-close watchdog: if the cumulative ack makes no progress for
#: this long, kill the transport to force a resume + replay (covers a
#: black-holed FIN/ACK tail, which never trips the gap detector)
ACK_STALL_TIMEOUT = 2.0


class AsyncSessionError(Exception):
    """Session protocol failure (bad handshake, unrecoverable loss)."""


async def _write_frame(sock: LiveSocket, kind: int, body: bytes) -> None:
    await sock.send_all(_HDR.pack(kind, len(body)) + body)


async def _read_frame(sock: LiveSocket) -> tuple:
    header = await sock.recv_exactly(_HDR.size)
    kind, length = _HDR.unpack(header)
    if length > MAX_FRAME:
        raise AsyncSessionError(f"oversized session frame ({length} bytes)")
    body = await sock.recv_exactly(length) if length else b""
    return kind, body


class AsyncSessionLink:
    """One survivable byte stream; exposes the LiveSocket API."""

    INITIATOR = "initiator"
    RESPONDER = "responder"

    def __init__(
        self,
        session_id: bytes,
        role: str,
        node: str = "?",
        dial: Optional[Callable[[], Awaitable[LiveSocket]]] = None,
        max_attempts: int = 8,
        retry_delay: float = 0.05,
        ctx=None,
    ):
        self.session_id = session_id
        self.role = role
        self.node = node
        self.reconnects = 0
        self.replayed_bytes = 0
        self.state = "connecting"
        self._dial = dial
        self._max_attempts = max_attempts
        self._retry_delay = retry_delay
        self._ctx = ctx
        self._sock: Optional[LiveSocket] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._recover_task: Optional[asyncio.Task] = None
        # send side: [base, sent) lives in the replay buffer until acked
        self._sent = 0
        self._base = 0
        self._acked = 0
        self._replay = bytearray()
        self._fin_sent = False
        self._final = 0
        # receive side
        self._recv = 0
        self._buf = bytearray()
        self._fin_at: Optional[int] = None
        self._last_ack_sent = 0
        # coordination
        self._ready = asyncio.Event()
        self._buf_event = asyncio.Event()
        self._ack_event = asyncio.Event()
        self._closed = False

    # -- construction ------------------------------------------------------
    @classmethod
    async def connect(
        cls,
        dial: Callable[[], Awaitable[LiveSocket]],
        node: str = "initiator",
        ctx=None,
        **kwargs,
    ) -> "AsyncSessionLink":
        """Dial, perform the HELLO handshake, return a connected link."""
        session_id = fmt_id(next_id()).encode("ascii")
        link = cls(
            session_id, cls.INITIATOR, node=node, dial=dial,
            ctx=ctx or obs.current(), **kwargs,
        )
        sock = await dial()
        await _write_frame(sock, T_HELLO, session_id + _U64.pack(0))
        kind, body = await asyncio.wait_for(
            _read_frame(sock), timeout=HANDSHAKE_TIMEOUT
        )
        if kind != T_HELLO_OK:
            raise AsyncSessionError(f"expected HELLO_OK, got frame type {kind}")
        link._attach(sock)
        link._ready.set()
        link.state = "connected"
        obs.event(
            "session.established", ctx=link._ctx, node=node,
            session=session_id.decode("ascii"), backend="live",
        )
        return link

    # -- socket plumbing ---------------------------------------------------
    def _attach(self, sock: LiveSocket) -> None:
        old_sock, old_reader = self._sock, self._reader_task
        self._sock = sock
        if old_reader is not None:
            old_reader.cancel()
        if old_sock is not None and old_sock is not sock:
            old_sock.close()
        self._reader_task = asyncio.ensure_future(self._read_loop(sock))

    def _stream_done(self) -> bool:
        sent_done = self._fin_sent and self._acked >= self._final
        recv_done = self._fin_at is not None and self._recv >= self._fin_at
        return sent_done or recv_done

    def _connection_lost(self) -> None:
        if self._closed or self.state in ("finished", "failed"):
            return
        if self._stream_done():
            self.state = "finished"
            self._wake_all()
            return
        self._ready.clear()
        self.state = "reconnecting"
        if self.role == self.INITIATOR:
            if self._recover_task is None or self._recover_task.done():
                self._recover_task = asyncio.ensure_future(self._recover())
        # the responder parks: the listener attaches the reconnect

    def _wake_all(self) -> None:
        self._buf_event.set()
        self._ack_event.set()
        self._ready.set()

    def _fail(self, why: str) -> None:
        self.state = "failed"
        self._failure = why
        self._wake_all()

    # -- reader ------------------------------------------------------------
    async def _read_loop(self, sock: LiveSocket) -> None:
        try:
            while True:
                kind, body = await _read_frame(sock)
                if kind == T_DATA:
                    await self._on_data(
                        _U64.unpack(body[:8])[0], body[8:], sock
                    )
                elif kind == T_ACK:
                    self._on_ack(_U64.unpack(body)[0])
                elif kind == T_FIN:
                    await self._on_fin(_U64.unpack(body)[0], sock)
                elif kind == T_HELLO_OK:
                    continue  # stale handshake residue; offsets rule
                else:
                    raise AsyncSessionError(f"unexpected frame type {kind}")
        except asyncio.CancelledError:
            return
        except (EOFError, ConnectionError, OSError, AsyncSessionError):
            pass
        if sock is self._sock and not self._closed:
            self._connection_lost()

    async def _on_data(self, offset: int, payload: bytes, sock: LiveSocket) -> None:
        if offset > self._recv:
            # a forward gap can only mean a broken resume; kill the
            # transport and let the resume machinery renegotiate
            sock.abort()
            return
        skip = self._recv - offset
        if skip >= len(payload):
            return  # pure duplicate from a replay overlap
        chunk = payload[skip:]
        self._buf.extend(chunk)
        self._recv += len(chunk)
        self._buf_event.set()
        done = self._fin_at is not None and self._recv >= self._fin_at
        if done or self._recv - self._last_ack_sent >= ACK_EVERY:
            await self._send_ack(sock)

    async def _on_fin(self, final: int, sock: LiveSocket) -> None:
        self._fin_at = final
        self._buf_event.set()
        if self._recv >= final:
            await self._send_ack(sock)

    async def _send_ack(self, sock: LiveSocket) -> None:
        self._last_ack_sent = self._recv
        try:
            await _write_frame(sock, T_ACK, _U64.pack(self._recv))
        except (ConnectionError, OSError):
            pass  # the reader will observe the death and recover

    def _on_ack(self, offset: int) -> None:
        if offset <= self._acked:
            return
        self._acked = offset
        drop = min(offset - self._base, len(self._replay))
        if drop > 0:
            del self._replay[:drop]
            self._base += drop
        self._ack_event.set()

    # -- resume ------------------------------------------------------------
    async def _recover(self) -> None:
        t0 = time.time()
        last = "exhausted attempts"
        # own span identity, parented on the stage/root span, so the
        # resume shows up as a child in the assembled cross-node tree
        span_ctx = self._ctx.child() if self._ctx is not None else None
        for attempt in range(self._max_attempts):
            if self._closed or self._stream_done():
                self.state = "finished"
                self._wake_all()
                return
            if attempt:
                await asyncio.sleep(self._retry_delay * attempt)
            sock = None
            try:
                sock = await asyncio.wait_for(
                    self._dial(), timeout=HANDSHAKE_TIMEOUT
                )
                await _write_frame(
                    sock, T_HELLO, self.session_id + _U64.pack(self._recv)
                )
                kind, body = await asyncio.wait_for(
                    _read_frame(sock), timeout=HANDSHAKE_TIMEOUT
                )
                if kind != T_HELLO_OK:
                    raise AsyncSessionError(
                        f"expected HELLO_OK, got frame type {kind}"
                    )
                peer_recv = _U64.unpack(body)[0]
                replayed = await self._resume_send_path(sock, peer_recv)
            except (
                ConnectionError,
                OSError,
                EOFError,
                AsyncSessionError,
                asyncio.TimeoutError,
            ) as exc:
                last = f"{type(exc).__name__}: {exc}"
                if sock is not None and sock is not self._sock:
                    sock.close()
                continue
            self.reconnects += 1
            self.replayed_bytes += replayed
            reg = obs.metrics()
            reg.counter(
                "session.reconnects_total", role=self.role,
                node=self.node, backend="live",
            ).inc()
            reg.counter(
                "session.replayed_bytes_total", node=self.node, backend="live"
            ).inc(replayed)
            obs.record_span(
                "session.resume", t0, time.time(), ctx=span_ctx,
                node=self.node, outcome="ok", attempt=attempt,
                replayed=replayed, backend="live",
            )
            return
        obs.record_span(
            "session.resume", t0, time.time(), ctx=span_ctx,
            node=self.node, outcome="error", error=last, backend="live",
        )
        self._fail(f"resume failed: {last}")

    async def _resume_send_path(self, sock: LiveSocket, peer_recv: int) -> int:
        """Attach ``sock`` and replay everything the peer is missing."""
        if peer_recv < self._base or peer_recv > self._sent:
            raise AsyncSessionError(
                f"peer wants offset {peer_recv} outside replay window "
                f"[{self._base}, {self._sent}]"
            )
        self._attach(sock)
        start = peer_recv - self._base
        pending = bytes(self._replay[start:])
        offset = peer_recv
        for i in range(0, len(pending), REPLAY_CHUNK):
            chunk = pending[i : i + REPLAY_CHUNK]
            await _write_frame(sock, T_DATA, _U64.pack(offset) + chunk)
            offset += len(chunk)
        if self._fin_sent:
            await _write_frame(sock, T_FIN, _U64.pack(self._final))
        self.state = "connected"
        self._ready.set()
        return len(pending)

    # -- responder-side attach (driven by the listener) --------------------
    async def _accept_attach(self, sock: LiveSocket) -> None:
        await _write_frame(sock, T_HELLO_OK, _U64.pack(self._recv))
        self._attach(sock)
        self._ready.set()
        self.state = "connected"

    async def _resume_attach(self, sock: LiveSocket, peer_recv: int) -> None:
        await _write_frame(sock, T_HELLO_OK, _U64.pack(self._recv))
        replayed = await self._resume_send_path(sock, peer_recv)
        self.reconnects += 1
        self.replayed_bytes += replayed
        reg = obs.metrics()
        reg.counter(
            "session.reconnects_total", role=self.role,
            node=self.node, backend="live",
        ).inc()
        if replayed:
            reg.counter(
                "session.replayed_bytes_total", node=self.node, backend="live"
            ).inc(replayed)
        obs.event(
            "session.attached", ctx=self._ctx, node=self.node,
            session=self.session_id.decode("ascii"), replayed=replayed,
            backend="live",
        )

    # -- the socket API ----------------------------------------------------
    async def send_all(self, data: bytes) -> None:
        if self._closed or self._fin_sent:
            raise AsyncSessionError("session closed for sending")
        if self.state == "failed":
            raise AsyncSessionError(f"session failed: {self._failure}")
        offset = self._sent
        self._replay.extend(data)
        self._sent += len(data)
        await self._ready.wait()
        if self.state == "failed":
            raise AsyncSessionError(f"session failed: {self._failure}")
        try:
            await _write_frame(
                self._sock, T_DATA, _U64.pack(offset) + bytes(data)
            )
        except (ConnectionError, OSError):
            # the bytes are safe in the replay buffer; resume delivers them
            self._connection_lost()

    async def recv(self, maxbytes: int) -> bytes:
        while not self._buf:
            if self._fin_at is not None and self._recv >= self._fin_at:
                return b""
            if self.state == "failed":
                raise EOFError(f"session failed: {self._failure}")
            if self._closed:
                return b""
            self._buf_event.clear()
            await self._buf_event.wait()
        take = bytes(self._buf[:maxbytes])
        del self._buf[: len(take)]
        return take

    async def recv_exactly(self, n: int) -> bytes:
        parts, remaining = [], n
        while remaining > 0:
            data = await self.recv(remaining)
            if not data:
                raise EOFError(f"session ended with {remaining}/{n} missing")
            parts.append(data)
            remaining -= len(data)
        return b"".join(parts)

    async def aclose(self, timeout: float = 20.0) -> None:
        """Graceful close: FIN, then wait until the peer acked everything."""
        if self._closed:
            return
        if self._sent > 0 or self.role == self.INITIATOR:
            if not self._fin_sent:
                self._fin_sent = True
                self._final = self._sent
                try:
                    await self._ready.wait()
                    await _write_frame(
                        self._sock, T_FIN, _U64.pack(self._final)
                    )
                except (ConnectionError, OSError):
                    self._connection_lost()
            deadline = time.monotonic() + timeout
            while self._acked < self._final and self.state != "failed":
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._teardown()
                    raise AsyncSessionError(
                        f"close timed out with {self._final - self._acked} "
                        "bytes unacked"
                    )
                before = self._acked
                self._ack_event.clear()
                try:
                    await asyncio.wait_for(
                        self._ack_event.wait(),
                        timeout=min(remaining, ACK_STALL_TIMEOUT),
                    )
                except asyncio.TimeoutError:
                    # no ack progress: a silent drop ate the FIN or the
                    # tail DATA — force a resume, which replays both
                    if (
                        self._acked == before
                        and self.state == "connected"
                        and self._sock is not None
                    ):
                        self._sock.abort()
                    continue
            if self.state == "failed":
                self._teardown()
                raise AsyncSessionError(f"session failed: {self._failure}")
        self.state = "finished"
        self._teardown()

    def _teardown(self) -> None:
        self._closed = True
        if self._recover_task is not None:
            self._recover_task.cancel()
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._sock is not None:
            self._sock.close()
        self._wake_all()

    def close(self) -> None:
        """Sync close (driver-stack compatible): schedules the graceful one."""
        if not self._closed:
            asyncio.ensure_future(self.aclose())

    def abort(self) -> None:
        """Hard kill of the *current transport* (not the session)."""
        if self._sock is not None:
            self._sock.abort()


class AsyncSessionListener:
    """Accepts session handshakes; routes reconnects to live sessions."""

    def __init__(self, listener: LiveListener, node: str = "responder"):
        self.listener = listener
        self.node = node
        self.sessions: dict[bytes, AsyncSessionLink] = {}
        self._accepts: asyncio.Queue = asyncio.Queue()
        self._task = asyncio.ensure_future(self._accept_loop())

    @property
    def addr(self):
        return self.listener.addr

    async def accept(self) -> AsyncSessionLink:
        """The next *new* session (reconnects never surface here)."""
        return await self._accepts.get()

    async def _accept_loop(self) -> None:
        while True:
            sock = await self.listener.accept()
            asyncio.ensure_future(self._handshake(sock))

    async def _handshake(self, sock: LiveSocket) -> None:
        try:
            kind, body = await _read_frame(sock)
            if kind != T_HELLO or len(body) != 24:
                raise AsyncSessionError("expected HELLO")
            session_id = bytes(body[:16])
            peer_recv = _U64.unpack(body[16:])[0]
            link = self.sessions.get(session_id)
            if link is None:
                link = AsyncSessionLink(
                    session_id, AsyncSessionLink.RESPONDER, node=self.node,
                    ctx=obs.current(),
                )
                self.sessions[session_id] = link
                await link._accept_attach(sock)
                self._accepts.put_nowait(link)
            else:
                await link._resume_attach(sock, peer_recv)
        except (EOFError, ConnectionError, OSError, AsyncSessionError):
            sock.close()

    def close(self) -> None:
        self._task.cancel()
        self.listener.close()
        for link in self.sessions.values():
            link._teardown()
        self.sessions.clear()
