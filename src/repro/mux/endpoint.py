"""Channel multiplexing over one established link (sim backend).

An expensively-brokered WAN link (spliced, SOCKS or routed — §3's
establishment methods) should be reused, not re-established per
conversation.  :class:`MuxEndpoint` wraps any established
:class:`~repro.core.links.Link` and multiplexes many logical
:class:`MuxChannel` streams over it:

* channels open/close independently (``open_channel`` /
  ``accept_channel``), each carrying an opaque ``tag`` and a
  :class:`~repro.obs.TraceContext` so establishment joins the causal
  trace;
* **credit-based per-channel flow control**: a sender may only put as
  many DATA bytes on the wire as the receiver has granted; when credit
  runs out the sender *blocks* (backpressure — bytes are never dropped),
  and the receiver replenishes credit as the application drains its
  buffer;
* a pluggable fair scheduler decides which ready channel transmits the
  next DATA frame, so one bulk transfer cannot starve interactive
  traffic sharing the link.

A channel *is* a :class:`~repro.core.links.Link`, so everything that
composes over links — driver stacks, block channels, survivable
sessions — composes over channels unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from .. import obs
from ..core.links import Link, LinkClosed
from ..core.wire import WireError, recv_frame, send_frame
from ..obs import TraceContext
from .frames import (
    CLOSE_ERROR,
    CLOSE_GRACEFUL,
    MUX_VERSION,
    MuxProtocolError,
    T_ACCEPT,
    T_CLOSE,
    T_CREDIT,
    T_DATA,
    T_HELLO,
    T_OPEN,
    T_WINDOW,
    decode_frame,
    encode_accept,
    encode_close,
    encode_credit,
    encode_data,
    encode_hello,
    encode_open,
    encode_window,
)
from .scheduler import RoundRobinScheduler, Scheduler

__all__ = ["MuxEndpoint", "MuxChannel", "MuxError", "DEFAULT_WINDOW",
           "MAX_DATA_PAYLOAD"]

#: default per-channel credit window (bytes in flight toward a receiver)
DEFAULT_WINDOW = 65536

#: largest DATA payload one scheduler turn may transmit — small enough
#: that round-robin interleaving stays fine-grained on a shared link
MAX_DATA_PAYLOAD = 16384


class MuxError(Exception):
    """Mux endpoint failure (protocol violation, version mismatch)."""


class MuxChannel(Link):
    """One logical stream multiplexed over a shared link.

    Mirrors the parent link's Table-1 metadata (``method``,
    ``native_tcp``, ``relayed``) so decision logic and benchmarks see
    through the mux; ``muxed`` marks the difference.
    """

    muxed = True

    def __init__(self, endpoint: "MuxEndpoint", channel_id: int, tag: bytes,
                 window: int, weight: int = 1,
                 ctx: Optional[TraceContext] = None):
        self._ep = endpoint
        self.channel_id = channel_id
        self.tag = tag
        self.weight = weight
        self.ctx = ctx
        self.method = endpoint.link.method
        self.native_tcp = endpoint.link.native_tcp
        self.relayed = endpoint.link.relayed
        #: bytes we may still send (granted by the peer, spent on DATA)
        self._tx_credit = 0
        self._txq: deque = deque()
        self._tx_buffered = 0
        self._tx_drain_waiters: list = []
        #: bytes the peer may still send toward us before a CREDIT grant
        self._rx_window = window
        self._rx_allowance = window
        #: grants withheld after a window shrink (drains the allowance)
        self._grant_debt = 0
        #: the peer's last announced steady-state window (via WINDOW)
        self.peer_rx_window = 0
        self._rxq: deque = deque()
        self._rx_buffered = 0
        self._rx_waiters: list = []
        self._consumed_since_grant = 0
        self._accepted = False
        self._accept_event = None
        self._local_closed = False
        self._close_sent = False
        self._remote_closed = False
        self._error: Optional[BaseException] = None

    # -- Link interface -----------------------------------------------------
    @property
    def sim(self):
        return self._ep.sim

    def send_all(self, data: bytes) -> Generator:
        """Queue ``data`` and block until the scheduler has put every byte
        on the wire under credit — backpressure, never drops."""
        if self._error is not None:
            raise self._error
        if self._local_closed:
            raise LinkClosed(f"mux channel {self.channel_id} closed")
        if not data:
            return
        self._txq.append(bytes(data))
        self._tx_buffered += len(data)
        self._ep._update_ready(self)
        waited = False
        while self._tx_buffered > 0 and self._error is None:
            ev = self.sim.event()
            self._tx_drain_waiters.append(ev)
            waited = True
            yield ev
        if self._error is not None:
            raise self._error
        if waited and self._tx_credit <= 0:
            self._ep._m_backpressure.inc()

    def recv(self, maxbytes: int) -> Generator:
        while not self._rxq and self._remote_closed is False and self._error is None:
            ev = self.sim.event()
            self._rx_waiters.append(ev)
            yield ev
        if not self._rxq:
            if self._error is not None:
                raise self._error
            return b""  # clean EOF: peer closed and buffer drained
        chunk = self._rxq.popleft()
        if len(chunk) > maxbytes:
            self._rxq.appendleft(chunk[maxbytes:])
            chunk = chunk[:maxbytes]
        self._rx_buffered -= len(chunk)
        self._ep._consumed(self, len(chunk))
        return chunk

    def close(self) -> None:
        self._ep._close_channel(self, CLOSE_GRACEFUL)

    def abort(self) -> None:
        self._txq.clear()
        self._tx_buffered = 0
        self._ep._close_channel(self, CLOSE_ERROR, reason="aborted")

    def retune_window(self, new_window: int) -> None:
        """Renegotiate this channel's receive credit window mid-stream.

        Growth takes effect immediately: the delta is granted as extra
        CREDIT so the sender can use it at once.  Shrink is *graceful* —
        no credit is clawed back; instead subsequent consumption-driven
        grants are withheld until the outstanding allowance has drained
        down to the new window.  Either way a WINDOW frame announces the
        new steady state to the peer (informational; the credit frames
        carry the actual flow-control effect).
        """
        if new_window <= 0:
            raise ValueError(f"window must be positive: {new_window}")
        old = self._rx_window
        if new_window == old:
            return
        self._rx_window = new_window
        delta = new_window - old
        if delta > 0:
            # growth beyond any outstanding shrink debt is new credit
            absorbed = min(self._grant_debt, delta)
            self._grant_debt -= absorbed
            grant = delta - absorbed
            if grant > 0:
                self._rx_allowance += grant
                obs.metrics().counter(
                    "mux.credit_granted", node=self._ep.node,
                    channel=str(self.channel_id),
                ).inc(grant)
                self._ep._send_ctl(encode_credit(self.channel_id, grant))
        else:
            self._grant_debt += -delta
        self._ep._send_ctl(encode_window(self.channel_id, new_window))
        obs.metrics().counter("mux.window_retunes_total",
                              node=self._ep.node).inc()
        obs.event("mux.window_retune", ctx=self.ctx, node=self._ep.node,
                  channel=self.channel_id, old=old, new=new_window)

    # -- internal -----------------------------------------------------------
    @property
    def _tx_ready(self) -> bool:
        return (
            self._tx_buffered > 0
            and self._tx_credit > 0
            and self._accepted
            and not self._close_sent
            and self._error is None
        )

    def _take_tx(self, limit: int) -> bytes:
        """Dequeue up to ``limit`` buffered bytes for one DATA frame."""
        chunk = self._txq.popleft()
        if len(chunk) > limit:
            self._txq.appendleft(chunk[limit:])
            chunk = chunk[:limit]
        self._tx_buffered -= len(chunk)
        return chunk

    def _wake(self, waiters: list) -> None:
        pending, waiters[:] = list(waiters), []
        for ev in pending:
            if not ev.triggered:
                ev.succeed()

    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        self._wake(self._tx_drain_waiters)
        self._wake(self._rx_waiters)
        if self._accept_event is not None and not self._accept_event.triggered:
            self._accept_event.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MuxChannel {self.channel_id} over {self._ep!r}>"


class MuxEndpoint:
    """Multiplexes logical channels over one established link."""

    INITIATOR = "initiator"
    RESPONDER = "responder"

    def __init__(self, link: Link, role: str, *, window: int = DEFAULT_WINDOW,
                 scheduler: Optional[Scheduler] = None, node: str = "",
                 flight=None):
        if role not in (self.INITIATOR, self.RESPONDER):
            raise ValueError(f"bad mux role {role!r}")
        self.link = link
        self.role = role
        self.window = int(window)
        self.node = node
        self.flight = flight
        self.scheduler = scheduler or RoundRobinScheduler()
        self._channels: dict[int, MuxChannel] = {}
        self._next_cid = 1 if role == self.INITIATOR else 2
        self._accept_q: deque = deque()
        self._accept_waiters: list = []
        self._ctlq: deque = deque()
        self._tx_wake = None
        self._closed = False
        #: when True, tearing down the last channel closes the endpoint
        #: (and the carrier link) — set by the factory so a muxed stack's
        #: lifetime matches what dedicated per-conversation links had
        self.close_when_idle = False
        self._had_channels = False
        self._error: Optional[BaseException] = None
        self._rx_proc = None
        self._tx_proc = None
        reg = obs.metrics()
        self._m_frames_tx = reg.counter("mux.frames_total", node=node,
                                        direction="tx")
        self._m_frames_rx = reg.counter("mux.frames_total", node=node,
                                        direction="rx")
        self._m_backpressure = reg.counter("mux.backpressure_waits", node=node)
        self._m_open = reg.gauge("mux.channels_open", node=node)

    # -- establishment -------------------------------------------------------
    @classmethod
    def establish(cls, link: Link, role: str, *, window: int = DEFAULT_WINDOW,
                  scheduler: Optional[Scheduler] = None, node: str = "",
                  flight=None, ctx: Optional[TraceContext] = None) -> Generator:
        """HELLO version exchange over ``link``, then a running endpoint.

        Both sides write their HELLO first and read second, so the
        exchange cannot deadlock on a full pipe.
        """
        ctx = ctx or obs.current()
        with obs.span("mux.establish", ctx=ctx.child() if ctx else None,
                      node=node, role=role, method=link.method):
            yield from send_frame(link, encode_hello(MUX_VERSION, window))
            body = yield from recv_frame(link)
            hello = decode_frame(body)
            if hello.kind != T_HELLO:
                raise MuxProtocolError(
                    f"expected HELLO, got {hello.name}")
            if hello.version != MUX_VERSION:
                raise MuxProtocolError(
                    f"mux version mismatch: ours {MUX_VERSION}, "
                    f"peer {hello.version}")
        endpoint = cls(link, role, window=window, scheduler=scheduler,
                       node=node, flight=flight)
        endpoint._start()
        if flight is not None:
            flight.note("mux.establish", ctx=ctx, role=role,
                        method=link.method, window=window)
        return endpoint

    def _start(self) -> None:
        sim = self.link.sim
        self._rx_proc = sim.process(self._rx_pump(), name=f"mux-rx:{self.node}")
        self._tx_proc = sim.process(self._tx_pump(), name=f"mux-tx:{self.node}")

    @property
    def sim(self):
        return self.link.sim

    @property
    def alive(self) -> bool:
        return not self._closed and self._error is None

    @property
    def channels_open(self) -> int:
        return len(self._channels)

    # -- channel API ---------------------------------------------------------
    def open_channel(self, tag: bytes = b"", *, window: Optional[int] = None,
                     weight: int = 1,
                     ctx: Optional[TraceContext] = None) -> Generator:
        """Open a logical channel; returns once the peer ACCEPTs."""
        self._check_alive()
        ctx = ctx or obs.current() or TraceContext.new()
        cid = self._next_cid
        self._next_cid += 2
        channel = MuxChannel(self, cid, tag, window or self.window,
                             weight=weight, ctx=ctx)
        self._channels[cid] = channel
        self._had_channels = True
        self.scheduler.add(cid, weight)
        child = ctx.child()
        with obs.span("mux.channel_open", ctx=child, node=self.node,
                      channel=cid, tag_bytes=len(tag)):
            self._send_ctl(encode_open(cid, channel._rx_window, tag,
                                       child.encode()))
            channel._accept_event = self.sim.event()
            yield channel._accept_event
            if channel._error is not None:
                raise channel._error
        self._m_open.set(len(self._channels))
        if self.flight is not None:
            self.flight.note("mux.channel_open", ctx=ctx, channel=cid,
                             node=self.node)
        return channel

    def accept_channel(self, tag: Optional[bytes] = None, *,
                       match=None) -> Generator:
        """Wait for a peer OPEN, grant our window, return the channel.

        With ``tag`` set, only a channel opened with that exact tag is
        taken — concurrent accepts on a shared endpoint each claim their
        own conversation's channels instead of racing for arrival order.
        ``match`` generalizes that to a predicate over the tag bytes
        (e.g. an in-band service request prefix); it must be written so
        it can never claim another consumer's tags — see
        :func:`repro.ipl.runtime.is_port_tag` for the canonical example.
        ``tag`` and ``match`` are mutually exclusive.
        """
        if tag is not None and match is not None:
            raise ValueError("accept_channel takes tag or match, not both")
        if tag is not None:
            match = lambda t, want=tag: t == want  # noqa: E731
        channel = None
        while channel is None:
            if match is None:
                if self._accept_q:
                    channel = self._accept_q.popleft()
                    break
            else:
                for queued in self._accept_q:
                    if match(queued.tag):
                        channel = queued
                        self._accept_q.remove(queued)
                        break
                if channel is not None:
                    break
            self._check_alive()
            ev = self.sim.event()
            self._accept_waiters.append(ev)
            yield ev
            if self._error is not None:
                raise self._error
        channel._accepted = True
        self._send_ctl(encode_accept(channel.channel_id, channel._rx_window))
        self._m_open.set(len(self._channels))
        if self.flight is not None:
            self.flight.note("mux.channel_accept", ctx=channel.ctx,
                             channel=channel.channel_id, node=self.node)
        return channel

    def close(self) -> None:
        """Tear down the endpoint and every channel (the link dies too)."""
        if self._closed:
            return
        self._closed = True
        exc = LinkClosed("mux endpoint closed")
        for channel in list(self._channels.values()):
            channel._fail(exc)
        self._channels.clear()
        self._m_open.set(0)
        self._wake_tx()
        self._wake_acceptors()
        self.link.close()

    # -- pumps ---------------------------------------------------------------
    def _rx_pump(self) -> Generator:
        from ..core.links import transport_errors
        errors = transport_errors()
        try:
            while not self._closed:
                body = yield from recv_frame(self.link)
                self._m_frames_rx.inc()
                self._dispatch(decode_frame(body))
        except errors as exc:
            self._fail(exc)
        except (MuxProtocolError, WireError) as exc:
            self._fail(exc)
            self.link.abort()

    def _tx_pump(self) -> Generator:
        from ..core.links import transport_errors
        errors = transport_errors()
        reg = obs.metrics()
        try:
            while True:
                sent_something = False
                while self._ctlq:
                    frame = self._ctlq.popleft()
                    yield from send_frame(self.link, frame)
                    self._m_frames_tx.inc()
                    sent_something = True
                channel = self._pick_ready()
                if channel is not None:
                    n = min(MAX_DATA_PAYLOAD, channel._tx_credit,
                            channel._tx_buffered)
                    payload = channel._take_tx(n)
                    channel._tx_credit -= len(payload)
                    self._update_ready(channel)
                    yield from send_frame(
                        self.link, encode_data(channel.channel_id, payload))
                    self._m_frames_tx.inc()
                    reg.counter("mux.tx_bytes", node=self.node,
                                channel=str(channel.channel_id)).inc(len(payload))
                    reg.counter("mux.sched_turns", node=self.node,
                                channel=str(channel.channel_id)).inc()
                    self.scheduler.sent(channel.channel_id, len(payload))
                    if channel._tx_buffered == 0:
                        channel._wake(channel._tx_drain_waiters)
                        self._flush_pending_close(channel)
                    sent_something = True
                if sent_something:
                    continue
                if self._closed or self._error is not None:
                    return
                if (self.close_when_idle and self._had_channels
                        and not self._channels):
                    self.close()
                    return
                self._tx_wake = self.sim.event()
                yield self._tx_wake
                self._tx_wake = None
        except errors as exc:
            self._fail(exc)

    def _pick_ready(self) -> Optional[MuxChannel]:
        try:
            cid = self.scheduler.pick()
        except LookupError:
            return None
        channel = self._channels.get(cid)
        if channel is None or not channel._tx_ready:
            # stale readiness — scrub and try again next turn
            self.scheduler.set_ready(cid, False)
            return None
        return channel

    # -- frame dispatch ------------------------------------------------------
    def _dispatch(self, frame) -> None:
        if frame.kind == T_OPEN:
            self._on_open(frame)
        elif frame.kind == T_ACCEPT:
            self._on_accept(frame)
        elif frame.kind == T_DATA:
            self._on_data(frame)
        elif frame.kind == T_CREDIT:
            self._on_credit(frame)
        elif frame.kind == T_CLOSE:
            self._on_close(frame)
        elif frame.kind == T_WINDOW:
            self._on_window(frame)
        elif frame.kind == T_HELLO:
            raise MuxProtocolError("unexpected HELLO after establishment")
        else:  # pragma: no cover - decode_frame already rejects these
            raise MuxProtocolError(f"unexpected frame {frame.name}")

    def _on_open(self, frame) -> None:
        cid = frame.channel
        expected_parity = 0 if self.role == self.INITIATOR else 1
        if cid % 2 != expected_parity or cid in self._channels:
            raise MuxProtocolError(f"bad OPEN channel id {cid}")
        ctx = None
        if frame.ctx:
            try:
                ctx = TraceContext.decode(frame.ctx)
            except Exception:
                ctx = None
        channel = MuxChannel(self, cid, frame.tag, self.window, ctx=ctx)
        channel._tx_credit = frame.window
        channel._accepted = False  # becomes True in accept_channel
        self._channels[cid] = channel
        self._had_channels = True
        self.scheduler.add(cid, 1)
        obs.event("mux.open_received", ctx=ctx, node=self.node, channel=cid,
                  window=frame.window)
        self._accept_q.append(channel)
        self._wake_acceptors()

    def _on_accept(self, frame) -> None:
        channel = self._channels.get(frame.channel)
        if channel is None:
            raise MuxProtocolError(f"ACCEPT for unknown channel {frame.channel}")
        channel._accepted = True
        channel._tx_credit += frame.window
        if channel._accept_event is not None and not channel._accept_event.triggered:
            channel._accept_event.succeed()
        self._update_ready(channel)

    def _on_data(self, frame) -> None:
        channel = self._channels.get(frame.channel)
        if channel is None:
            raise MuxProtocolError(f"DATA for unknown channel {frame.channel}")
        n = len(frame.payload)
        channel._rx_allowance -= n
        if channel._rx_allowance < 0:
            raise MuxProtocolError(
                f"credit violation on channel {frame.channel}: "
                f"{-channel._rx_allowance} bytes over the granted window")
        channel._rxq.append(frame.payload)
        channel._rx_buffered += n
        obs.metrics().counter("mux.rx_bytes", node=self.node,
                              channel=str(frame.channel)).inc(n)
        channel._wake(channel._rx_waiters)

    def _on_credit(self, frame) -> None:
        channel = self._channels.get(frame.channel)
        if channel is None:
            return  # grant raced our CLOSE: harmless
        channel._tx_credit += frame.grant
        self._update_ready(channel)

    def _on_window(self, frame) -> None:
        channel = self._channels.get(frame.channel)
        if channel is None:
            return  # announcement raced our CLOSE: harmless
        channel.peer_rx_window = frame.window
        obs.event("mux.window_announced", ctx=channel.ctx, node=self.node,
                  channel=frame.channel, window=frame.window)

    def _on_close(self, frame) -> None:
        channel = self._channels.get(frame.channel)
        if channel is None:
            return
        channel._remote_closed = True
        if frame.flags == CLOSE_ERROR and channel._error is None:
            channel._error = LinkClosed(
                f"peer aborted mux channel {frame.channel}: {frame.reason}")
        channel._wake(channel._rx_waiters)
        obs.event("mux.close_received", ctx=channel.ctx, node=self.node,
                  channel=frame.channel, flags=frame.flags)
        if channel._close_sent:
            self._drop_channel(channel)

    # -- credit + scheduling hooks -------------------------------------------
    def _consumed(self, channel: MuxChannel, n: int) -> None:
        """The application drained ``n`` rx bytes: maybe replenish credit."""
        channel._consumed_since_grant += n
        if channel._remote_closed:
            return
        if channel._consumed_since_grant >= max(1, channel._rx_window // 2):
            grant = channel._consumed_since_grant
            channel._consumed_since_grant = 0
            if channel._grant_debt:
                # a window shrink is pending: withhold grants until the
                # outstanding allowance has drained to the new window
                absorbed = min(channel._grant_debt, grant)
                channel._grant_debt -= absorbed
                grant -= absorbed
            if grant <= 0:
                return
            channel._rx_allowance += grant
            obs.metrics().counter("mux.credit_granted", node=self.node,
                                  channel=str(channel.channel_id)).inc(grant)
            self._send_ctl(encode_credit(channel.channel_id, grant))

    def _update_ready(self, channel: MuxChannel) -> None:
        self.scheduler.set_ready(channel.channel_id, channel._tx_ready)
        if channel._tx_ready:
            self._wake_tx()

    def _send_ctl(self, frame: bytes) -> None:
        self._check_alive()
        self._ctlq.append(frame)
        self._wake_tx()

    def _close_channel(self, channel: MuxChannel, flags: int,
                       reason: str = "") -> None:
        if channel._local_closed:
            return
        channel._local_closed = True
        channel._pending_close = (flags, reason)
        if channel._tx_buffered == 0 or flags == CLOSE_ERROR:
            self._flush_pending_close(channel)

    def _flush_pending_close(self, channel: MuxChannel) -> None:
        pending = getattr(channel, "_pending_close", None)
        if pending is None or channel._close_sent:
            return
        flags, reason = pending
        channel._close_sent = True
        if self.alive:
            self._send_ctl(encode_close(channel.channel_id, flags, reason))
        if channel._remote_closed:
            self._drop_channel(channel)

    def _drop_channel(self, channel: MuxChannel) -> None:
        self._channels.pop(channel.channel_id, None)
        self.scheduler.remove(channel.channel_id)
        self._m_open.set(len(self._channels))
        if self.close_when_idle and not self._channels:
            self._wake_tx()  # the tx pump closes us once the ctl queue drains

    # -- failure -------------------------------------------------------------
    def _fail(self, exc: BaseException) -> None:
        if self._error is None:
            self._error = exc
        for channel in list(self._channels.values()):
            channel._fail(exc)
        self._wake_tx()
        self._wake_acceptors()
        if self.flight is not None:
            self.flight.note("mux.endpoint_failed", node=self.node,
                             error=type(exc).__name__)

    def _check_alive(self) -> None:
        if self._error is not None:
            raise self._error
        if self._closed:
            raise LinkClosed("mux endpoint closed")

    def _wake_tx(self) -> None:
        if self._tx_wake is not None and not self._tx_wake.triggered:
            self._tx_wake.succeed()

    def _wake_acceptors(self) -> None:
        pending, self._accept_waiters = self._accept_waiters, []
        for ev in pending:
            if not ev.triggered:
                ev.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MuxEndpoint {self.role} node={self.node} "
                f"channels={len(self._channels)}>")
