"""The mux frame protocol: one established link, many logical channels.

Transport-agnostic codec — every frame is encoded to (and decoded from) a
plain byte string; the simulated endpoint carries them inside the u32
length-prefixed frames of :mod:`repro.core.wire`, and a live (asyncio)
endpoint can carry the same bytes inside its own framing.  The protocol is
versioned alongside framing v2: the first frame in each direction is a
``HELLO`` carrying :data:`MUX_VERSION`, and an endpoint refuses to talk to
a peer speaking a different major version.

Frame layout (after the transport length prefix)::

    u8 type | u32 channel_id | type-specific body

* ``HELLO``  — ``u16 version, u32 default_window`` (channel_id 0)
* ``OPEN``   — ``u32 window, lp_bytes tag, lp_bytes trace_ctx`` — the
  opener advertises the credit window it grants for data *toward* it;
  ``tag`` is an opaque application blob (the IPL uses it to carry the
  port-connect request); ``trace_ctx`` is an encoded
  :class:`~repro.obs.TraceContext` (possibly empty) so channel
  establishment joins the initiator's causal trace.
* ``ACCEPT`` — ``u32 window`` — the acceptor's credit grant.
* ``DATA``   — ``lp_bytes payload`` — consumes ``len(payload)`` credit.
* ``CREDIT`` — ``u32 grant`` — replenishes the sender's credit as the
  receiving application drains its buffer.
* ``CLOSE``  — ``u8 flags, lp_str reason`` — graceful half-close
  (flags 0) or error close (flags 1).
* ``WINDOW`` — ``u32 window`` — mid-stream credit-window renegotiation:
  the receiver announces its *new* steady-state window (the tuner's
  doing).  Additive and advisory — a peer that predates it would reject
  the frame, but WINDOW is only ever sent after a retune is requested
  locally, so the base protocol (and :data:`MUX_VERSION`) is unchanged.

Channel ids are chosen by the opener: the endpoint that initiated the
underlying link allocates odd ids, the acceptor even ids, so both sides
can open channels without coordination (the QUIC/HTTP-2 parity trick).
"""

from __future__ import annotations

from typing import Optional

from ..util.framing import ByteReader, ByteWriter, FrameError

__all__ = [
    "MUX_VERSION",
    "T_HELLO",
    "T_OPEN",
    "T_ACCEPT",
    "T_DATA",
    "T_CREDIT",
    "T_CLOSE",
    "T_WINDOW",
    "FRAME_NAMES",
    "CLOSE_GRACEFUL",
    "CLOSE_ERROR",
    "MuxFrame",
    "MuxProtocolError",
    "encode_hello",
    "encode_open",
    "encode_accept",
    "encode_data",
    "encode_credit",
    "encode_close",
    "encode_window",
    "decode_frame",
]

#: protocol version exchanged in HELLO; bumped on incompatible changes
MUX_VERSION = 1

T_HELLO = 0
T_OPEN = 1
T_ACCEPT = 2
T_DATA = 3
T_CREDIT = 4
T_CLOSE = 5
T_WINDOW = 6

FRAME_NAMES = {
    T_HELLO: "hello",
    T_OPEN: "open",
    T_ACCEPT: "accept",
    T_DATA: "data",
    T_CREDIT: "credit",
    T_CLOSE: "close",
    T_WINDOW: "window",
}

CLOSE_GRACEFUL = 0
CLOSE_ERROR = 1


class MuxProtocolError(Exception):
    """Malformed mux frame or protocol violation."""


class MuxFrame:
    """One decoded mux frame (immutable value object)."""

    __slots__ = ("kind", "channel", "version", "window", "tag", "ctx",
                 "payload", "grant", "flags", "reason")

    def __init__(self, kind: int, channel: int, *, version: int = 0,
                 window: int = 0, tag: bytes = b"", ctx: bytes = b"",
                 payload: bytes = b"", grant: int = 0, flags: int = 0,
                 reason: str = ""):
        self.kind = kind
        self.channel = channel
        self.version = version
        self.window = window
        self.tag = tag
        self.ctx = ctx
        self.payload = payload
        self.grant = grant
        self.flags = flags
        self.reason = reason

    @property
    def name(self) -> str:
        return FRAME_NAMES.get(self.kind, f"type{self.kind}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MuxFrame {self.name} ch={self.channel}>"


def _header(kind: int, channel: int) -> ByteWriter:
    return ByteWriter().u8(kind).u32(channel)


def encode_hello(version: int = MUX_VERSION, window: int = 0) -> bytes:
    return _header(T_HELLO, 0).u16(version).u32(window).getvalue()


def encode_open(channel: int, window: int, tag: bytes = b"",
                ctx: Optional[bytes] = None) -> bytes:
    return (
        _header(T_OPEN, channel)
        .u32(window)
        .lp_bytes(tag)
        .lp_bytes(ctx or b"")
        .getvalue()
    )


def encode_accept(channel: int, window: int) -> bytes:
    return _header(T_ACCEPT, channel).u32(window).getvalue()


def encode_data(channel: int, payload: bytes) -> bytes:
    return _header(T_DATA, channel).lp_bytes(payload).getvalue()


def encode_credit(channel: int, grant: int) -> bytes:
    return _header(T_CREDIT, channel).u32(grant).getvalue()


def encode_close(channel: int, flags: int = CLOSE_GRACEFUL,
                 reason: str = "") -> bytes:
    return _header(T_CLOSE, channel).u8(flags).lp_str(reason).getvalue()


def encode_window(channel: int, window: int) -> bytes:
    return _header(T_WINDOW, channel).u32(window).getvalue()


def decode_frame(body: bytes) -> MuxFrame:
    """Decode one mux frame body (without the transport length prefix)."""
    try:
        reader = ByteReader(body)
        kind = reader.u8()
        channel = reader.u32()
        if kind == T_HELLO:
            frame = MuxFrame(kind, channel, version=reader.u16(),
                             window=reader.u32())
        elif kind == T_OPEN:
            frame = MuxFrame(kind, channel, window=reader.u32(),
                             tag=reader.lp_bytes(), ctx=reader.lp_bytes())
        elif kind == T_ACCEPT:
            frame = MuxFrame(kind, channel, window=reader.u32())
        elif kind == T_DATA:
            frame = MuxFrame(kind, channel, payload=reader.lp_bytes())
        elif kind == T_CREDIT:
            frame = MuxFrame(kind, channel, grant=reader.u32())
        elif kind == T_CLOSE:
            frame = MuxFrame(kind, channel, flags=reader.u8(),
                             reason=reader.lp_str())
        elif kind == T_WINDOW:
            frame = MuxFrame(kind, channel, window=reader.u32())
        else:
            raise MuxProtocolError(f"unknown mux frame type {kind}")
        reader.expect_end()
        return frame
    except FrameError as exc:
        raise MuxProtocolError(f"malformed mux frame: {exc}") from exc
