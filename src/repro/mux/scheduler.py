"""Fair scheduling of channel transmission over one shared link.

The endpoint's TX pump repeatedly asks its scheduler which *ready*
channel (has buffered data AND positive credit) may send the next DATA
frame.  Two policies ship:

* :class:`RoundRobinScheduler` — equal turns; no channel sends a second
  frame while another ready channel waits.  This is the default, and is
  what the chaos fairness invariant measures: one bulk transfer cannot
  starve service-link traffic (MPWide's fixed-pool scheduling shape).
* :class:`WeightedScheduler` — deficit round robin: each turn a channel
  accrues ``weight * quantum`` byte credit and may send while its
  deficit lasts, so a weight-3 channel gets ~3x the bytes of a weight-1
  channel under contention, while still never starving anyone.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["Scheduler", "RoundRobinScheduler", "WeightedScheduler",
           "make_scheduler"]


class Scheduler:
    """Base scheduler: tracks ready channels, picks the next to send."""

    def add(self, channel_id: int, weight: int = 1) -> None:
        raise NotImplementedError

    def remove(self, channel_id: int) -> None:
        raise NotImplementedError

    def set_ready(self, channel_id: int, ready: bool) -> None:
        raise NotImplementedError

    def pick(self) -> int:
        """The channel id that sends next; raises LookupError if none ready."""
        raise NotImplementedError

    def sent(self, channel_id: int, nbytes: int) -> None:
        """Account ``nbytes`` just sent on ``channel_id`` (hook for DRR)."""


class RoundRobinScheduler(Scheduler):
    """Strict round robin over ready channels (insertion order, rotated)."""

    def __init__(self):
        self._ready: "OrderedDict[int, None]" = OrderedDict()

    def add(self, channel_id: int, weight: int = 1) -> None:
        pass  # membership is implied by readiness

    def remove(self, channel_id: int) -> None:
        self._ready.pop(channel_id, None)

    def set_ready(self, channel_id: int, ready: bool) -> None:
        if ready:
            # keep the existing queue position for an already-ready channel
            self._ready.setdefault(channel_id, None)
        else:
            self._ready.pop(channel_id, None)

    def pick(self) -> int:
        if not self._ready:
            raise LookupError("no ready channel")
        cid, _ = self._ready.popitem(last=False)
        self._ready[cid] = None  # move to the back: it sends, others go first
        return cid


class WeightedScheduler(Scheduler):
    """Deficit round robin: bytes proportional to weight under contention."""

    def __init__(self, quantum: int = 16384):
        self.quantum = quantum
        self._weights: dict[int, int] = {}
        self._deficit: dict[int, int] = {}
        self._ready: "OrderedDict[int, None]" = OrderedDict()

    def add(self, channel_id: int, weight: int = 1) -> None:
        self._weights[channel_id] = max(1, int(weight))
        self._deficit.setdefault(channel_id, 0)

    def remove(self, channel_id: int) -> None:
        self._weights.pop(channel_id, None)
        self._deficit.pop(channel_id, None)
        self._ready.pop(channel_id, None)

    def set_ready(self, channel_id: int, ready: bool) -> None:
        if ready:
            self._weights.setdefault(channel_id, 1)
            self._deficit.setdefault(channel_id, 0)
            self._ready.setdefault(channel_id, None)
        else:
            self._ready.pop(channel_id, None)
            # an idle channel must not bank credit for later bursts
            self._deficit[channel_id] = 0

    def pick(self) -> int:
        if not self._ready:
            raise LookupError("no ready channel")
        # rotate until a channel with positive deficit comes up, topping
        # up deficits as channels pass the head — O(ready) per pick worst
        # case, constant amortized
        for _ in range(len(self._ready) + 1):
            cid = next(iter(self._ready))
            if self._deficit.get(cid, 0) > 0:
                return cid
            self._deficit[cid] = self._deficit.get(cid, 0) + (
                self._weights.get(cid, 1) * self.quantum
            )
            self._ready.move_to_end(cid)
        return next(iter(self._ready))

    def sent(self, channel_id: int, nbytes: int) -> None:
        if channel_id in self._deficit:
            self._deficit[channel_id] -= nbytes
            if self._deficit[channel_id] <= 0 and channel_id in self._ready:
                self._ready.move_to_end(channel_id)


def make_scheduler(name: str) -> Scheduler:
    """Scheduler from its wire name (``rr`` default, ``drr`` weighted)."""
    if name in ("", "rr", "round_robin"):
        return RoundRobinScheduler()
    if name in ("drr", "weighted"):
        return WeightedScheduler()
    raise ValueError(f"unknown mux scheduler {name!r}")
