"""Channel multiplexing: many logical channels per established link.

The paper separates connection establishment from link utilization
(§3–4); this subsystem closes the loop by letting one expensively
established WAN link carry many independent conversations.  See
``docs/MUX.md`` for the frame protocol, credit semantics and the
scheduler contract.

Public surface:

* :class:`MuxEndpoint` — wraps any established link; ``open_channel`` /
  ``accept_channel`` yield :class:`MuxChannel` streams.
* :class:`MuxChannel` — a :class:`~repro.core.links.Link`: driver
  stacks, block channels and survivable sessions compose over it
  unchanged.
* :mod:`repro.mux.frames` — the transport-agnostic frame codec
  (versioned alongside framing v2), shared by sim and live endpoints.
* :mod:`repro.mux.scheduler` — round-robin (default) and weighted
  deficit-round-robin transmission scheduling.
"""

from .endpoint import (
    DEFAULT_WINDOW,
    MAX_DATA_PAYLOAD,
    MuxChannel,
    MuxEndpoint,
    MuxError,
)
from .frames import MUX_VERSION, MuxFrame, MuxProtocolError, decode_frame
from .scheduler import (
    RoundRobinScheduler,
    Scheduler,
    WeightedScheduler,
    make_scheduler,
)

__all__ = [
    "MuxEndpoint",
    "MuxChannel",
    "MuxError",
    "MuxProtocolError",
    "MuxFrame",
    "decode_frame",
    "MUX_VERSION",
    "DEFAULT_WINDOW",
    "MAX_DATA_PAYLOAD",
    "Scheduler",
    "RoundRobinScheduler",
    "WeightedScheduler",
    "make_scheduler",
]
