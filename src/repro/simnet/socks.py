"""SOCKS5 proxy (RFC 1928) over simulated TCP — paper §3.3.

"The main versatile TCP proxy is SOCKS, which also has been standardized."
The proxy runs on a site gateway (dual-homed host); clients inside the
firewall connect out to it and it dials the true destination on their
behalf.

We implement the two commands the paper's scenarios need:

* **CONNECT** — outbound through a firewall, or out of a private/NATted
  site ("it also allows hosts with private IP addresses ... to connect to
  the outside").
* **BIND** — the server-behind-the-proxy case: "clients have to connect to
  a dynamically-allocated port number on the proxy itself, which requires
  some information exchange" — which is exactly why SOCKS is unusable for
  bootstrap links (Table 1) and needs brokering.

Wire format follows RFC 1928 (no-auth method, IPv4 address type) so the
byte-level framing is real, not a stand-in.

Causal tracing rides the method negotiation: RFC 1928 reserves methods
``0x80``–``0xFE`` for private use, so a client holding a
:class:`~repro.obs.context.TraceContext` offers method ``0x80``
("trace metadata") alongside no-auth.  A server that understands it
selects ``0x80`` and reads the 24-byte context before the request; any
other SOCKS server simply picks no-auth and the handshake proceeds
untraced — the extension degrades cleanly.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional

from .. import obs
from ..obs import TraceContext
from ..obs.flight import FlightRecorder
from .packet import Addr, int_to_ip, ip_to_int
from .sockets import SimSocket, connect, listen
from .tcp import SocketClosed

__all__ = [
    "SocksServer",
    "SocksError",
    "socks_connect",
    "socks_bind",
    "socks_accept_bound",
    "PIPE_CHUNK",
    "METHOD_TRACE",
]

SOCKS_VERSION = 5
CMD_CONNECT = 1
CMD_BIND = 2
ATYP_IPV4 = 1
REP_OK = 0
REP_FAILURE = 1
REP_REFUSED = 5
METHOD_NOAUTH = 0
#: private-use method (RFC 1928 §3) carrying a 24-byte trace context
METHOD_TRACE = 0x80

PIPE_CHUNK = 65536


class SocksError(Exception):
    """SOCKS negotiation failed."""


def _pack_addr(addr: Addr) -> bytes:
    return struct.pack("!B4sH", ATYP_IPV4, ip_to_int(addr[0]).to_bytes(4, "big"), addr[1])


def _reply(rep: int, addr: Addr = ("0.0.0.0", 0)) -> bytes:
    return struct.pack("!BBB", SOCKS_VERSION, rep, 0) + _pack_addr(addr)


def _parse_addr(raw: bytes) -> Addr:
    atyp, packed, port = struct.unpack("!B4sH", raw)
    if atyp != ATYP_IPV4:
        raise SocksError(f"unsupported address type {atyp}")
    return (int_to_ip(int.from_bytes(packed, "big")), port)


class SocksServer:
    """A SOCKS5 server process on a (gateway) host."""

    def __init__(self, host, port: int = 1080):
        self.host = host
        self.port = port
        self.listener = None
        self.sessions = 0
        self._process = None
        #: sockets of in-flight proxied streams, severed on :meth:`stop`
        self._active: set[SimSocket] = set()
        #: always-on black box (node-tagged by the proxy host's address)
        self.flight = FlightRecorder(
            f"proxy:{host.ip}", clock=lambda: host.sim.now
        )

    def start(self) -> None:
        """Begin accepting SOCKS clients (spawns the accept loop)."""
        self.listener = listen(self.host, self.port)
        self._process = self.host.sim.process(self._accept_loop(), name="socks-accept")

    def stop(self) -> None:
        """Crash the proxy: stop accepting and sever every proxied stream.

        Fault-injection hook (``proxy_restart``): a gateway proxy reboot
        resets every stream spliced through it, even though the endpoints'
        own networks never blinked.  :meth:`start` brings it back.
        """
        if self.listener is not None:
            self.listener.close()
            self.listener = None
        for sock in list(self._active):
            try:
                sock.abort()
            except Exception:
                pass
        self._active.clear()

    @property
    def addr(self) -> Addr:
        return (self.host.ip, self.port)

    def _accept_loop(self) -> Generator:
        try:
            while True:
                client = yield from self.listener.accept()
                self.host.sim.process(self._session(client), name="socks-session")
                self.sessions += 1
        except SocketClosed:
            return  # stopped

    def _session(self, client: SimSocket) -> Generator:
        self._active.add(client)
        try:
            # Greeting: VER NMETHODS METHODS...
            head = yield from client.recv_exactly(2)
            ver, nmethods = head[0], head[1]
            if ver != SOCKS_VERSION:
                raise SocksError(f"bad version {ver}")
            methods = yield from client.recv_exactly(nmethods)
            ctx = None
            if METHOD_TRACE in methods:
                # Select the trace-metadata method: the client follows up
                # with its 24-byte context before the request.
                yield from client.send_all(bytes([SOCKS_VERSION, METHOD_TRACE]))
                blob = yield from client.recv_exactly(24)
                try:
                    ctx = TraceContext.decode(blob).child()
                except ValueError:
                    ctx = None
            else:
                yield from client.send_all(bytes([SOCKS_VERSION, METHOD_NOAUTH]))

            # Request: VER CMD RSV ATYP ADDR PORT
            req = yield from client.recv_exactly(4 + 4 + 2)
            ver, cmd, _rsv = req[0], req[1], req[2]
            target = _parse_addr(req[3:])
            if ver != SOCKS_VERSION:
                raise SocksError(f"bad version {ver}")
            self.flight.note(
                "socks.request", ctx=ctx,
                cmd="connect" if cmd == CMD_CONNECT else f"cmd{cmd}",
                target=f"{target[0]}:{target[1]}",
            )

            if cmd == CMD_CONNECT:
                yield from self._do_connect(client, target, ctx)
            elif cmd == CMD_BIND:
                yield from self._do_bind(client, target, ctx)
            else:
                yield from client.send_all(_reply(REP_FAILURE))
                client.close()
        except (EOFError, SocksError):
            client.abort()
            self._active.discard(client)

    def _do_connect(
        self, client: SimSocket, target: Addr, ctx: Optional[TraceContext] = None
    ) -> Generator:
        try:
            upstream = yield from connect(self.host, target)
        except Exception:
            self.flight.note("socks.refused", ctx=ctx, target=f"{target[0]}:{target[1]}")
            yield from client.send_all(_reply(REP_REFUSED))
            client.close()
            self._active.discard(client)
            return
        yield from client.send_all(_reply(REP_OK, upstream.laddr))
        self._start_pipes(client, upstream, ctx)

    def _do_bind(
        self, client: SimSocket, _hint: Addr, ctx: Optional[TraceContext] = None
    ) -> Generator:
        bound = listen(self.host, 0, backlog=1)
        # First reply: where the remote peer should connect.
        yield from client.send_all(_reply(REP_OK, bound.addr))
        inbound = yield from bound.accept()
        bound.close()
        # Second reply: who connected.
        yield from client.send_all(_reply(REP_OK, inbound.raddr))
        self._start_pipes(client, inbound, ctx)

    def _start_pipes(
        self, a: SimSocket, b: SimSocket, ctx: Optional[TraceContext] = None
    ) -> None:
        sim = self.host.sim
        node = self.flight.node
        self._active.update((a, b))
        done = {"count": 0, "bytes": 0}
        t0 = sim.now

        def run(src: SimSocket, dst: SimSocket) -> Generator:
            done["bytes"] += yield from _pipe(src, dst)
            done["count"] += 1
            if done["count"] == 2:
                self._active.discard(a)
                self._active.discard(b)
                obs.record_span(
                    "socks.pipe", t0, sim.now, ctx=ctx, node=node,
                    bytes=done["bytes"],
                )

        sim.process(run(a, b), name="socks-pipe")
        sim.process(run(b, a), name="socks-pipe")


def _pipe(src: SimSocket, dst: SimSocket) -> Generator:
    """Copy src -> dst until EOF, then half-close dst; returns byte count."""
    copied = 0
    try:
        while True:
            data = yield from src.recv(PIPE_CHUNK)
            if not data:
                break
            copied += len(data)
            yield from dst.send_all(data)
    except Exception:
        dst.abort()
        return copied
    dst.close()
    return copied


# -- client side ---------------------------------------------------------------


def _client_handshake(
    sock: SimSocket, ctx: Optional[TraceContext] = None
) -> Generator:
    if ctx is None:
        yield from sock.send_all(bytes([SOCKS_VERSION, 1, METHOD_NOAUTH]))
    else:
        # Offer trace metadata alongside no-auth; either answer is fine.
        yield from sock.send_all(
            bytes([SOCKS_VERSION, 2, METHOD_TRACE, METHOD_NOAUTH])
        )
    resp = yield from sock.recv_exactly(2)
    if resp[0] != SOCKS_VERSION:
        raise SocksError(f"method negotiation failed: {resp!r}")
    if resp[1] == METHOD_TRACE and ctx is not None:
        yield from sock.send_all(ctx.encode())
    elif resp[1] != METHOD_NOAUTH:
        raise SocksError(f"method negotiation failed: {resp!r}")


def _read_reply(sock: SimSocket) -> Generator:
    head = yield from sock.recv_exactly(3)
    if head[0] != SOCKS_VERSION:
        raise SocksError(f"bad version in reply {head[0]}")
    if head[1] != REP_OK:
        raise SocksError(f"proxy reported error {head[1]}")
    addr = _parse_addr((yield from sock.recv_exactly(7)))
    return addr


def socks_connect(
    host, proxy: Addr, target: Addr, ctx: Optional[TraceContext] = None
) -> Generator:
    """CONNECT to ``target`` through the SOCKS proxy at ``proxy``.

    Returns a :class:`SimSocket` whose byte stream is piped to the target —
    "the link may then be used exactly like a direct TCP connection".
    """
    sock = yield from connect(host, proxy)
    try:
        yield from _client_handshake(sock, ctx)
        yield from sock.send_all(
            struct.pack("!BBB", SOCKS_VERSION, CMD_CONNECT, 0) + _pack_addr(target)
        )
        yield from _read_reply(sock)
    except Exception:
        sock.abort()
        raise
    return sock


def socks_bind(
    host, proxy: Addr, ctx: Optional[TraceContext] = None
) -> Generator:
    """BIND: ask the proxy for an inbound listening address.

    Returns ``(sock, bound_addr)``; share ``bound_addr`` with the remote
    peer out of band, then call :func:`socks_accept_bound`.
    """
    sock = yield from connect(host, proxy)
    try:
        yield from _client_handshake(sock, ctx)
        yield from sock.send_all(
            struct.pack("!BBB", SOCKS_VERSION, CMD_BIND, 0) + _pack_addr(("0.0.0.0", 0))
        )
        bound_addr = yield from _read_reply(sock)
    except Exception:
        sock.abort()
        raise
    return sock, bound_addr


def socks_accept_bound(sock: SimSocket) -> Generator:
    """Wait for the second BIND reply; returns the connecting peer's addr."""
    peer = yield from _read_reply(sock)
    return peer
