"""A from-scratch TCP for the simulated network.

This implements the mechanisms the paper's arguments rest on:

* RFC 793 connection establishment — the asymmetric **client/server
  handshake** *and* **simultaneous open** ("TCP splicing", paper §3.2,
  Figure 1): a socket in SYN_SENT that receives a bare SYN answers with
  SYN+ACK and completes symmetrically.
* Reno-style congestion control — slow start, congestion avoidance, fast
  retransmit/recovery on three duplicate ACKs, retransmission timeout with
  exponential backoff and Karn's rule for RTT sampling.  Together with the
  receive-window limit (OS socket buffers, paper §4.2) this produces the
  WAN throughput behaviour of Figures 9 and 10.
* Flow control — advertised windows derived from receive-buffer occupancy,
  zero-window persist probes.

The API is event-based: operations return :class:`~repro.simnet.engine.Event`
objects that simulation processes yield on.  The blocking-style wrappers
live in :mod:`repro.simnet.sockets`.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .engine import Event, Simulator
from .packet import Addr, Segment

__all__ = [
    "TcpConfig",
    "TcpStack",
    "TcpSocket",
    "ListenSocket",
    "TcpError",
    "ConnectTimeout",
    "ConnectRefused",
    "ConnectionReset",
    "SocketClosed",
]


class TcpError(Exception):
    """Base class for simulated TCP errors."""


class ConnectTimeout(TcpError):
    """SYN retries exhausted without an answer (e.g. dropped by a firewall)."""


class ConnectRefused(TcpError):
    """The peer answered with RST (no listener on that port)."""


class ConnectionReset(TcpError):
    """The established connection was reset."""


class SocketClosed(TcpError):
    """Operation on a closed socket."""


class TcpConfig:
    """Tunables, modelled on a 2004-era OS default configuration.

    ``sndbuf``/``rcvbuf`` default to 64 KiB — the operating-system socket
    buffer limit whose effect on WAN throughput motivates parallel streams
    in the paper (§4.2).
    """

    __slots__ = (
        "mss",
        "sndbuf",
        "rcvbuf",
        "initial_cwnd",
        "rto_initial",
        "rto_min",
        "rto_max",
        "syn_rto",
        "syn_retries",
        "msl",
        "persist_interval",
        "nodelay",
        "delayed_ack",
    )

    def __init__(
        self,
        mss: int = 1460,
        sndbuf: int = 65536,
        rcvbuf: int = 65536,
        initial_cwnd: int = 2,
        rto_initial: float = 1.0,
        rto_min: float = 0.2,
        rto_max: float = 60.0,
        syn_rto: float = 0.5,
        syn_retries: int = 6,
        msl: float = 1.0,
        persist_interval: float = 0.5,
        nodelay: bool = True,
        delayed_ack: float = 0.0,
    ):
        self.mss = mss
        self.sndbuf = sndbuf
        self.rcvbuf = rcvbuf
        self.initial_cwnd = initial_cwnd
        self.rto_initial = rto_initial
        self.rto_min = rto_min
        self.rto_max = rto_max
        self.syn_rto = syn_rto
        self.syn_retries = syn_retries
        self.msl = msl
        self.persist_interval = persist_interval
        #: TCP_NODELAY: True disables Nagle (the library default — §4.1:
        #: user-space aggregation "allows disabling TCP_DELAY")
        self.nodelay = nodelay
        #: delayed-ACK timeout in seconds; 0 acknowledges immediately
        self.delayed_ack = delayed_ack

    def copy(self, **changes) -> "TcpConfig":
        kwargs = {name: getattr(self, name) for name in self.__slots__}
        kwargs.update(changes)
        return TcpConfig(**kwargs)


# The cancellable timer now lives in the engine; keep the private alias the
# TCP internals (and the rel_udp driver) were written against.
from .engine import Timer as _Timer  # noqa: E402


# Connection states -----------------------------------------------------------
CLOSED = "CLOSED"
SYN_SENT = "SYN_SENT"
SYN_RCVD = "SYN_RCVD"
ESTABLISHED = "ESTABLISHED"
FIN_WAIT_1 = "FIN_WAIT_1"
FIN_WAIT_2 = "FIN_WAIT_2"
CLOSING = "CLOSING"
CLOSE_WAIT = "CLOSE_WAIT"
LAST_ACK = "LAST_ACK"
TIME_WAIT = "TIME_WAIT"


class TcpStack:
    """Per-host TCP: demultiplexes segments to sockets and listeners."""

    EPHEMERAL_BASE = 49152

    def __init__(self, host, config: Optional[TcpConfig] = None):
        self.host = host
        self.sim: Simulator = host.sim
        self.config = config or TcpConfig()
        self._conns: dict[tuple[Addr, Addr], TcpSocket] = {}
        self._listeners: dict[int, ListenSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        # port -> bind count (a port may be shared by several connections
        # with distinct 4-tuples, like SO_REUSEADDR)
        self._bound_ports: dict[int, int] = {}
        self._isn_rng = random.Random(f"{host.name}:isn")

    # -- port management ------------------------------------------------------
    def allocate_port(self) -> int:
        for _ in range(16384):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= 65536:
                self._next_ephemeral = self.EPHEMERAL_BASE
            if port not in self._bound_ports:
                self._bound_ports[port] = 1
                return port
        raise TcpError("out of ephemeral ports")

    def bind_port(self, port: int, reuse: bool = False) -> int:
        if port == 0:
            return self.allocate_port()
        if port in self._bound_ports and not reuse:
            raise TcpError(f"port {port} already bound on {self.host.name}")
        self._bound_ports[port] = self._bound_ports.get(port, 0) + 1
        return port

    def release_port(self, port: int) -> None:
        count = self._bound_ports.get(port, 0)
        if count <= 1:
            self._bound_ports.pop(port, None)
        else:
            self._bound_ports[port] = count - 1

    # -- API --------------------------------------------------------------------
    def listen(self, port: int, backlog: int = 64) -> "ListenSocket":
        """Open a passive socket on ``port`` (0 picks an ephemeral port)."""
        port = self.bind_port(port)
        listener = ListenSocket(self, port, backlog)
        self._listeners[port] = listener
        return listener

    def connect(
        self,
        raddr: Addr,
        lport: int = 0,
        config: Optional[TcpConfig] = None,
        laddr_ip: Optional[str] = None,
        reuse: bool = False,
    ) -> "TcpSocket":
        """Start an active open to ``raddr``; wait on ``sock.connected``.

        Binding ``lport`` explicitly supports splicing, where the port pair
        is agreed via brokering beforehand.  The same call performs either a
        client/server handshake (if the peer listens) or a simultaneous open
        (if the peer connects to us at the same time) — exactly as in real
        TCP, the initiator cannot tell the difference.
        """
        lport = self.bind_port(lport, reuse=reuse)
        laddr = (laddr_ip or self.host.ip, lport)
        sock = TcpSocket(self, laddr, raddr, config or self.config)
        self._register(sock)
        sock._active_open()
        return sock

    # -- demux -----------------------------------------------------------------
    def _register(self, sock: "TcpSocket") -> None:
        key = (sock.laddr, sock.raddr)
        if key in self._conns:
            raise TcpError(f"duplicate connection {key}")
        self._conns[key] = sock

    def _unregister(self, sock: "TcpSocket") -> None:
        self._conns.pop((sock.laddr, sock.raddr), None)
        self.release_port(sock.laddr[1])

    def receive(self, segment: Segment) -> None:
        """Entry point for segments addressed to this host."""
        key = (segment.dst, segment.src)
        sock = self._conns.get(key)
        if sock is not None:
            sock._input(segment)
            return
        listener = self._listeners.get(segment.dst[1])
        if listener is not None:
            listener._input(segment)
            return
        # No socket: answer non-RST segments with RST (connection refused).
        if not segment.rst:
            self._send_rst(segment)

    def _send_rst(self, cause: Segment) -> None:
        rst = Segment(
            src=cause.dst,
            dst=cause.src,
            seq=cause.ack if cause.ack_flag else 0,
            ack=cause.seq + cause.seg_len,
            rst=True,
            ack_flag=True,
            window=0,
        )
        self.host.send_segment(rst)

    def _isn(self) -> int:
        # Small ISNs keep traces readable; uniqueness per connection is
        # all the simulation needs.
        return self._isn_rng.randrange(1000, 100_000)


class ListenSocket:
    """A passive (server) socket: queues established child connections."""

    def __init__(self, stack: TcpStack, port: int, backlog: int):
        self.stack = stack
        self.port = port
        self.backlog = backlog
        self._accept_queue: list[TcpSocket] = []
        self._waiters: list[Event] = []
        self._embryonic: dict[tuple[Addr, Addr], TcpSocket] = {}
        self.closed = False

    @property
    def addr(self) -> Addr:
        return (self.stack.host.ip, self.port)

    def accept(self) -> Event:
        """Event yielding the next established :class:`TcpSocket`."""
        ev = self.stack.sim.event()
        if self.closed:
            ev.fail(SocketClosed("listener closed"))
        elif self._accept_queue:
            ev.succeed(self._accept_queue.pop(0))
        else:
            self._waiters.append(ev)
        return ev

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.stack._listeners.pop(self.port, None)
        self.stack.release_port(self.port)
        for ev in self._waiters:
            ev.fail(SocketClosed("listener closed"))
        self._waiters.clear()
        # A closed listener resets what it never handed out: half-open
        # (embryonic) handshakes and established-but-unaccepted children.
        # Otherwise a dial racing the close completes its handshake into
        # a connection nobody owns — a leak on both ends.
        for sock in list(self._embryonic.values()):
            sock.abort()
        self._embryonic.clear()
        for sock in self._accept_queue:
            sock.abort()
        self._accept_queue.clear()

    # -- internal ---------------------------------------------------------------
    def _input(self, segment: Segment) -> None:
        if self.closed:
            return
        if segment.rst:
            return
        if segment.syn and not segment.ack_flag:
            if len(self._embryonic) + len(self._accept_queue) >= self.backlog:
                return  # silently drop: client will retransmit the SYN
            laddr = segment.dst
            sock = TcpSocket(self.stack, laddr, segment.src, self.stack.config)
            self.stack._register(sock)
            self._embryonic[(sock.laddr, sock.raddr)] = sock
            sock._passive_open(segment, self)
            return
        if segment.ack_flag:
            # RFC 793: an ACK on a port in LISTEN belongs to no connection
            # this host knows about — answer with RST.  This matters beyond
            # protocol hygiene: when a peer's NAT mapping expires and its
            # segments start arriving from a fresh external port, this reset
            # is the only signal that tells the peer its connection is dead.
            self.stack._send_rst(segment)
        # Anything else (bare non-SYN, non-ACK): ignore as a stray.

    def _child_established(self, sock: "TcpSocket") -> None:
        self._embryonic.pop((sock.laddr, sock.raddr), None)
        if self._waiters:
            self._waiters.pop(0).succeed(sock)
        else:
            self._accept_queue.append(sock)

    def _child_aborted(self, sock: "TcpSocket") -> None:
        self._embryonic.pop((sock.laddr, sock.raddr), None)


class TcpSocket:
    """One TCP connection endpoint."""

    def __init__(self, stack: TcpStack, laddr: Addr, raddr: Addr, config: TcpConfig):
        self.stack = stack
        self.sim = stack.sim
        self.cfg = config
        self.laddr = laddr
        self.raddr = raddr
        self.state = CLOSED

        # Send sequence space.
        self.iss = stack._isn()
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_max = self.iss  # highest sequence ever sent (go-back-N aware)
        self.snd_wnd = config.mss  # peer-advertised; learned from handshake
        self._sndbuf = bytearray()  # bytes from snd_una_data onward
        self._snd_fin = False  # app requested close (FIN after drain)
        self._fin_seq: Optional[int] = None

        # Receive sequence space.
        self.irs = 0
        self.rcv_nxt = 0
        self._rcvbuf = bytearray()  # in-order bytes awaiting the app
        self._ooo: dict[int, bytes] = {}  # out-of-order segments
        self._ooo_bytes = 0
        self._rcv_fin_seq: Optional[int] = None
        self._eof = False

        # Congestion control (Reno).
        self.cwnd = config.initial_cwnd * config.mss
        self.ssthresh = 1 << 30
        self._dupacks = 0
        # RFC 6582 "recover": highest sequence sent when loss recovery last
        # began.  Fast retransmit is only re-entered once snd_una passes it,
        # preventing spurious cascades of window halvings from dupacks that
        # duplicate go-back-N retransmissions produce.
        self._recover = 0
        self._in_recovery = False
        self._recovery_flight = 0  # flight size at recovery entry (caps inflation)
        self._partial_acks = 0  # partial ACKs seen in the current recovery
        #: maximum segments transmitted per send opportunity (BSD-style
        #: TCP_MAXBURST): prevents ack-clock-free megabursts after recovery.
        self.max_burst = 6

        # RTT estimation (RFC 6298).
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = config.rto_initial
        self._rtt_probe: Optional[tuple[int, float]] = None  # (end_seq, sent_at)

        # Timers.
        self._rexmit_timer = _Timer(self.sim, self._on_rto)
        self._persist_timer = _Timer(self.sim, self._on_persist)
        self._time_wait_timer = _Timer(self.sim, self._on_time_wait_done)
        self._syn_timer = _Timer(self.sim, self._on_syn_rto)
        self._delack_timer = _Timer(self.sim, self._on_delack)
        self._delack_pending = 0
        self._syn_tries = 0

        # App rendezvous.
        self.connected: Event = self.sim.event()
        self._recv_waiters: list[tuple[Event, int]] = []
        self._send_waiters: list[tuple[Event, bytes]] = []
        self._listener: Optional[ListenSocket] = None
        self._error: Optional[TcpError] = None

        # Counters (observable in tests/benches).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.timeouts = 0

    # ------------------------------------------------------------------ utils
    def _set_state(self, state: str) -> None:
        self.stack.host.net.trace(
            "tcp-state", host=self.stack.host, socket=self,
            old=self.state, new=state,
        )
        self.state = state

    def _send(self, **kwargs) -> None:
        seg = Segment(src=self.laddr, dst=self.raddr, window=self._rcv_window(), **kwargs)
        self.stack.host.send_segment(seg)

    def _rcv_window(self) -> int:
        free = self.cfg.rcvbuf - len(self._rcvbuf) - self._ooo_bytes
        return max(0, free)

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def send_space(self) -> int:
        return max(0, self.cfg.sndbuf - len(self._sndbuf))

    # ----------------------------------------------------------------- opening
    def _active_open(self) -> None:
        self._set_state(SYN_SENT)
        self._syn_tries = 0
        self._send_syn()

    def _send_syn(self, with_ack: bool = False) -> None:
        self._syn_tries += 1
        self.snd_nxt = self.iss + 1
        self.snd_max = max(self.snd_max, self.snd_nxt)
        if with_ack:
            self._send(seq=self.iss, syn=True, ack=self.rcv_nxt, ack_flag=True)
        else:
            self._send(seq=self.iss, syn=True)
        self._syn_timer.start(self.cfg.syn_rto * (2 ** (self._syn_tries - 1)))

    def _on_syn_rto(self) -> None:
        if self.state not in (SYN_SENT, SYN_RCVD):
            return
        if self._syn_tries >= self.cfg.syn_retries:
            self._abort(ConnectTimeout(f"connect to {self.raddr} timed out"))
            return
        self._send_syn(with_ack=(self.state == SYN_RCVD))

    def _passive_open(self, syn: Segment, listener: ListenSocket) -> None:
        self._listener = listener
        self.irs = syn.seq
        self.rcv_nxt = syn.seq + 1
        self.snd_wnd = syn.window
        self._set_state(SYN_RCVD)
        self._syn_tries = 0
        self._send_syn(with_ack=True)

    def _establish(self) -> None:
        self._syn_timer.cancel()
        self._set_state(ESTABLISHED)
        if self._listener is not None:
            self._listener._child_established(self)
            self._listener = None
        if not self.connected.triggered:
            self.connected.succeed(self)

    # ------------------------------------------------------------------- input
    def _input(self, seg: Segment) -> None:
        if seg.rst:
            self._on_rst(seg)
            return
        handler = {
            SYN_SENT: self._input_syn_sent,
            SYN_RCVD: self._input_syn_rcvd,
        }.get(self.state)
        if handler is not None:
            handler(seg)
            return
        if self.state == CLOSED:
            return
        self._input_established(seg)

    def _on_rst(self, seg: Segment) -> None:
        if self.state in (SYN_SENT, SYN_RCVD):
            self._abort(ConnectRefused(f"connection to {self.raddr} refused"))
        elif self.state not in (CLOSED, TIME_WAIT):
            self._abort(ConnectionReset(f"connection to {self.raddr} reset"))

    def _input_syn_sent(self, seg: Segment) -> None:
        if seg.syn and seg.ack_flag:
            if seg.ack != self.iss + 1:
                self._send(seq=seg.ack, rst=True)  # bad ACK: reset
                return
            self.irs = seg.seq
            self.rcv_nxt = seg.seq + 1
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self._establish()
            self._send(seq=self.snd_nxt, ack=self.rcv_nxt, ack_flag=True)
            self._output()
        elif seg.syn:
            # Simultaneous open (TCP splicing, Figure 1 right): both ends
            # sent SYN; answer with SYN+ACK and wait for the peer's SYN+ACK.
            self.irs = seg.seq
            self.rcv_nxt = seg.seq + 1
            self.snd_wnd = seg.window
            self._set_state(SYN_RCVD)
            self._syn_timer.cancel()
            self._syn_tries = 0
            self._send_syn(with_ack=True)

    def _input_syn_rcvd(self, seg: Segment) -> None:
        if seg.ack_flag and seg.ack == self.iss + 1:
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self._establish()
            if seg.syn:
                # Peer's SYN+ACK in a simultaneous open: ACK it.
                self._send(seq=self.snd_nxt, ack=self.rcv_nxt, ack_flag=True)
            if seg.payload or seg.fin:
                self._input_established(seg)
            else:
                self._output()
        elif seg.syn and not seg.ack_flag:
            # Duplicate SYN (our SYN+ACK was lost): re-answer.
            self._send_syn(with_ack=True)

    def _input_established(self, seg: Segment) -> None:
        if seg.syn:
            return  # stray duplicate handshake segment
        if seg.ack_flag:
            self._process_ack(seg)
        if seg.payload or seg.fin:
            self._process_data(seg)
        if self.state == FIN_WAIT_1 and self._fin_seq is not None and self.snd_una > self._fin_seq:
            # Our FIN is acknowledged.
            if self._rcv_fin_seq is not None and self.rcv_nxt > self._rcv_fin_seq:
                self._enter_time_wait()
            else:
                self._set_state(FIN_WAIT_2)
        elif self.state == CLOSING and self._fin_seq is not None and self.snd_una > self._fin_seq:
            self._enter_time_wait()
        elif self.state == LAST_ACK and self._fin_seq is not None and self.snd_una > self._fin_seq:
            self._teardown()

    # -------------------------------------------------------------------- ACKs
    def _process_ack(self, seg: Segment) -> None:
        ack = seg.ack
        if ack > self.snd_max:
            # Beyond anything we tracked: the receiver accepted a
            # zero-window probe byte.  Clamp so the window update still
            # takes effect; the byte is re-sent as ordinary data and
            # discarded as a duplicate at the receiver.
            ack = self.snd_max
        if ack > self.snd_nxt:
            # Valid cumulative ACK for pre-rollback data (go-back-N):
            # jump forward instead of re-sending what already arrived.
            self.snd_nxt = ack
        if ack > self.snd_una:
            self._ack_advances(ack, seg)
        elif (
            ack == self.snd_una
            and self.flight_size > 0
            and not seg.payload
            and not seg.fin
            and seg.window <= self.snd_wnd
        ):
            # A duplicate ACK.  Window *increases* are pure window updates
            # and don't count; a shrinking window accompanies out-of-order
            # data piling up at the receiver, which is exactly the loss
            # signal fast retransmit exists for.
            self._dupack()
        # Window update regardless.
        self.snd_wnd = seg.window
        self._output()

    def _ack_advances(self, ack: int, seg: Segment) -> None:
        newly_acked = ack - self.snd_una

        # RTT sample (Karn: only if the probe segment was never retransmitted).
        if self._rtt_probe is not None and ack >= self._rtt_probe[0]:
            self._rtt_sample(self.sim.now - self._rtt_probe[1])
            self._rtt_probe = None

        # Trim acknowledged payload bytes from the retransmission buffer.
        data_acked = newly_acked
        if self._fin_seq is not None and ack > self._fin_seq:
            data_acked -= 1  # the FIN consumed one sequence number
        if data_acked > 0:
            del self._sndbuf[:data_acked]
        self.snd_una = ack
        self.snd_wnd = seg.window

        in_recovery = self._in_recovery and self.snd_una <= self._recover
        if self._in_recovery and self.snd_una > self._recover:
            # Full recovery: deflate.
            self.cwnd = self.ssthresh
            self._in_recovery = False
            self._dupacks = 0
            self._partial_acks = 0
        elif in_recovery:
            # NewReno partial ACK: retransmit the next hole, keep recovering.
            self._partial_acks += 1
            self._retransmit_head()
            self.cwnd = max(self.cfg.mss, self.cwnd - newly_acked + self.cfg.mss)
        else:
            self._dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd += min(newly_acked, self.cfg.mss)  # slow start
            else:
                self.cwnd += max(1, self.cfg.mss * self.cfg.mss // self.cwnd)

        if self.flight_size > 0:
            # RFC 6582 "Impatient": during recovery only the *first* partial
            # ACK resets the retransmit timer, so a many-hole episode is cut
            # short by an RTO + go-back-N instead of crawling one hole per
            # RTT ("TCP's inert recovery from lost packets", paper §4.2).
            if not in_recovery or self._partial_acks <= 1:
                self._rexmit_timer.start(self.rto)
        else:
            self._rexmit_timer.cancel()

        self._wake_senders()

    def _dupack(self) -> None:
        self._dupacks += 1
        if self._in_recovery:
            # Fast recovery: each dupack signals a departed segment.  Cap
            # the inflation at the flight size when recovery started — with
            # go-back-N retransmissions the receiver emits dupacks for
            # duplicate data too, and uncapped inflation would re-burst.
            if self.cwnd < self.ssthresh + self._recovery_flight:
                self.cwnd += self.cfg.mss
            return
        if self._dupacks >= 3 and self.snd_una <= self._recover:
            # RFC 6582: still inside the sequence range of the previous
            # loss event — these dupacks echo our own retransmissions, not
            # a new loss.  Do not halve again.
            return
        if self._dupacks == 3:
            self.fast_retransmits += 1
            self.ssthresh = max(self.flight_size // 2, 2 * self.cfg.mss)
            self._recover = self.snd_nxt
            self._in_recovery = True
            self._recovery_flight = self.flight_size
            self._partial_acks = 0
            self._retransmit_head()
            self.cwnd = self.ssthresh + 3 * self.cfg.mss
            self._rexmit_timer.start(self.rto)

    def _rtt_sample(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(
            self.cfg.rto_max,
            max(self.cfg.rto_min, self.srtt + max(0.01, 4 * self.rttvar)),
        )

    # ------------------------------------------------------------ retransmits
    def _on_rto(self) -> None:
        if self.flight_size <= 0 or self.state in (CLOSED, TIME_WAIT):
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size // 2, 2 * self.cfg.mss)
        self.cwnd = self.cfg.mss
        self._dupacks = 0
        # RFC 6582: block fast retransmit until the whole outstanding
        # window at timeout time has been recovered.
        self._recover = self.snd_max
        self._in_recovery = False
        self._partial_acks = 0
        self._rtt_probe = None  # Karn: no sampling across retransmits
        self.rto = min(self.cfg.rto_max, self.rto * 2)
        # Go-back-N (classic BSD behaviour): everything past snd_una is
        # presumed lost; roll snd_nxt back so slow start re-drives the ACK
        # clock instead of waiting one backed-off RTO per hole.
        self.snd_nxt = self.snd_una
        if self._fin_seq is not None and self._fin_seq >= self.snd_una:
            self._fin_seq = None  # FIN will be re-emitted after the drain
        self._retransmit_head()
        self.snd_nxt = self.snd_una + min(self.cfg.mss, len(self._sndbuf))
        if not self._sndbuf and self._snd_fin:
            # Only a FIN was outstanding: _output re-emits it below.
            pass
        self._rexmit_timer.start(self.rto)
        self._output()

    def _retransmit_head(self) -> None:
        """Retransmit the segment starting at snd_una."""
        self.retransmits += 1
        # Karn's rule in full: once anything is retransmitted, a pending RTT
        # probe can be satisfied by the copy — discard it.  (Without this,
        # cumulative ACKs that crawl through a recovery episode produce
        # seconds-long "RTT" samples and blow up the RTO.)
        self._rtt_probe = None
        offset = 0
        length = min(self.cfg.mss, len(self._sndbuf) - offset)
        if length > 0:
            payload = bytes(self._sndbuf[offset : offset + length])
            self._send(
                seq=self.snd_una,
                ack=self.rcv_nxt,
                ack_flag=True,
                payload=payload,
            )
        elif self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._send(seq=self._fin_seq, fin=True, ack=self.rcv_nxt, ack_flag=True)

    def _on_persist(self) -> None:
        if self.snd_wnd > 0 or not self._sndbuf or self.state == CLOSED:
            return
        # Zero-window probe: one byte beyond the window, *without* counting
        # it as flight — probe loss must not trigger the congestion
        # machinery (real persist timers never back off into cwnd collapse).
        # If the receiver accepts the byte, its ACK is clamped to snd_max
        # and the byte simply gets re-sent as ordinary data.
        sent = self.snd_nxt - self.snd_una
        if sent < len(self._sndbuf):
            payload = bytes(self._sndbuf[sent : sent + 1])
            self._send(seq=self.snd_nxt, ack=self.rcv_nxt, ack_flag=True, payload=payload)
        self._persist_timer.start(self.cfg.persist_interval)

    # ------------------------------------------------------------------ output
    def _output(self, limit_burst: bool = True) -> None:
        """Transmit as much buffered data as windows allow.

        ``limit_burst`` caps segments per call (TCP_MAXBURST) on the ACK
        path; application-triggered sends are only window-gated, like real
        stacks.
        """
        if self.state not in (ESTABLISHED, CLOSE_WAIT, FIN_WAIT_1, CLOSING, LAST_ACK):
            return
        window = min(self.cwnd, max(self.snd_wnd, 0))
        burst = 0
        max_burst = self.max_burst if limit_burst else 1 << 30
        while burst < max_burst:
            in_flight = self.snd_nxt - self.snd_una
            unsent = len(self._sndbuf) - in_flight
            if unsent <= 0:
                break
            room = window - in_flight
            if room <= 0:
                break
            length = min(self.cfg.mss, unsent, room)
            if length <= 0:
                break
            if (
                not self.cfg.nodelay
                and length < self.cfg.mss
                and unsent < self.cfg.mss
                and self.snd_nxt > self.snd_una
            ):
                # Nagle: hold a runt while data is outstanding, until either
                # a full segment accumulates or everything is ACKed.
                break
            burst += 1
            start = in_flight
            payload = bytes(self._sndbuf[start : start + length])
            seq = self.snd_nxt
            fresh = seq >= self.snd_max  # first transmission of these bytes
            self.snd_nxt += length
            self.snd_max = max(self.snd_max, self.snd_nxt)
            self.bytes_sent += length
            if self._rtt_probe is None and fresh:
                # Karn's rule: never sample bytes that may be re-sent copies
                # (after a go-back-N rollback earlier bytes are retransmits).
                self._rtt_probe = (self.snd_nxt, self.sim.now)
            self._send(seq=seq, ack=self.rcv_nxt, ack_flag=True, payload=payload)
            if not self._rexmit_timer.running:
                self._rexmit_timer.start(self.rto)

        # Pending FIN once the buffer drained.
        if (
            self._snd_fin
            and self._fin_seq is None
            and self.snd_nxt - self.snd_una == len(self._sndbuf)
            and not self._sndbuf
        ):
            self._fin_seq = self.snd_nxt
            self.snd_nxt += 1
            self.snd_max = max(self.snd_max, self.snd_nxt)
            self._send(seq=self._fin_seq, fin=True, ack=self.rcv_nxt, ack_flag=True)
            if not self._rexmit_timer.running:
                self._rexmit_timer.start(self.rto)

        # Zero-window persist.
        if self.snd_wnd == 0 and self._sndbuf and not self._persist_timer.running:
            self._persist_timer.start(self.cfg.persist_interval)

    # -------------------------------------------------------------------- data
    def _process_data(self, seg: Segment) -> None:
        seq = seg.seq
        payload = seg.payload
        advanced = False

        if payload:
            end = seq + len(payload)
            if end <= self.rcv_nxt:
                pass  # complete duplicate
            elif seq <= self.rcv_nxt:
                # Overlapping or exactly next: take the new part.
                take = payload[self.rcv_nxt - seq :]
                free = self.cfg.rcvbuf - len(self._rcvbuf) - self._ooo_bytes
                take = take[:free]
                if take:
                    self._rcvbuf.extend(take)
                    self.rcv_nxt += len(take)
                    self.bytes_received += len(take)
                    advanced = True
                    self._drain_ooo()
            else:
                # Out of order: stash if it fits.
                free = self.cfg.rcvbuf - len(self._rcvbuf) - self._ooo_bytes
                if len(payload) <= free and seq not in self._ooo:
                    self._ooo[seq] = payload
                    self._ooo_bytes += len(payload)

        if seg.fin:
            fin_seq = seq + len(payload)
            self._rcv_fin_seq = fin_seq
        if self._rcv_fin_seq is not None and self.rcv_nxt == self._rcv_fin_seq:
            self.rcv_nxt += 1
            self._on_fin_received()
            advanced = True

        # Acknowledge.  Default: every data segment triggers an immediate
        # ACK (tight ACK clock).  With delayed ACKs configured, the ACK is
        # held until a second segment arrives or the timer fires (RFC 1122).
        if self.cfg.delayed_ack > 0:
            self._delack_pending += 1
            if self._delack_pending >= 2 or seg.fin:
                self._send_ack_now()
            elif not self._delack_timer.running:
                self._delack_timer.start(self.cfg.delayed_ack)
        else:
            self._send(seq=self.snd_nxt, ack=self.rcv_nxt, ack_flag=True)
        if advanced:
            self._wake_receivers()

    def _send_ack_now(self) -> None:
        self._delack_pending = 0
        self._delack_timer.cancel()
        self._send(seq=self.snd_nxt, ack=self.rcv_nxt, ack_flag=True)

    def _on_delack(self) -> None:
        if self._delack_pending and self.state not in (CLOSED, TIME_WAIT):
            self._send_ack_now()

    def _drain_ooo(self) -> None:
        while self._ooo:
            nxt = None
            for s in self._ooo:
                if s <= self.rcv_nxt < s + len(self._ooo[s]):
                    nxt = s
                    break
                if s == self.rcv_nxt:
                    nxt = s
                    break
            if nxt is None:
                # Drop any now-stale segments fully below rcv_nxt.
                stale = [s for s in self._ooo if s + len(self._ooo[s]) <= self.rcv_nxt]
                for s in stale:
                    self._ooo_bytes -= len(self._ooo[s])
                    del self._ooo[s]
                if not stale:
                    return
                continue
            chunk = self._ooo.pop(nxt)
            self._ooo_bytes -= len(chunk)
            take = chunk[self.rcv_nxt - nxt :]
            self._rcvbuf.extend(take)
            self.rcv_nxt += len(take)
            self.bytes_received += len(take)

    def _on_fin_received(self) -> None:
        self._eof = True
        if self.state == ESTABLISHED:
            self._set_state(CLOSE_WAIT)
        elif self.state == FIN_WAIT_1:
            if self._fin_seq is not None and self.snd_una > self._fin_seq:
                self._enter_time_wait()
            else:
                self._set_state(CLOSING)
        elif self.state == FIN_WAIT_2:
            self._enter_time_wait()
        self._wake_receivers()

    # ----------------------------------------------------------------- app API
    def send(self, data: bytes) -> Event:
        """Queue ``data`` for transmission.

        The event triggers once *all* of ``data`` has entered the send
        buffer (it may still be in flight).  This models a blocking
        ``send()`` loop: backpressure propagates to the application when
        the send buffer is full.
        """
        ev = self.sim.event()
        if self._error is not None:
            ev.fail(self._error)
            return ev
        if self.state not in (ESTABLISHED, CLOSE_WAIT, SYN_SENT, SYN_RCVD):
            ev.fail(SocketClosed(f"send on {self.state} socket"))
            return ev
        if self._snd_fin:
            ev.fail(SocketClosed("send after close"))
            return ev
        self._send_waiters.append((ev, bytes(data)))
        self._pump_senders()
        return ev

    def _pump_senders(self) -> None:
        while self._send_waiters:
            ev, data = self._send_waiters[0]
            space = self.send_space
            if space <= 0:
                break
            take = data[:space]
            self._sndbuf.extend(take)
            rest = data[len(take):]
            if rest:
                self._send_waiters[0] = (ev, rest)
                break
            self._send_waiters.pop(0)
            ev.succeed(len(data))
        if self.state in (ESTABLISHED, CLOSE_WAIT):
            self._output(limit_burst=False)

    def _wake_senders(self) -> None:
        self._pump_senders()

    def recv(self, maxbytes: int) -> Event:
        """Event yielding up to ``maxbytes`` of data (b"" at EOF)."""
        ev = self.sim.event()
        if maxbytes <= 0:
            ev.succeed(b"")
            return ev
        if self._error is not None and not self._rcvbuf:
            ev.fail(self._error)
            return ev
        if self._rcvbuf:
            self._fulfill_recv(ev, maxbytes)
        elif self._eof:
            ev.succeed(b"")
        elif self.state in (CLOSED, TIME_WAIT, LAST_ACK):
            ev.succeed(b"")
        else:
            self._recv_waiters.append((ev, maxbytes))
        return ev

    def _fulfill_recv(self, ev: Event, maxbytes: int) -> None:
        window_before = self._rcv_window()
        take = bytes(self._rcvbuf[:maxbytes])
        del self._rcvbuf[: len(take)]
        ev.succeed(take)
        # Window update: only when the window had shrunk enough that the
        # peer may be stalled on it (real stacks update at an MSS or half
        # the buffer of new space) — avoids doubling ACK traffic.
        if (
            take
            and window_before < max(2 * self.cfg.mss, self.cfg.rcvbuf // 2)
            and self.state in (ESTABLISHED, FIN_WAIT_1, FIN_WAIT_2)
        ):
            self._send(seq=self.snd_nxt, ack=self.rcv_nxt, ack_flag=True)

    def _wake_receivers(self) -> None:
        while self._recv_waiters and (self._rcvbuf or self._eof):
            ev, maxbytes = self._recv_waiters.pop(0)
            if self._rcvbuf:
                self._fulfill_recv(ev, maxbytes)
            else:
                ev.succeed(b"")

    def close(self) -> None:
        """Graceful close: FIN after the send buffer drains."""
        if self.state in (CLOSED, TIME_WAIT, FIN_WAIT_1, FIN_WAIT_2, CLOSING, LAST_ACK):
            return
        if self.state in (SYN_SENT, SYN_RCVD):
            self._abort(SocketClosed("closed during handshake"), quiet=True)
            return
        self._snd_fin = True
        if self.state == ESTABLISHED:
            self._set_state(FIN_WAIT_1)
        elif self.state == CLOSE_WAIT:
            self._set_state(LAST_ACK)
        self._output()

    def abort(self) -> None:
        """Hard close: send RST, drop all state."""
        if self.state not in (CLOSED, TIME_WAIT):
            self._send(seq=self.snd_nxt, rst=True, ack=self.rcv_nxt, ack_flag=True)
        self._abort(ConnectionReset("aborted locally"), quiet=True)

    # -------------------------------------------------------------- teardown
    def _enter_time_wait(self) -> None:
        self._set_state(TIME_WAIT)
        self._rexmit_timer.cancel()
        self._persist_timer.cancel()
        self._time_wait_timer.start(2 * self.cfg.msl)
        self._wake_receivers()

    def _on_time_wait_done(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        self._set_state(CLOSED)
        self._rexmit_timer.cancel()
        self._persist_timer.cancel()
        self._syn_timer.cancel()
        self.stack._unregister(self)
        self._eof = True
        self._wake_receivers()

    def _abort(self, error: TcpError, quiet: bool = False) -> None:
        self._error = error
        self._set_state(CLOSED)
        self._rexmit_timer.cancel()
        self._persist_timer.cancel()
        self._syn_timer.cancel()
        self.stack._unregister(self)
        if self._listener is not None:
            self._listener._child_aborted(self)
            self._listener = None
        if not self.connected.triggered:
            self.connected.fail(error)
            # Passive-open children have no waiter on `connected`; keep an
            # orphaned failure from crashing the event loop.
            self.connected.defused = True
        for ev, _ in self._send_waiters:
            ev.fail(error)
        self._send_waiters.clear()
        self._eof = True
        for ev, maxbytes in self._recv_waiters:
            if self._rcvbuf:
                take = bytes(self._rcvbuf[:maxbytes])
                del self._rcvbuf[: len(take)]
                ev.succeed(take)
            elif quiet:
                ev.succeed(b"")
            else:
                ev.fail(error)
        self._recv_waiters.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TcpSocket {self.laddr[0]}:{self.laddr[1]} -> "
            f"{self.raddr[0]}:{self.raddr[1]} {self.state}>"
        )
