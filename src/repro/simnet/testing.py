"""Reusable scenario helpers for tests, examples and benchmarks.

These wrap the most common experimental setups: a pair of public hosts, a
pair of firewalled sites, bulk transfers with throughput measurement, and a
STUN-style address reflector for NAT experiments.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from .engine import Simulator
from .packet import Addr
from .sockets import SimSocket, connect, listen
from ..obs.meters import mb_per_s
from .tcp import TcpConfig
from .topology import Host, Internet

__all__ = [
    "two_public_hosts",
    "wan_pair",
    "run_transfer",
    "sink_server",
    "echo_server",
    "reflector_server",
    "stun_probe",
    "drive",
]


def two_public_hosts(seed: int = 0, **host_kwargs) -> tuple[Internet, Host, Host]:
    """An Internet with two public hosts ``a`` and ``b``."""
    inet = Internet(seed=seed)
    a = inet.add_public_host("a", **host_kwargs)
    b = inet.add_public_host("b", **host_kwargs)
    return inet, a, b


def wan_pair(
    capacity: float,
    one_way_delay: float,
    loss: float = 0.0,
    seed: int = 0,
    queue_bytes: Optional[int] = None,
    jitter: float = 0.0,
) -> tuple[Internet, Host, Host]:
    """Two sites joined by a WAN of the given end-to-end characteristics.

    Each access link carries half the propagation delay and the full
    capacity, so the end-to-end path has ``2 * one_way_delay`` RTT
    contribution per direction and bottleneck ``capacity`` (bytes/s).
    Loss is applied on one access link per direction (``loss`` end-to-end).

    Router queues default to one end-to-end bandwidth-delay product (the
    classic buffer-provisioning rule), floored at 64 KiB.
    """
    if queue_bytes is None:
        queue_bytes = max(65536, int(capacity * 2 * one_way_delay))
    inet = Internet(seed=seed)
    site_a = inet.add_site(
        "left",
        access_delay=one_way_delay / 2,
        access_bandwidth=capacity,
        access_loss=loss,
        queue_bytes=queue_bytes,
        access_jitter=jitter,
    )
    site_b = inet.add_site(
        "right",
        access_delay=one_way_delay / 2,
        access_bandwidth=capacity,
        queue_bytes=queue_bytes,
    )
    return inet, site_a.add_node("left-node"), site_b.add_node("right-node")


def sink_server(host: Host, port: int, result: dict, key: str = "received") -> Generator:
    """Accept one connection and count bytes until EOF."""
    listener = listen(host, port)
    sock = yield from listener.accept()
    total = 0
    while True:
        data = yield from sock.recv(65536)
        if not data:
            break
        total += len(data)
    result[key] = total
    result[key + "_t"] = host.sim.now
    sock.close()
    listener.close()


def echo_server(host: Host, port: int, once: bool = True) -> Generator:
    """Echo bytes back until EOF (single connection by default)."""
    listener = listen(host, port)
    while True:
        sock = yield from listener.accept()
        while True:
            data = yield from sock.recv(65536)
            if not data:
                break
            yield from sock.send_all(data)
        sock.close()
        if once:
            listener.close()
            return


def run_transfer(
    inet: Internet,
    sender: Host,
    receiver: Host,
    nbytes: int,
    port: int = 5001,
    config: Optional[TcpConfig] = None,
    chunk: int = 65536,
    until: float = 3600.0,
) -> dict:
    """Bulk one-way transfer; returns dict with throughput in MB/s."""
    sim = inet.sim
    result: dict = {}
    payload = bytes(range(256)) * (chunk // 256 + 1)

    def client() -> Generator:
        sock = yield from connect(sender, (receiver.ip, port), config=config)
        result["t0"] = sim.now
        remaining = nbytes
        while remaining > 0:
            n = min(chunk, remaining)
            yield from sock.send_all(payload[:n])
            remaining -= n
        sock.close()

    def server() -> Generator:
        listener = listen(receiver, port, backlog=4)
        if config is not None:
            receiver.tcp.config = config
        sock = yield from listener.accept()
        total = 0
        while True:
            data = yield from sock.recv(chunk)
            if not data:
                break
            total += len(data)
        result["received"] = total
        result["t1"] = sim.now
        sock.close()
        listener.close()

    sim.process(server(), name="xfer-server")
    sim.process(client(), name="xfer-client")
    sim.run(until=sim.now + until)
    if "received" not in result:
        raise RuntimeError("transfer did not complete within the time limit")
    result["seconds"] = result["t1"] - result["t0"]
    result["throughput"] = mb_per_s(result["received"], result["seconds"])
    return result


def reflector_server(host: Host, port: int = 3478) -> Generator:
    """STUN-like service: tells each client its observed (ip, port)."""
    listener = listen(host, port, backlog=16)
    while True:
        sock = yield from listener.accept()
        host.sim.process(_reflect_one(sock), name="reflect")


def _reflect_one(sock: SimSocket) -> Generator:
    ip, port = sock.raddr
    yield from sock.send_all(f"{ip}:{port}".ljust(32).encode())
    # Keep the connection open: it holds the NAT mapping alive until the
    # client is done splicing.
    data = yield from sock.recv(1)
    sock.close()


def stun_probe(host: Host, reflector: Addr, lport: int) -> Generator:
    """Learn this host's externally observed address for ``lport``.

    Returns ``(observed_addr, probe_socket)``; keep the probe socket open
    while the mapping must stay alive, then close it.
    """
    probe = yield from connect(host, reflector, lport=lport, reuse=True)
    raw = yield from probe.recv_exactly(32)
    ip, port = raw.decode().strip().split(":")
    return (ip, int(port)), probe


def drive(sim: Simulator, gen: Generator, until: float = 600.0):
    """Run a single process to completion and return its value."""
    proc = sim.process(gen)
    return sim.run_until_triggered(proc, limit=until)
