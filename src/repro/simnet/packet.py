"""Packet model for the simulated network.

We model a single transport protocol (TCP) over an IPv4-like network layer.
Segments carry *real* payload bytes: the simulator is not just a timing
model — compression, encryption and serialization all round-trip through it,
so end-to-end data integrity is checkable in tests.

Sizes are modelled explicitly so link serialization delay and queue
occupancy are realistic: each segment is charged ``IP_HEADER + TCP_HEADER``
bytes of overhead on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

__all__ = [
    "Addr",
    "Segment",
    "IP_HEADER",
    "TCP_HEADER",
    "SEGMENT_OVERHEAD",
    "FLAG_NAMES",
    "ip_to_int",
    "int_to_ip",
    "in_prefix",
    "is_private",
]

#: An endpoint address: (ip, port).
Addr = Tuple[str, int]

IP_HEADER = 20
TCP_HEADER = 20
UDP_HEADER = 8
SEGMENT_OVERHEAD = IP_HEADER + TCP_HEADER

_packet_ids = itertools.count(1)

FLAG_NAMES = ("SYN", "ACK", "FIN", "RST")


def ip_to_int(ip: str) -> int:
    """Parse dotted-quad ``ip`` into a 32-bit integer."""
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad address."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"address out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def in_prefix(ip: str, prefix: str, prefixlen: int) -> bool:
    """True if ``ip`` falls inside ``prefix/prefixlen``."""
    if not 0 <= prefixlen <= 32:
        raise ValueError(f"bad prefix length: {prefixlen}")
    if prefixlen == 0:
        return True
    mask = ~((1 << (32 - prefixlen)) - 1) & 0xFFFFFFFF
    return (ip_to_int(ip) & mask) == (ip_to_int(prefix) & mask)


_PRIVATE_PREFIXES = (("10.0.0.0", 8), ("172.16.0.0", 12), ("192.168.0.0", 16))


def is_private(ip: str) -> bool:
    """True for RFC 1918 private addresses."""
    return any(in_prefix(ip, p, l) for p, l in _PRIVATE_PREFIXES)


@dataclass
class Segment:
    """A TCP segment inside an IP datagram.

    ``seq``/``ack`` are byte sequence numbers (absolute, starting from the
    randomly chosen ISN like real TCP — the simulator uses small ISNs for
    readable traces).  ``window`` is the advertised receive window in bytes.
    """

    src: Addr
    dst: Addr
    seq: int = 0
    ack: int = 0
    syn: bool = False
    fin: bool = False
    rst: bool = False
    ack_flag: bool = False
    window: int = 65535
    payload: bytes = b""
    ttl: int = 64
    #: transport protocol: "tcp" or "udp" (UDP ignores the TCP fields)
    proto: str = "tcp"
    pkt_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def size(self) -> int:
        """Total on-wire size in bytes."""
        transport = TCP_HEADER if self.proto == "tcp" else UDP_HEADER
        return IP_HEADER + transport + len(self.payload)

    @property
    def seg_len(self) -> int:
        """Sequence-number space consumed (SYN and FIN count as one)."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def flow(self) -> Tuple[Addr, Addr]:
        """The (src, dst) 4-tuple identifying this packet's flow."""
        return (self.src, self.dst)

    def flags_str(self) -> str:
        """Human-readable flag string, e.g. ``"SYN|ACK"``."""
        flags = []
        if self.syn:
            flags.append("SYN")
        if self.fin:
            flags.append("FIN")
        if self.rst:
            flags.append("RST")
        if self.ack_flag:
            flags.append("ACK")
        return "|".join(flags) if flags else "."

    def copy(self, **changes) -> "Segment":
        """A shallow copy with ``changes`` applied and a fresh packet id."""
        new = replace(self, **changes)
        new.pkt_id = next(_packet_ids)
        return new

    def describe(self) -> str:
        """One-line rendering used by the packet tracer."""
        src = f"{self.src[0]}:{self.src[1]}"
        dst = f"{self.dst[0]}:{self.dst[1]}"
        parts = [f"{src} > {dst}", self.flags_str()]
        parts.append(f"seq={self.seq}")
        if self.ack_flag:
            parts.append(f"ack={self.ack}")
        if self.payload:
            parts.append(f"len={len(self.payload)}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Segment #{self.pkt_id} {self.describe()}>"
