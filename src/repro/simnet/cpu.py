"""Host CPU cost model.

The paper's compression results (§4.3, §6) hinge on the CPU being a finite
resource: zlib level 1 helps on a 1.6 MB/s WAN but *degrades* throughput on
a 9 MB/s WAN because the processor cannot compress fast enough ("beyond
this threshold, compression degrades the performance, with the CPUs used in
this particular case").

:class:`CpuModel` charges simulated time for named kinds of work at
configured byte rates, serializing work items per core like a real CPU.
Filtering drivers (compression, encryption) call ``host.cpu.work(...)``
when a model is attached; without one, work is free — benchmarks attach a
2004-calibrated model, protocol unit tests usually don't.

Default rates approximate the paper's hardware (early-2000s ~1 GHz class
machines running Java): zlib-1 compression ≈ 5.5 MB/s of input,
decompression several times faster, stream encryption in between.
"""

from __future__ import annotations

from typing import Optional

from .engine import Event, Simulator

__all__ = ["CpuModel", "DEFAULT_RATES"]

#: bytes/second of input processed, calibrated to 2004-era hardware
DEFAULT_RATES = {
    "compress": 5_500_000.0,
    "decompress": 30_000_000.0,
    "encrypt": 20_000_000.0,
    "decrypt": 20_000_000.0,
    "serialize": 200_000_000.0,
    "sign": None,  # fixed-cost operations use per-op seconds instead
}

#: fixed per-operation costs in seconds (public-key crypto)
DEFAULT_OP_COSTS = {
    "dh": 0.010,
    "sign": 0.005,
    "verify": 0.006,
}


class CpuModel:
    """Serializes named work items onto simulated CPU cores.

    ``work(kind, nbytes)`` returns an event that triggers when the work
    completes.  With ``cores=1`` all work on the host is serialized; use
    more cores to model SMP nodes.
    """

    def __init__(
        self,
        sim: Simulator,
        rates: Optional[dict] = None,
        op_costs: Optional[dict] = None,
        cores: int = 1,
    ):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.sim = sim
        self.rates = dict(DEFAULT_RATES)
        if rates:
            self.rates.update(rates)
        self.op_costs = dict(DEFAULT_OP_COSTS)
        if op_costs:
            self.op_costs.update(op_costs)
        # Earliest time each core becomes free.
        self._core_free = [0.0] * cores
        self.busy_seconds = 0.0

    def attach(self, host) -> "CpuModel":
        """Attach this model to a host (fluent)."""
        host.cpu = self
        return self

    def _charge(self, duration: float) -> Event:
        ev = self.sim.event()
        if duration <= 0:
            ev.succeed()
            return ev
        # Pick the soonest-free core.
        idx = min(range(len(self._core_free)), key=lambda i: self._core_free[i])
        start = max(self.sim.now, self._core_free[idx])
        end = start + duration
        self._core_free[idx] = end
        self.busy_seconds += duration
        self.sim.call_at(end, ev.succeed)
        return ev

    def work(self, kind: str, nbytes: int) -> Event:
        """Charge byte-rate work; event fires when the CPU finishes it."""
        rate = self.rates.get(kind)
        if rate is None or rate <= 0:
            ev = self.sim.event()
            ev.succeed()
            return ev
        return self._charge(nbytes / rate)

    def op(self, kind: str) -> Event:
        """Charge a fixed-cost operation (e.g. a DH exponentiation)."""
        return self._charge(self.op_costs.get(kind, 0.0))


def charge(host, kind: str, nbytes: int) -> Event:
    """Charge work on ``host`` if it has a CPU model, else free."""
    if getattr(host, "cpu", None) is not None:
        return host.cpu.work(kind, nbytes)
    ev = host.sim.event()
    ev.succeed()
    return ev
