"""Stateful connection-tracking firewall (paper §3.2, Figure 2).

The firewall sits on a site gateway's WAN interface and implements the
policy the paper describes as typical: *allow all outgoing packets, drop all
incoming packets except those belonging to an already established
connection*.

Connection tracking: the first outbound segment of a flow creates a
conntrack entry for its 4-tuple.  Inbound segments are accepted only when
the mirrored 4-tuple has an entry (or matches an explicitly opened port).
This is exactly the behaviour that makes TCP splicing work (Figure 2,
right): both endpoints emit a SYN, each firewall records an *outgoing*
flow, and the peer's crossing SYN then matches the entry.

``strict_outbound`` models the "severe firewall" of §3.3 that forbids even
outgoing connections except through a well-controlled proxy: outbound flows
are dropped unless destined for an allowlisted proxy address.
"""

from __future__ import annotations

import itertools
from typing import Optional

from .packet import Addr, Segment
from .topology import PacketFilter

__all__ = ["StatefulFirewall", "FirewallStats"]


class FirewallStats:
    __slots__ = ("out_allowed", "out_dropped", "in_allowed", "in_dropped")

    def __init__(self):
        self.out_allowed = 0
        self.out_dropped = 0
        self.in_allowed = 0
        self.in_dropped = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class StatefulFirewall(PacketFilter):
    """Stateful packet filter for a site's WAN interface.

    Parameters
    ----------
    open_ports:
        Destination ports on which unsolicited inbound connections are
        allowed ("selectively open some TCP ports", §1 — the approach the
        paper wants to avoid needing).
    strict_outbound:
        If set, outbound flows are only allowed to addresses in
        ``allowed_destinations`` (the "severe firewall" case of §3.3).
    conntrack_timeout:
        Entries idle longer than this are purged lazily.
    """

    def __init__(
        self,
        open_ports: Optional[set[int]] = None,
        strict_outbound: bool = False,
        allowed_destinations: Optional[set[str]] = None,
        conntrack_timeout: float = 600.0,
        sim=None,
    ):
        self.open_ports = set(open_ports or ())
        self.strict_outbound = strict_outbound
        self.allowed_destinations = set(allowed_destinations or ())
        self.conntrack_timeout = conntrack_timeout
        self.sim = sim
        # flow 4-tuple (inside_addr, outside_addr) -> last activity time
        self._conntrack: dict[tuple[Addr, Addr], float] = {}
        #: gateway's own addresses: traffic to these bypasses the filter
        #: (the gateway is "connected both inside and outside", §3.3).
        self.exempt_ips: set[str] = set()
        self.stats = FirewallStats()

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _expire(self) -> None:
        if self.conntrack_timeout <= 0 or self.sim is None:
            return
        cutoff = self._now() - self.conntrack_timeout
        stale = [k for k, t in self._conntrack.items() if t < cutoff]
        for k in stale:
            del self._conntrack[k]

    # -- outbound ------------------------------------------------------------
    def egress(self, segment: Segment) -> Optional[Segment]:
        if segment.src[0] in self.exempt_ips:
            return segment
        key = (segment.src, segment.dst)
        if key not in self._conntrack:
            if self.strict_outbound and segment.dst[0] not in self.allowed_destinations:
                self.stats.out_dropped += 1
                return None
        self._conntrack[key] = self._now()
        self.stats.out_allowed += 1
        return segment

    # -- inbound -------------------------------------------------------------
    def ingress(self, segment: Segment) -> Optional[Segment]:
        if segment.dst[0] in self.exempt_ips:
            self.stats.in_allowed += 1
            return segment
        self._expire()
        key = (segment.dst, segment.src)  # mirrored flow
        if key in self._conntrack:
            self._conntrack[key] = self._now()
            self.stats.in_allowed += 1
            return segment
        if segment.dst[1] in self.open_ports:
            self.stats.in_allowed += 1
            return segment
        self.stats.in_dropped += 1
        return None

    def flush(self) -> int:
        """Drop all conntrack state (e.g. to simulate a firewall reboot).

        Returns the number of flows forgotten.  Established TCP flows
        recover on their next *outbound* segment (retransmission or ACK),
        which re-creates the entry — matching real conntrack-flush
        behaviour for outbound-initiated connections.
        """
        flows = len(self._conntrack)
        self._conntrack.clear()
        return flows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StatefulFirewall open={sorted(self.open_ports)} "
            f"strict={self.strict_outbound} flows={len(self._conntrack)}>"
        )
