"""Flow-level (fluid) fidelity tier: bulk transfers as AIMD rate processes.

The packet tier simulates every segment; that is the right tool for
studying *how* TCP behaves on one WAN path (Figures 9/10), and the wrong
tool for a fleet.  This module trades per-packet detail for scale: a
bulk transfer is a :class:`FluidFlow` with a steady-state AIMD rate, a
link is a pair of directional capacity constraints, and the only events
are flow arrivals, flow completions, and link state changes — each one
triggers a max-min fair rate re-solve.  100k concurrent transfers cost
a handful of solver passes, not billions of segment events.

Model
-----
A flow's stand-alone ceiling comes from classic Reno steady-state
analysis (:func:`aimd_rate`): the receive-window bound ``rwnd / RTT``
and the loss-driven sawtooth (Mathis bound when losses dominate, a
climb-then-dwell cycle average when the window cap does), times the
number of parallel streams.  Shared links then cap the flows crossing
them: rates are the max-min fair allocation subject to each flow's
ceiling (progressive water-filling).  Slow start is modelled as an
activation delay (:func:`slow_start_penalty`) rather than per-round
cwnd growth.

Calibration: the constants below (``WINDOW_EFFICIENCY``, ``ACK_EVERY``,
``PIPE_UTILIZATION``, ``SLOWSTART_CREDIT``) are fitted once against the
packet tier on the fig9/fig10 WAN profiles (see
``repro.simnet.crossval``), the same way the Lossy-BSP model fits
hardware parameters.  They are model parameters, not tuning knobs to
bend per-scenario.

Topology is a tree (hosts hang off a parent, the first host is the
root), which keeps path lookup O(depth) with zero routing state per
host — the regime this tier targets (fan-in storms, registration
stampedes, mass resume) is hub-and-spoke anyway.  Faults use the same
surface as the packet tier: ``link.set_down(True)`` zeroes both
directions and triggers a re-solve, and subscribers on
:attr:`FlowNetwork.on_link_change` can model session loss/resume.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

from .backend import SimBackend
from .engine import Event, Simulator, Timer

__all__ = [
    "FlowNetwork",
    "FlowBackend",
    "FlowHost",
    "FlowLink",
    "FlowPipe",
    "FluidFlow",
    "aimd_rate",
    "slow_start_penalty",
    "spec_flow_params",
]

#: TCP payload bytes per segment (matches ``repro.simnet.tcp``)
MSS = 1460.0
#: IP + TCP header bytes per segment
HEADER_BYTES = 40.0
#: fraction of raw link capacity available to payload
WIRE_EFFICIENCY = MSS / (MSS + HEADER_BYTES)
#: achieved fraction of the ideal ``rwnd / RTT`` window bound
WINDOW_EFFICIENCY = 0.94
#: effective delayed-ACK factor *b*: cwnd grows 1/b segment per RTT in
#: congestion avoidance (between 1 = every segment ACKed and 2 = every
#: other; the packet tier's ACK clocking lands in between)
ACK_EVERY = 1.75
#: utilization a saturated drop-tail bottleneck actually sustains (the
#: synchronized-sawtooth deficit; applies on top of header overhead)
PIPE_UTILIZATION = 0.945
#: slow-start "free" doublings before the ramp deficit starts counting
SLOWSTART_CREDIT = 3.0
#: handshake cost charged before a flow's first payload byte, in RTTs
SETUP_RTTS = 1.5
#: max seconds the re-solve timer sleeps before re-checking; bounds how
#: long a stale timer entry can sit on the heap (must stay below the
#: chaos drain window so leak probes see a clean heap)
TIMER_HORIZON = 60.0
#: completion slop for float accumulation of ``rate * dt``
_EPS_BYTES = 1e-3


def aimd_rate(
    rtt: float,
    loss: float,
    *,
    mss: float = MSS,
    rwnd: float = 65536.0,
    streams: int = 1,
) -> float:
    """Stand-alone steady-state goodput (B/s) of ``streams`` Reno flows.

    Per stream, the model follows the Reno sawtooth through its two
    regimes (``W`` is the receive-window cap in segments, ``N = 1/p``
    the mean segments between loss events, climbs pace ``1/b`` segment
    per RTT):

    * **loss-limited** — losses arrive before the climb from ``W/2``
      back to ``W`` completes, so the window never dwells at its cap:
      the Mathis bound ``(MSS/RTT) * sqrt(3 / (2*b*p))``.
    * **window-limited with residual loss** — the climb completes and
      the window sits at ``W`` until the next loss; the average over
      one climb-then-dwell cycle interpolates between the Mathis bound
      and the loss-free ``W * MSS / RTT`` ceiling.  A flat
      ``min(window, Mathis)`` overestimates this regime — each loss
      still halves the window below its cap.

    Parallel streams add linearly (they only interact through shared
    links, which the solver handles).  This is the flow's *ceiling* —
    link sharing can only lower it.
    """
    if rtt <= 0:
        raise ValueError(f"rtt must be positive: {rtt}")
    if not 0.0 <= loss < 1.0:
        raise ValueError(f"loss must be in [0, 1): {loss}")
    if streams < 1:
        raise ValueError(f"streams must be >= 1: {streams}")
    w = max(1.0, WINDOW_EFFICIENCY * rwnd / mss)  # window cap, segments
    window_rate = w * mss / rtt
    if loss <= 0.0:
        return streams * window_rate
    n = 1.0 / loss
    climb_segs = 0.375 * ACK_EVERY * w * w  # sent climbing W/2 -> W
    if climb_segs >= n:
        mathis = (mss / rtt) * math.sqrt(3.0 / (2.0 * ACK_EVERY * loss))
        per_stream = min(mathis, window_rate)
    else:
        dwell_rtts = (n - climb_segs) / w
        cycle_rtts = ACK_EVERY * w / 2.0 + dwell_rtts
        per_stream = (n * mss) / (rtt * cycle_rtts)
    return streams * per_stream


def slow_start_penalty(
    rate_per_stream: float, rtt: float, mss: float = MSS
) -> float:
    """Dead time equivalent of the slow-start ramp, in seconds.

    Slow start reaches a window of ``W`` packets in ``log2(W)`` RTTs but
    delivers only ~``2W`` packets doing it; the shortfall versus sending
    at the steady rate the whole time is charged as a delay before the
    fluid flow activates.  Small windows ramp within the credit and pay
    nothing.
    """
    if rate_per_stream <= 0 or rtt <= 0:
        return 0.0
    w = rate_per_stream * rtt / mss
    if w <= 1.0:
        return 0.0
    return rtt * max(0.0, math.log2(w) - SLOWSTART_CREDIT)


def spec_flow_params(spec) -> dict:
    """Flow-tier parameters equivalent to a driver ``StackSpec``.

    This is the flow tier's half of the ``fidelity=`` knob: the packet
    tier assembles real drivers from the spec, the flow tier maps the
    same spec onto :meth:`FlowNetwork.start_flow` keywords — ``parallel``
    becomes the stream count, and a ``mux`` layer's credit window caps
    the effective receive window (credit, like rwnd, bounds unacked
    bytes in flight per channel).  Filtering layers (compress/tls) do
    not change the fluid model; CPU effects are out of scope for this
    tier (see docs/SIMNET.md).

    Accepts anything with the :class:`~repro.core.utilization.spec.StackSpec`
    inspection surface; defined here (not in ``core``) so ``simnet``
    never imports upward.
    """
    params: dict = {"streams": int(spec.links_required)}
    mux = getattr(spec, "mux", None)
    if mux is not None:
        win = mux.get("win")
        if win is not None:
            params["rwnd"] = min(65536.0, float(win))
    return params


class FlowPipe:
    """One direction of a flow-level link: a capacity constraint."""

    __slots__ = ("name", "capacity", "delay", "loss", "down")

    def __init__(
        self, name: str, capacity: float, delay: float, loss: float = 0.0
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss}")
        self.name = name
        self.capacity = capacity
        self.delay = delay
        self.loss = loss
        self.down = False

    @property
    def goodput(self) -> float:
        """Payload capacity a saturated pipe sustains; 0 when down.

        Raw rate minus header overhead, times the drop-tail utilization
        deficit — flows only feel this cap when the pipe is their
        bottleneck, which is exactly when the sawtooth leaves it idle.
        """
        if self.down:
            return 0.0
        return self.capacity * WIRE_EFFICIENCY * PIPE_UTILIZATION

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " DOWN" if self.down else ""
        return f"<FlowPipe {self.name} {self.capacity:.0f}B/s{state}>"


class FlowLink:
    """Bidirectional link between a host and its parent.

    Mirrors the fault/RTT surface of :class:`repro.simnet.link.Link`
    (``set_down``, ``down``, ``delay_ab``/``delay_ba``/``rtt``,
    ``bandwidth``) so chaos fault actions work identically on either
    fidelity tier.  Direction *a→b* is child→parent.
    """

    __slots__ = ("net", "name", "child", "parent", "to_parent", "to_child")

    def __init__(
        self,
        net: "FlowNetwork",
        name: str,
        child: "FlowHost",
        parent: "FlowHost",
        *,
        bandwidth: float,
        delay: float,
        loss: float = 0.0,
        delay_back: Optional[float] = None,
        down_bandwidth: Optional[float] = None,
    ):
        self.net = net
        self.name = name
        self.child = child
        self.parent = parent
        if delay_back is None:
            delay_back = delay
        self.to_parent = FlowPipe(f"{name}:up", bandwidth, delay, loss)
        self.to_child = FlowPipe(
            f"{name}:down",
            bandwidth if down_bandwidth is None else down_bandwidth,
            delay_back,
            loss,
        )

    def set_down(self, down: bool) -> None:
        """Cut (or restore) both directions; flows re-solve immediately."""
        if self.to_parent.down == down and self.to_child.down == down:
            return
        self.to_parent.down = down
        self.to_child.down = down
        self.net._link_changed(self, down)

    @property
    def down(self) -> bool:
        return self.to_parent.down and self.to_child.down

    # chaos faults written against packet-tier Link objects address the
    # directions as a_to_b / b_to_a; a is the child side here.  Mutating
    # pipe loss affects flows started afterwards (ceilings are computed
    # at start), which matches a loss burst's effect on new transfers.
    @property
    def a_to_b(self) -> FlowPipe:
        return self.to_parent

    @property
    def b_to_a(self) -> FlowPipe:
        return self.to_child

    @property
    def delay_ab(self) -> float:
        return self.to_parent.delay

    @property
    def delay_ba(self) -> float:
        return self.to_child.delay

    @property
    def rtt(self) -> float:
        """Round-trip propagation: the explicit sum of both halves."""
        return self.to_parent.delay + self.to_child.delay

    @property
    def bandwidth(self) -> float:
        return self.to_parent.capacity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlowLink {self.name} {self.child.name}<->{self.parent.name}>"


class FlowHost:
    """A named attachment point in the topology tree."""

    __slots__ = ("name", "parent", "uplink", "depth")

    def __init__(
        self,
        name: str,
        parent: Optional["FlowHost"] = None,
        uplink: Optional[FlowLink] = None,
    ):
        self.name = name
        self.parent = parent
        self.uplink = uplink
        self.depth = 0 if parent is None else parent.depth + 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlowHost {self.name} depth={self.depth}>"


_PENDING_STATES = ("pending", "active")


class FluidFlow:
    """One bulk transfer, modelled as a rate that the solver assigns.

    Lifecycle: ``pending`` (handshake + slow-start delay) → ``active``
    (delivering at :attr:`rate`) → ``done`` (all bytes delivered) or
    ``aborted``.  Completion fires :attr:`on_complete` and the lazily
    created :attr:`done` event.
    """

    __slots__ = (
        "net",
        "name",
        "src",
        "dst",
        "size",
        "delivered",
        "streams",
        "mss",
        "rwnd",
        "ceiling",
        "rtt",
        "loss",
        "path",
        "rate",
        "active_from",
        "started_at",
        "finished_at",
        "state",
        "channel",
        "on_complete",
        "_done",
        "_fixed",
    )

    def __init__(
        self,
        net: "FlowNetwork",
        name: str,
        src: str,
        dst: str,
        size: float,
        *,
        streams: int,
        mss: float,
        rwnd: float,
        path: tuple,
        rtt: float,
        loss: float,
        active_from: float,
        channel: Optional[str],
        on_complete: Optional[Callable[["FluidFlow"], None]],
    ):
        self.net = net
        self.name = name
        self.src = src
        self.dst = dst
        self.size = float(size)
        self.delivered = 0.0
        self.streams = streams
        self.mss = mss
        self.rwnd = rwnd
        self.path = path
        self.rtt = rtt
        self.loss = loss
        self.ceiling = aimd_rate(
            rtt, loss, mss=mss, rwnd=rwnd, streams=streams
        )
        self.rate = 0.0
        self.active_from = active_from
        self.started_at = net.sim.now
        self.finished_at: Optional[float] = None
        self.state = "pending"
        self.channel = channel
        self.on_complete = on_complete
        self._done: Optional[Event] = None
        self._fixed = False

    @property
    def remaining(self) -> float:
        return max(0.0, self.size - self.delivered)

    @property
    def done(self) -> Event:
        """Event triggering (with the flow) on completion.

        Created lazily: fleet-scale scenarios use :attr:`on_complete`
        callbacks and never pay for 100k Event objects.
        """
        if self._done is None:
            self._done = Event(self.net.sim)
            if self.state == "done":
                self._done.succeed(self)
        return self._done

    def abort(self) -> None:
        """Stop the transfer, keeping bytes delivered so far."""
        if self.state not in _PENDING_STATES:
            return
        self.net._settle(self.net.sim.now)
        if self.state not in _PENDING_STATES:  # settle may have completed it
            return
        self.state = "aborted"
        self.rate = 0.0
        self.finished_at = self.net.sim.now
        self.net.flows_aborted += 1
        self.net._mark_dirty()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FluidFlow {self.name} {self.src}->{self.dst} {self.state} "
            f"{self.delivered:.0f}/{self.size:.0f}B @{self.rate:.0f}B/s>"
        )


class FlowNetwork:
    """Tree topology + event-driven max-min rate solver.

    The solver runs when flows arrive, complete, or a link changes
    state; all triggers at one timestamp coalesce into a single pass.
    Between passes every active flow delivers at its assigned rate.
    """

    #: mirrors topology.LAN defaults so site-ish trees feel familiar
    DEFAULT_BANDWIDTH = 12_500_000.0
    DEFAULT_DELAY = 0.000_05

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0):
        self.sim = sim or Simulator()
        self.seed = seed
        self.hosts: dict[str, FlowHost] = {}
        self.links: list[FlowLink] = []
        self.root: Optional[FlowHost] = None
        #: subscribers called as ``fn(link, down)`` on set_down transitions
        self.on_link_change: list[Callable[[FlowLink, bool], None]] = []
        # active flows, kept sorted by ceiling (the solver relies on it)
        self._active: list[FluidFlow] = []
        # min-heap of (active_from, seq, flow) not yet delivering
        self._pending: list = []
        self._seq = 0
        self._dirty = False
        self._last_settle = 0.0
        self._timer = Timer(self.sim, self._resolve)
        # lifetime counters (chaos stats / obs export read these)
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_aborted = 0
        self.delivered_bytes = 0.0
        self.resolves = 0

    # -- topology -----------------------------------------------------------
    def add_host(
        self,
        name: str,
        parent: Optional[str] = None,
        *,
        bandwidth: Optional[float] = None,
        delay: Optional[float] = None,
        loss: float = 0.0,
        delay_back: Optional[float] = None,
        down_bandwidth: Optional[float] = None,
    ) -> FlowHost:
        """Attach ``name`` under ``parent`` (the first host is the root).

        ``bandwidth``/``delay``/``loss`` describe the uplink to the
        parent; ``delay_back`` makes the RTT halves asymmetric and
        ``down_bandwidth`` the capacities (both default symmetric).
        """
        if name in self.hosts:
            raise ValueError(f"duplicate host {name!r}")
        if parent is None:
            if self.root is not None:
                raise ValueError(
                    f"root is {self.root.name!r}; give {name!r} a parent"
                )
            host = FlowHost(name)
            self.root = host
            self.hosts[name] = host
            return host
        up = self.hosts[parent]
        host = FlowHost(name, parent=up)
        link = FlowLink(
            self,
            f"{name}~{parent}",
            host,
            up,
            bandwidth=self.DEFAULT_BANDWIDTH if bandwidth is None else bandwidth,
            delay=self.DEFAULT_DELAY if delay is None else delay,
            loss=loss,
            delay_back=delay_back,
            down_bandwidth=down_bandwidth,
        )
        host.uplink = link
        self.hosts[name] = host
        self.links.append(link)
        return host

    def route(self, src: str, dst: str) -> tuple:
        """Forward path ``src → dst``: ``(pipes, rtt, loss)``.

        Walks both hosts up to their lowest common ancestor.  ``pipes``
        are the directional constraints the flow's payload crosses;
        ``rtt`` sums both halves of every traversed link (asymmetric
        halves stay explicit); ``loss`` compounds the forward pipes'
        loss rates.
        """
        a = self.hosts[src]
        b = self.hosts[dst]
        if a is b:
            raise ValueError(f"flow endpoints identical: {src!r}")
        up: list[FlowPipe] = []
        down: list[FlowPipe] = []
        rtt = 0.0
        keep = 1.0
        while a.depth > b.depth:
            link = a.uplink
            up.append(link.to_parent)
            rtt += link.rtt
            keep *= 1.0 - link.to_parent.loss
            a = a.parent
        while b.depth > a.depth:
            link = b.uplink
            down.append(link.to_child)
            rtt += link.rtt
            keep *= 1.0 - link.to_child.loss
            b = b.parent
        while a is not b:
            la, lb = a.uplink, b.uplink
            up.append(la.to_parent)
            down.append(lb.to_child)
            rtt += la.rtt + lb.rtt
            keep *= (1.0 - la.to_parent.loss) * (1.0 - lb.to_child.loss)
            a = a.parent
            b = b.parent
        down.reverse()
        return tuple(up + down), rtt, 1.0 - keep

    # -- flow lifecycle ------------------------------------------------------
    def start_flow(
        self,
        src: str,
        dst: str,
        size: float,
        *,
        streams: int = 1,
        mss: float = MSS,
        rwnd: float = 65536.0,
        name: Optional[str] = None,
        channel: Optional[str] = None,
        setup_delay: Optional[float] = None,
        on_complete: Optional[Callable[[FluidFlow], None]] = None,
    ) -> FluidFlow:
        """Begin a bulk transfer of ``size`` payload bytes.

        The flow spends handshake (``setup_delay``, default
        :data:`SETUP_RTTS` RTTs) plus the slow-start penalty in
        ``pending`` before delivering.  All flows started at one
        timestamp share a single solver pass.
        """
        if size <= 0:
            raise ValueError(f"size must be positive: {size}")
        path, rtt, loss = self.route(src, dst)
        if setup_delay is None:
            setup_delay = SETUP_RTTS * rtt
        ceiling = aimd_rate(rtt, loss, mss=mss, rwnd=rwnd, streams=streams)
        ramp = slow_start_penalty(ceiling / streams, rtt, mss)
        self._seq += 1
        flow = FluidFlow(
            self,
            name or f"flow-{self._seq}",
            src,
            dst,
            size,
            streams=streams,
            mss=mss,
            rwnd=rwnd,
            path=path,
            rtt=rtt,
            loss=loss,
            active_from=self.sim.now + setup_delay + ramp,
            channel=channel,
            on_complete=on_complete,
        )
        heapq.heappush(self._pending, (flow.active_from, self._seq, flow))
        self.flows_started += 1
        self._mark_dirty()
        return flow

    def active_flows(self) -> list[FluidFlow]:
        """Flows still in flight (delivering or in handshake), in order."""
        live = [f for f in self._active if f.state == "active"]
        live.extend(f for _, _, f in sorted(self._pending)
                    if f.state == "pending")
        return live

    def stats(self) -> dict:
        return {
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_aborted": self.flows_aborted,
            "flows_active": len(self.active_flows()),
            "delivered_bytes": self.delivered_bytes,
            "resolves": self.resolves,
        }

    # -- solver --------------------------------------------------------------
    def _link_changed(self, link: FlowLink, down: bool) -> None:
        self._mark_dirty()
        for fn in self.on_link_change:
            fn(link, down)

    def _mark_dirty(self) -> None:
        """Coalesce same-timestamp triggers into one solver pass."""
        if not self._dirty:
            self._dirty = True
            self.sim.call_later(0.0, self._resolve)

    def _settle(self, now: float) -> None:
        """Credit ``rate * dt`` to every active flow, completing any done."""
        dt = now - self._last_settle
        self._last_settle = now
        finished = None
        for f in self._active:
            if f.state != "active" or f.rate <= 0.0:
                continue
            f.delivered += f.rate * dt
            if f.delivered >= f.size - _EPS_BYTES:
                if finished is None:
                    finished = []
                finished.append(f)
        if finished:
            for f in finished:
                self._finish(f, now)

    def _finish(self, flow: FluidFlow, now: float) -> None:
        flow.delivered = flow.size
        flow.rate = 0.0
        flow.state = "done"
        flow.finished_at = now
        self.flows_completed += 1
        self.delivered_bytes += flow.size
        if flow._done is not None:
            flow._done.succeed(flow)
        if flow.on_complete is not None:
            flow.on_complete(flow)

    def _resolve(self) -> None:
        now = self.sim.now
        self._dirty = False
        self._timer.cancel()
        self._settle(now)
        # promote pending flows whose handshake/ramp completed
        promoted = None
        while self._pending and self._pending[0][0] <= now + 1e-12:
            _, _, f = heapq.heappop(self._pending)
            if f.state != "pending":
                continue
            f.state = "active"
            if promoted is None:
                promoted = []
            promoted.append(f)
        # drop finished/aborted flows, keeping ceiling order
        self._active = [f for f in self._active if f.state == "active"]
        if promoted:
            promoted.sort(key=_ceiling_key)
            if self._active:
                self._active = list(
                    heapq.merge(self._active, promoted, key=_ceiling_key)
                )
            else:
                self._active = promoted
        self._solve()
        self.resolves += 1
        self._arm(now)

    def _solve(self) -> None:
        """Max-min fair rates with per-flow ceilings (water-filling).

        Each round computes the smallest per-flow fair share over the
        still-constrained pipes; flows whose AIMD ceiling is below that
        share are capped there, otherwise every flow on a bottleneck
        pipe is fixed at the share.  Uniform fan-ins converge in two
        rounds regardless of flow count.
        """
        flows = self._active
        if not flows:
            return
        usage: dict[int, list] = {}
        for f in flows:
            f._fixed = False
            for p in f.path:
                entry = usage.get(id(p))
                if entry is None:
                    usage[id(p)] = entry = [p.goodput, 0, []]
                entry[1] += 1
                entry[2].append(f)
        unfixed = len(flows)
        ptr = 0  # flows are sorted by ceiling; fixed ones are skipped
        while unfixed:
            fair = math.inf
            for entry in usage.values():
                if entry[1] > 0:
                    share = entry[0] / entry[1]
                    if share < fair:
                        fair = share
            if fair is math.inf:
                for f in flows:
                    if not f._fixed:
                        _fix(f, f.ceiling, usage)
                break
            thresh = fair * (1.0 + 1e-9) + 1e-12
            progressed = False
            while ptr < len(flows):
                f = flows[ptr]
                if f._fixed:
                    ptr += 1
                    continue
                if f.ceiling > thresh:
                    break
                _fix(f, f.ceiling, usage)
                unfixed -= 1
                ptr += 1
                progressed = True
            if progressed:
                continue
            for entry in usage.values():
                if entry[1] > 0 and entry[0] <= thresh * entry[1]:
                    for f in entry[2]:
                        if not f._fixed:
                            _fix(f, fair, usage)
                            unfixed -= 1

    def _arm(self, now: float) -> None:
        """Sleep until the next completion or pending activation."""
        horizon = math.inf
        for f in self._active:
            if f.rate > 0.0:
                eta = (f.size - f.delivered) / f.rate
                if eta < horizon:
                    horizon = eta
        if self._pending:
            nxt = self._pending[0][0] - now
            if nxt < horizon:
                horizon = nxt
        if horizon is not math.inf:
            self._timer.start(min(max(horizon, 0.0), TIMER_HORIZON))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FlowNetwork hosts={len(self.hosts)} "
            f"active={len(self._active)} t={self.sim.now}>"
        )


def _ceiling_key(flow: FluidFlow) -> float:
    return flow.ceiling


def _fix(flow: FluidFlow, rate: float, usage: dict) -> None:
    flow.rate = rate if rate > 1e-12 else 0.0
    flow._fixed = True
    for p in flow.path:
        entry = usage[id(p)]
        entry[0] -= rate
        if entry[0] < 0.0:
            entry[0] = 0.0
        entry[1] -= 1


class FlowBackend(SimBackend):
    """The flow tier behind the :class:`SimBackend` protocol."""

    fidelity = "flow"

    def __init__(self, net: Optional[FlowNetwork] = None, seed: int = 0):
        if net is None:
            net = FlowNetwork(seed=seed)
        super().__init__(net.sim)
        self.net = net

    @property
    def hosts(self) -> dict:
        return self.net.hosts

    @property
    def links(self) -> list:
        return self.net.links

    def live_connections(self) -> list:
        """Flows still in flight; leaks if the scenario was torn down."""
        return [
            f"{f.name} {f.src}->{f.dst} "
            f"[{f.state} {f.delivered:.0f}/{f.size:.0f}B]"
            for f in self.net.active_flows()
        ]

    def describe(self) -> dict:
        d = {
            "fidelity": self.fidelity,
            "hosts": len(self.net.hosts),
            "links": len(self.net.links),
        }
        d.update(self.net.stats())
        return d
