"""Deprecated location of the measurement helpers.

:class:`TransferMeter`, :class:`SeriesRecorder` and :func:`mb_per_s` now
live in :mod:`repro.obs.meters` (the observability subsystem).  Importing
them from here still works but emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

__all__ = ["TransferMeter", "SeriesRecorder", "mb_per_s"]


def __getattr__(name):
    if name in __all__:
        from .. import obs

        warnings.warn(
            f"repro.simnet.stats.{name} moved to repro.obs; "
            f"import it from repro.obs (or repro.obs.meters) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(obs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
