"""Simulated wide-area network substrate.

A deterministic discrete-event model of the grid environments the paper
deploys on: sites with LANs behind border gateways, stateful firewalls,
several NAT flavours, SOCKS proxies, and a from-scratch TCP with
client/server + simultaneous-open establishment and Reno congestion
control.

Entry points:

* :class:`~repro.simnet.engine.Simulator` — the event loop.
* :class:`~repro.simnet.topology.Internet` — scenario builder (sites,
  public hosts).
* :mod:`~repro.simnet.sockets` — blocking-style sockets for sim processes.
"""

from .engine import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
    any_of,
    with_timeout,
)
from .firewall import StatefulFirewall
from .link import Link
from .nat import BrokenNAT, ConeNAT, NatBox, SymmetricNAT
from .packet import Addr, Segment, in_prefix, int_to_ip, ip_to_int, is_private
from .cpu import CpuModel, DEFAULT_RATES
from .sockets import (
    SimListener,
    SimSocket,
    connect,
    connect_simultaneous,
    listen,
)
from .socks import SocksError, SocksServer, socks_accept_bound, socks_bind, socks_connect
from ..obs.meters import SeriesRecorder, TransferMeter, mb_per_s
from .tcp import (
    ConnectRefused,
    ConnectTimeout,
    ConnectionReset,
    SocketClosed,
    TcpConfig,
    TcpError,
)
from .topology import Host, Internet, Network, Site
from .trace import Tracer, handshake_diagram
from .udp import MAX_DATAGRAM, UdpError, UdpSocket, UdpStack

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "any_of",
    "all_of",
    "with_timeout",
    "Network",
    "Internet",
    "Site",
    "Host",
    "Link",
    "Addr",
    "Segment",
    "ip_to_int",
    "int_to_ip",
    "in_prefix",
    "is_private",
    "StatefulFirewall",
    "NatBox",
    "ConeNAT",
    "SymmetricNAT",
    "BrokenNAT",
    "CpuModel",
    "DEFAULT_RATES",
    "TcpConfig",
    "TcpError",
    "ConnectTimeout",
    "ConnectRefused",
    "ConnectionReset",
    "SocketClosed",
    "SimSocket",
    "SimListener",
    "connect",
    "listen",
    "connect_simultaneous",
    "SocksServer",
    "SocksError",
    "socks_connect",
    "socks_bind",
    "socks_accept_bound",
    "Tracer",
    "handshake_diagram",
    "UdpStack",
    "UdpSocket",
    "UdpError",
    "MAX_DATAGRAM",
    "TransferMeter",
    "SeriesRecorder",
    "mb_per_s",
]
