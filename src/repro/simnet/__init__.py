"""Simulated wide-area network substrate.

A deterministic discrete-event model of the grid environments the paper
deploys on: sites with LANs behind border gateways, stateful firewalls,
several NAT flavours, SOCKS proxies, and a from-scratch TCP with
client/server + simultaneous-open establishment and Reno congestion
control.

Entry points:

* :class:`~repro.simnet.backend.SimBackend` — the fidelity-agnostic
  engine protocol; :func:`~repro.simnet.backend.make_backend` picks the
  ``packet`` (per-segment TCP) or ``flow`` (fluid AIMD) tier.
* :class:`~repro.simnet.engine.Simulator` — the event loop.
* :class:`~repro.simnet.topology.Internet` — packet-tier scenario
  builder (sites, public hosts).
* :class:`~repro.simnet.flow.FlowNetwork` — flow-tier topology +
  max-min rate solver for fleet-scale runs.
* :mod:`~repro.simnet.sockets` — blocking-style sockets for sim processes.

See ``docs/SIMNET.md`` for the fidelity-tier architecture and when each
tier's numbers are trustworthy.
"""

from .backend import FIDELITIES, PacketBackend, SimBackend, make_backend
from .engine import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
    all_of,
    any_of,
    with_timeout,
)
from .firewall import StatefulFirewall
from .flow import (
    FlowBackend,
    FlowHost,
    FlowLink,
    FlowNetwork,
    FluidFlow,
    aimd_rate,
    slow_start_penalty,
    spec_flow_params,
)
from .link import Link
from .nat import BrokenNAT, ConeNAT, NatBox, SymmetricNAT
from .packet import Addr, Segment, in_prefix, int_to_ip, ip_to_int, is_private
from .cpu import CpuModel, DEFAULT_RATES
from .sockets import (
    SimListener,
    SimSocket,
    connect,
    connect_simultaneous,
    listen,
)
from .socks import SocksError, SocksServer, socks_accept_bound, socks_bind, socks_connect
from ..obs.meters import SeriesRecorder, TransferMeter, mb_per_s
from .tcp import (
    ConnectRefused,
    ConnectTimeout,
    ConnectionReset,
    SocketClosed,
    TcpConfig,
    TcpError,
)
from .topology import Host, Internet, Network, Site
from .trace import Tracer, handshake_diagram
from .udp import MAX_DATAGRAM, UdpError, UdpSocket, UdpStack

__all__ = [
    "SimBackend",
    "PacketBackend",
    "FlowBackend",
    "make_backend",
    "FIDELITIES",
    "FlowNetwork",
    "FlowHost",
    "FlowLink",
    "FluidFlow",
    "aimd_rate",
    "slow_start_penalty",
    "spec_flow_params",
    "Simulator",
    "Event",
    "Process",
    "Timeout",
    "Interrupt",
    "SimulationError",
    "any_of",
    "all_of",
    "with_timeout",
    "Network",
    "Internet",
    "Site",
    "Host",
    "Link",
    "Addr",
    "Segment",
    "ip_to_int",
    "int_to_ip",
    "in_prefix",
    "is_private",
    "StatefulFirewall",
    "NatBox",
    "ConeNAT",
    "SymmetricNAT",
    "BrokenNAT",
    "CpuModel",
    "DEFAULT_RATES",
    "TcpConfig",
    "TcpError",
    "ConnectTimeout",
    "ConnectRefused",
    "ConnectionReset",
    "SocketClosed",
    "SimSocket",
    "SimListener",
    "connect",
    "listen",
    "connect_simultaneous",
    "SocksServer",
    "SocksError",
    "socks_connect",
    "socks_bind",
    "socks_accept_bound",
    "Tracer",
    "handshake_diagram",
    "UdpStack",
    "UdpSocket",
    "UdpError",
    "MAX_DATAGRAM",
    "TransferMeter",
    "SeriesRecorder",
    "mb_per_s",
]
