"""Fidelity-agnostic simulation backend protocol.

The engine core (:class:`~repro.simnet.engine.Simulator`) is a plain
discrete-event loop; everything that makes a run *packet-level* — hosts
with TCP stacks, links that serialize segments, middleboxes — is one
**fidelity tier** built on top of it.  :class:`SimBackend` is the narrow
protocol both tiers implement:

* **clock + event scheduling** — delegated to the shared engine
  (``now``, ``timeout``, ``process``, ``call_later``, ``run``, ...);
* **link/host topology** — named endpoints joined by links that expose
  ``set_down`` (the chaos fault surface) and explicit asymmetric RTT
  halves;
* **driver attach points** — where workloads hook in: sockets and driver
  stacks on the packet tier, :class:`~repro.simnet.flow.FluidFlow`
  transfers on the flow tier;
* **teardown/leak probes** — ``pending_events`` and
  ``live_connections()``, so the chaos invariant suite runs unchanged
  against either tier.

Tiers:

``packet``
    The paper's Figures 9/10 machinery: a from-scratch Reno TCP over
    serializing links.  Cycle-accurate, expensive — tens of nodes.
``flow``
    The fluid fast path (:mod:`repro.simnet.flow`): each bulk transfer
    is an AIMD flow with a steady-state rate, links are capacity
    constraints shared max-min fairly, and the event loop only fires on
    flow arrival/departure/link change — 100k+ endpoints in seconds.

Pick a tier with :func:`make_backend`, or through the ``fidelity=`` knob
on :class:`~repro.core.utilization.spec.StackSpec` and the chaos runner.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Generator, Optional

from .engine import Event, Process, Simulator, Timeout

__all__ = ["SimBackend", "PacketBackend", "make_backend", "FIDELITIES"]

#: the valid values of every ``fidelity=`` knob, in default order
FIDELITIES = ("packet", "flow")


class SimBackend(abc.ABC):
    """The narrow engine surface a fidelity tier must provide.

    A backend owns a :class:`~repro.simnet.engine.Simulator` and exposes
    its clock/scheduling verbs plus the topology and leak probes the
    scenario/chaos layers need.  Code written against this protocol
    (scenario builders, invariant checks, fault schedulers) runs
    unchanged on any tier.
    """

    #: tier name, one of :data:`FIDELITIES`
    fidelity: str = ""

    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim or Simulator()

    # -- clock + event scheduling (the shared engine core) -------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return self.sim.timeout(delay, value)

    def event(self) -> Event:
        return self.sim.event()

    def process(self, gen: Generator, name: str = "") -> Process:
        return self.sim.process(gen, name)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> Event:
        return self.sim.call_later(delay, fn, *args)

    def call_at(self, when: float, fn: Callable, *args: Any) -> Event:
        return self.sim.call_at(when, fn, *args)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def run_until_triggered(self, event: Event, limit: float = 1e9) -> Any:
        return self.sim.run_until_triggered(event, limit=limit)

    # -- teardown / leak probes ----------------------------------------------
    @property
    def pending_events(self) -> int:
        """Events still scheduled on the engine heap (public probe)."""
        return self.sim.pending

    @abc.abstractmethod
    def live_connections(self) -> list:
        """Human-readable descriptions of connections still alive.

        After a scenario has been torn down and drained, anything this
        returns is a resource leak; the chaos invariant suite reports
        each entry verbatim.
        """

    # -- topology -------------------------------------------------------------
    @abc.abstractmethod
    def describe(self) -> dict:
        """Deterministic summary of the topology (host/link/flow counts)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} fidelity={self.fidelity} t={self.now}>"


class PacketBackend(SimBackend):
    """The packet-level tier: adapts the existing :class:`Network`.

    The hosts/links/TCP machinery predates this protocol; the adapter
    holds the :class:`~repro.simnet.topology.Network` and answers the
    protocol questions from its tables.  New code should reach topology
    through the backend; direct ``Network`` access still works but is
    the tier-specific (non-portable) surface.
    """

    fidelity = "packet"

    def __init__(self, net=None, seed: int = 0):
        if net is None:
            from .topology import Network

            net = Network(seed=seed)
        super().__init__(net.sim)
        self.net = net

    # -- topology -------------------------------------------------------------
    @property
    def hosts(self) -> dict:
        return self.net.hosts

    @property
    def links(self) -> list:
        return self.net.links

    def live_connections(self) -> list:
        """Every TCP connection still present in any host's stack."""
        leaks = []
        for name in sorted(self.net.hosts):
            host = self.net.hosts[name]
            stack = getattr(host, "_tcp", None)
            if stack is None:
                continue
            for (laddr, raddr), sock in sorted(stack._conns.items()):
                leaks.append(
                    f"{name} {laddr[0]}:{laddr[1]}->{raddr[0]}:{raddr[1]} "
                    f"[{sock.state}]"
                )
        return leaks

    def describe(self) -> dict:
        return {
            "fidelity": self.fidelity,
            "hosts": len(self.net.hosts),
            "links": len(self.net.links),
        }


def make_backend(fidelity: str = "packet", seed: int = 0) -> SimBackend:
    """Factory for a fresh backend of the requested fidelity tier."""
    if fidelity == "packet":
        return PacketBackend(seed=seed)
    if fidelity == "flow":
        from .flow import FlowBackend

        return FlowBackend(seed=seed)
    raise ValueError(f"unknown fidelity {fidelity!r}; have {FIDELITIES}")
