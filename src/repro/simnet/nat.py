"""Network address translation boxes (paper §1, §3, §6).

Three flavours model the behaviours the paper encountered:

* :class:`ConeNAT` — endpoint-independent mapping with port preservation
  when possible.  The external mapping for an internal (ip, port) is stable
  across destinations, so a peer told the observed external address can
  reach the node; crossing SYNs of a spliced connect traverse it.  This is
  the "NAT gateways based on a known and predictable port translation rule"
  for which Table 1 says splicing works.
* :class:`SymmetricNAT` — a fresh, unpredictable mapping per destination.
  An address observed by a broker (e.g. the relay) does not predict the
  mapping used toward the actual peer, so splicing fails and the decision
  tree must fall back to a proxy or relay.
* :class:`BrokenNAT` — the standards-noncompliant implementations of §6
  ("did not let TCP splicing connections across, even though they should
  have"): mappings are cone-style, but inbound *bare SYN* packets are
  dropped, killing simultaneous open while leaving ordinary client
  behaviour (inbound SYN+ACK) intact.

NAT inherently drops unsolicited inbound packets with no mapping, which is
why a NATted site cannot host servers (Table 1: client/server "works when
the client does NAT, not the server").
"""

from __future__ import annotations

import random
from typing import Optional

from .packet import Addr, Segment
from .topology import PacketFilter

__all__ = ["NatBox", "ConeNAT", "SymmetricNAT", "BrokenNAT", "NatStats"]


class NatStats:
    __slots__ = ("translated_out", "translated_in", "dropped_in", "dropped_syn")

    def __init__(self):
        self.translated_out = 0
        self.translated_in = 0
        self.dropped_in = 0
        self.dropped_syn = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class NatBox(PacketFilter):
    """Base NAT: shared port allocation and rewriting machinery."""

    #: whether the mapping for an internal endpoint is stable across
    #: destinations (exposed to tests and to the Table 1 generator)
    endpoint_independent = True
    #: whether inbound bare SYNs on a valid mapping are forwarded
    allows_simultaneous_open = True

    def __init__(self, seed: int = 0):
        self.external_ip: Optional[str] = None
        self.site = None
        self._rng = random.Random(f"{seed}:{type(self).__name__}")
        self._used_ports: set[int] = set()
        # mapping key (flavour-specific) -> external port
        self._out_map: dict = {}
        # external port -> (internal addr, first destination)
        self._in_map: dict[int, tuple[Addr, Addr]] = {}
        self.stats = NatStats()

    def configure(self, external_ip: str, site=None) -> None:
        self.external_ip = external_ip
        self.site = site

    def expire_mappings(self) -> int:
        """Fault-injection hook: drop every translation table entry.

        Models an idle-timeout sweep or a NAT reboot.  In-flight flows
        lose their mapping: replies to the old external ports are dropped
        (or passed to the gateway untranslated) and the next outbound
        packet allocates a fresh mapping.  Returns the number of mappings
        expired.  Allocated external ports stay reserved so a new mapping
        can never collide with a stale peer's view of an old one.
        """
        expired = len(self._out_map)
        self._out_map.clear()
        self._in_map.clear()
        return expired

    # -- mapping policy (overridden per flavour) -------------------------------
    def _map_key(self, internal: Addr, dst: Addr):
        """Mapping key: per-endpoint for cone, per-(endpoint, dst) for symmetric."""
        return internal

    def _gateway_ports(self) -> set:
        """Ports bound by the gateway host itself (shared port space)."""
        if self.site is None:
            return set()
        gw = self.site.gateway
        if gw._tcp is None:
            return set()
        return gw.tcp._bound_ports

    def _port_taken(self, port: int) -> bool:
        return port in self._used_ports or port in self._gateway_ports()

    def _pick_port(self, internal: Addr) -> int:
        """Port-preserving allocation (cone flavours).

        Ports in the gateway's ephemeral range are never preserved: the
        gateway's own outbound connections share the external port space,
        and a preserved high port could collide with them later.
        """
        port = internal[1]
        from .tcp import TcpStack

        while self._port_taken(port) or port >= TcpStack.EPHEMERAL_BASE:
            port = 1024 + self._rng.randrange(30000)
        self._used_ports.add(port)
        return port

    # -- rewriting --------------------------------------------------------------
    def egress(self, segment: Segment) -> Optional[Segment]:
        if self.external_ip is None:
            raise RuntimeError("NAT not configured")
        if segment.src[0] == self.external_ip:
            return segment  # gateway's own traffic
        key = self._map_key(segment.src, segment.dst)
        mapping = self._out_map.get(key)
        if mapping is None:
            mapping = self._pick_port(segment.src)
            self._out_map[key] = mapping
            self._in_map[mapping] = (segment.src, segment.dst)
        self.stats.translated_out += 1
        segment.src = (self.external_ip, mapping)
        return segment

    def ingress(self, segment: Segment) -> Optional[Segment]:
        if segment.dst[0] != self.external_ip:
            self.stats.dropped_in += 1
            return None
        entry = self._in_map.get(segment.dst[1])
        if entry is None:
            # Not a NAT mapping: this is traffic for the gateway host's own
            # services/connections (relay, SOCKS, its replies) — pass it
            # through untranslated.
            return segment
        internal, mapped_dst = entry
        if not self._inbound_allowed(segment, internal, mapped_dst):
            return None
        self.stats.translated_in += 1
        segment.dst = internal
        return segment

    def _inbound_allowed(self, segment: Segment, internal: Addr, mapped_dst: Addr) -> bool:
        return True


class ConeNAT(NatBox):
    """Endpoint-independent, port-preserving NAT (splicing-friendly)."""

    endpoint_independent = True
    allows_simultaneous_open = True


class SymmetricNAT(NatBox):
    """Per-destination random mappings: external ports are unpredictable.

    The broker-observed mapping (toward the relay) differs from the mapping
    toward the peer, so a spliced SYN aimed at the observed address finds no
    entry and is dropped.
    """

    endpoint_independent = False
    allows_simultaneous_open = True  # it would forward a SYN — but the port is wrong

    def _map_key(self, internal: Addr, dst: Addr):
        return (internal, dst)

    def _pick_port(self, internal: Addr) -> int:
        while True:
            port = 1024 + self._rng.randrange(30000)
            if not self._port_taken(port):
                self._used_ports.add(port)
                return port

    def _inbound_allowed(self, segment: Segment, internal: Addr, mapped_dst: Addr) -> bool:
        # Address-dependent filtering: only the mapped destination may
        # answer through this mapping.
        if segment.src != mapped_dst:
            self.stats.dropped_in += 1
            return False
        return True


class BrokenNAT(ConeNAT):
    """Standards-noncompliant NAT that kills simultaneous open (§6).

    Cone mappings, but the NAT's TCP-aware tracking treats an inbound *bare
    SYN* as an attack: it drops the packet **and answers with RST** — a
    behaviour of several real 2004-era NAT routers.  The RST lands on the
    outside peer's SYN_SENT socket and aborts the spliced connect, which is
    what the paper observed: "several NAT implementations were not fully
    standards-compliant, and did not let TCP splicing connections across,
    even though they should have", forcing a fall-back "to a standard SOCKS
    proxy".

    Ordinary client traffic (inbound SYN+ACK answering our outbound SYN) is
    unaffected, so the site still works as a pure client.
    """

    allows_simultaneous_open = False

    def _inbound_allowed(self, segment: Segment, internal: Addr, mapped_dst: Addr) -> bool:
        if segment.syn and not segment.ack_flag:
            self.stats.dropped_syn += 1
            self._send_rst(segment)
            return False
        return True

    def _send_rst(self, cause: Segment) -> None:
        if self.site is None:
            return
        rst = Segment(
            src=cause.dst,
            dst=cause.src,
            seq=0,
            ack=cause.seq + cause.seg_len,
            rst=True,
            ack_flag=True,
            window=0,
        )
        self.site.gateway.send_segment(rst)
