"""Point-to-point link model: delay, bandwidth, queueing, loss.

Each :class:`Link` joins two interfaces and carries traffic independently in
each direction through a :class:`Transmitter`:

* packets wait in a finite drop-tail queue (bytes-bounded);
* the head packet occupies the wire for ``size / bandwidth`` seconds
  (serialization delay);
* delivery happens one propagation ``delay`` later;
* Bernoulli loss with probability ``loss`` is applied per packet, after
  serialization (the packet consumed wire time, then vanished — like real
  corruption/drop in flight).

Determinism: each transmitter draws from its own ``random.Random`` seeded
from the link's seed, so runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from .engine import Simulator
from .packet import Segment

__all__ = ["Link", "Transmitter", "LinkStats"]


class LinkStats:
    """Per-direction link counters."""

    __slots__ = (
        "tx_packets",
        "tx_bytes",
        "delivered_packets",
        "delivered_bytes",
        "drops_queue",
        "drops_loss",
        "drops_down",
    )

    def __init__(self):
        self.tx_packets = 0
        self.tx_bytes = 0
        self.delivered_packets = 0
        self.delivered_bytes = 0
        self.drops_queue = 0
        self.drops_loss = 0
        self.drops_down = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LinkStats {self.as_dict()}>"


class Transmitter:
    """One direction of a link."""

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        bandwidth: float,
        queue_bytes: int,
        loss: float,
        rng: random.Random,
        name: str = "",
        jitter: float = 0.0,
    ):
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1): {loss}")
        if jitter < 0:
            raise ValueError(f"negative jitter: {jitter}")
        self.sim = sim
        self.delay = delay
        self.bandwidth = bandwidth
        self.queue_bytes = queue_bytes
        self.loss = loss
        self.rng = rng
        self.name = name
        #: uniform extra propagation delay in [0, jitter): values larger
        #: than a packet's serialization time cause genuine reordering
        self.jitter = jitter
        self.deliver: Optional[Callable[[Segment], None]] = None
        #: fault-injection hook: while True, serialized packets vanish
        #: (a flapped/cut link) — see :meth:`Link.set_down`
        self.down = False
        self._queue: list[Segment] = []
        self._queued_bytes = 0
        self._busy = False
        self.stats = LinkStats()

    def transmit(self, segment: Segment) -> None:
        """Enqueue ``segment`` for transmission (drop-tail)."""
        if self._queued_bytes + segment.size > self.queue_bytes:
            self.stats.drops_queue += 1
            return
        self._queue.append(segment)
        self._queued_bytes += segment.size
        if not self._busy:
            self._start_next()

    def _start_next(self) -> None:
        segment = self._queue[0]
        self._busy = True
        ser_time = segment.size / self.bandwidth
        self.sim.call_later(ser_time, self._serialized)

    def _serialized(self) -> None:
        segment = self._queue.pop(0)
        self._queued_bytes -= segment.size
        self.stats.tx_packets += 1
        self.stats.tx_bytes += segment.size
        if self.down:
            self.stats.drops_down += 1
        elif self.loss and self.rng.random() < self.loss:
            self.stats.drops_loss += 1
        else:
            extra = self.rng.random() * self.jitter if self.jitter else 0.0
            self.sim.call_later(self.delay + extra, self._arrive, segment)
        if self._queue:
            self._start_next()
        else:
            self._busy = False

    def _arrive(self, segment: Segment) -> None:
        self.stats.delivered_packets += 1
        self.stats.delivered_bytes += segment.size
        if self.deliver is not None:
            self.deliver(segment)

    @property
    def backlog_bytes(self) -> int:
        """Bytes currently waiting (including the packet on the wire)."""
        return self._queued_bytes


class Link:
    """A bidirectional point-to-point link between two interfaces.

    Parameters
    ----------
    delay:
        One-way propagation delay in seconds (a→b direction).
    bandwidth:
        Serialization rate in bytes/second (per direction).
    queue_bytes:
        Drop-tail queue capacity in bytes (per direction).  Defaults to
        roughly one bandwidth-delay product, floored at 64 KiB, which gives
        realistic router buffering.
    loss:
        Per-packet Bernoulli loss probability.
    seed:
        Seed for the per-direction RNGs.
    delay_back:
        One-way propagation delay of the b→a direction.  Defaults to
        ``delay`` (a symmetric link).  Real WAN paths are often
        asymmetric; the RTT both fidelity tiers agree on is always the
        explicit sum :attr:`rtt` = ``delay_ab + delay_ba``, never
        ``2 * delay``.
    """

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        bandwidth: float,
        queue_bytes: Optional[int] = None,
        loss: float = 0.0,
        seed: int = 0,
        name: str = "link",
        jitter: float = 0.0,
        delay_back: Optional[float] = None,
    ):
        self.sim = sim
        self.name = name
        if delay_back is None:
            delay_back = delay
        if queue_bytes is None:
            queue_bytes = max(65536, int(bandwidth * max(delay, delay_back)))
        self.a_to_b = Transmitter(
            sim, delay, bandwidth, queue_bytes, loss,
            random.Random(f"{seed}:{name}:a"), name=f"{name}:a->b",
            jitter=jitter,
        )
        self.b_to_a = Transmitter(
            sim, delay_back, bandwidth, queue_bytes, loss,
            random.Random(f"{seed}:{name}:b"), name=f"{name}:b->a",
            jitter=jitter,
        )

    def connect(self, iface_a, iface_b) -> None:
        """Wire both directions to interfaces (see topology.Interface)."""
        iface_a.attach(self, self.a_to_b)
        iface_b.attach(self, self.b_to_a)
        self.a_to_b.deliver = iface_b.receive
        self.b_to_a.deliver = iface_a.receive

    def set_down(self, down: bool) -> None:
        """Cut (or restore) both directions of the link.

        While down, packets still occupy the wire for their serialization
        time and are then dropped — a clean model of a flapped WAN link.
        TCP retransmission recovers transparently once the link heals.
        """
        self.a_to_b.down = down
        self.b_to_a.down = down

    @property
    def down(self) -> bool:
        return self.a_to_b.down and self.b_to_a.down

    @property
    def delay_ab(self) -> float:
        """Propagation delay of the a→b direction."""
        return self.a_to_b.delay

    @property
    def delay_ba(self) -> float:
        """Propagation delay of the b→a direction."""
        return self.b_to_a.delay

    @property
    def rtt(self) -> float:
        """Round-trip propagation time: the *sum* of the two halves.

        Use this (never ``2 * delay``) wherever an RTT is derived from a
        topology, so asymmetric links give the same answer on the packet
        and flow fidelity tiers.
        """
        return self.a_to_b.delay + self.b_to_a.delay

    @property
    def delay(self) -> float:
        """The a→b delay — only meaningful on symmetric links.

        Asymmetric links must use :attr:`delay_ab` / :attr:`delay_ba`;
        this accessor raises when the halves differ rather than silently
        reporting half a wrong RTT.
        """
        if self.a_to_b.delay != self.b_to_a.delay:
            raise ValueError(
                f"link {self.name} is asymmetric "
                f"({self.a_to_b.delay}s / {self.b_to_a.delay}s); "
                "use delay_ab/delay_ba or rtt"
            )
        return self.a_to_b.delay

    @property
    def bandwidth(self) -> float:
        return self.a_to_b.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.name} delay={self.delay}s "
            f"bw={self.bandwidth:.0f}B/s>"
        )
