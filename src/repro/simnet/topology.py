"""Hosts, interfaces, routers and site/Internet builders.

The simulated network mirrors the deployments the paper evaluates on
(Section 6): multiple *sites*, each a LAN of compute nodes behind a border
gateway, joined across a wide-area backbone.  A site's gateway may carry a
stateful firewall and/or a NAT box on its WAN interface; private sites use
RFC 1918 addresses that the backbone cannot route (exactly the connectivity
problem of Section 1).

Layering:

* :class:`Interface` — attachment point of a host to a link, with an ordered
  chain of :class:`PacketFilter` (firewall, NAT) applied on egress in list
  order and on ingress in reverse order, iptables-style.
* :class:`Host` — owns interfaces, a static routing table and a TCP stack.
  Routers are hosts with ``ip_forward=True``.
* :class:`Network` — container: builds links, delivers trace events.
* :class:`Internet` / :class:`Site` — scenario builders reproducing the
  paper's topologies.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from .engine import Simulator
from .link import Link, Transmitter
from .packet import Addr, Segment, in_prefix, ip_to_int

__all__ = [
    "PacketFilter",
    "Interface",
    "Host",
    "Network",
    "Internet",
    "Site",
    "LAN_BANDWIDTH",
    "LAN_DELAY",
]

#: 100 Mbit/s Ethernet LAN defaults (paper §4.1 measures 11.8 MB/s on this).
LAN_BANDWIDTH = 12_500_000.0
LAN_DELAY = 0.000_05
#: switch port buffering: generous relative to the tiny LAN BDP, so a LAN
#: hop never drops bursts headed for a slower WAN uplink
LAN_QUEUE = 262_144


class PacketFilter:
    """Base class for middlebox packet filters (firewall, NAT).

    ``egress`` sees packets leaving through the interface the filter is
    attached to; ``ingress`` sees packets arriving on it.  Either returns
    the (possibly rewritten) segment, or ``None`` to drop it.
    """

    def egress(self, segment: Segment) -> Optional[Segment]:
        return segment

    def ingress(self, segment: Segment) -> Optional[Segment]:
        return segment


class Interface:
    """A host's attachment to a link."""

    def __init__(self, host: "Host", name: str, ip: str, prefixlen: int):
        self.host = host
        self.name = name
        self.ip = ip
        self.prefixlen = prefixlen
        self.link: Optional[Link] = None
        self.transmitter: Optional[Transmitter] = None
        self.filters: list[PacketFilter] = []

    def attach(self, link: Link, transmitter: Transmitter) -> None:
        self.link = link
        self.transmitter = transmitter

    def send(self, segment: Segment) -> None:
        """Apply egress filters then put the segment on the wire."""
        for flt in self.filters:
            out = flt.egress(segment)
            if out is None:
                self.host.net.trace(
                    "drop", host=self.host, iface=self, segment=segment,
                    reason=f"egress:{type(flt).__name__}",
                )
                return
            segment = out
        if self.transmitter is None:
            raise RuntimeError(f"interface {self} not attached to a link")
        self.host.net.trace("tx", host=self.host, iface=self, segment=segment)
        self.transmitter.transmit(segment)

    def receive(self, segment: Segment) -> None:
        """Apply ingress filters (reverse order) then hand to the host."""
        for flt in reversed(self.filters):
            out = flt.ingress(segment)
            if out is None:
                self.host.net.trace(
                    "drop", host=self.host, iface=self, segment=segment,
                    reason=f"ingress:{type(flt).__name__}",
                )
                return
            segment = out
        self.host.net.trace("rx", host=self.host, iface=self, segment=segment)
        self.host._receive(self, segment)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Interface {self.host.name}/{self.name} {self.ip}/{self.prefixlen}>"


class Host:
    """A simulated machine: interfaces, routes, and a TCP stack.

    The TCP stack is created lazily on first access so pure routers stay
    lightweight.  Application processes run as simulation processes and use
    :mod:`repro.simnet.sockets` for a blocking-style socket API.
    """

    def __init__(self, net: "Network", name: str, ip_forward: bool = False):
        self.net = net
        self.sim: Simulator = net.sim
        self.name = name
        self.ip_forward = ip_forward
        self.interfaces: list[Interface] = []
        # (prefix_int, prefixlen, mask, iface) sorted by prefixlen desc
        self._routes: list[tuple[int, int, int, Interface]] = []
        self._tcp = None
        self._udp = None
        self.cpu = None  # attached by simnet.cpu.CpuModel when modelling CPU cost

    # -- configuration ------------------------------------------------------
    def add_interface(self, ip: str, prefixlen: int, name: str = "") -> Interface:
        iface = Interface(self, name or f"eth{len(self.interfaces)}", ip, prefixlen)
        self.interfaces.append(iface)
        self.add_route(ip, prefixlen, iface)  # connected route
        return iface

    def add_route(self, prefix: str, prefixlen: int, iface: Interface) -> None:
        mask = 0 if prefixlen == 0 else (~((1 << (32 - prefixlen)) - 1)) & 0xFFFFFFFF
        entry = (ip_to_int(prefix) & mask, prefixlen, mask, iface)
        self._routes.append(entry)
        self._routes.sort(key=lambda r: -r[1])

    def default_route(self, iface: Interface) -> None:
        self.add_route("0.0.0.0", 0, iface)

    @property
    def local_ips(self) -> set[str]:
        return {iface.ip for iface in self.interfaces}

    @property
    def ip(self) -> str:
        """Primary address (first interface)."""
        if not self.interfaces:
            raise RuntimeError(f"host {self.name} has no interfaces")
        return self.interfaces[0].ip

    @property
    def tcp(self):
        """The host's TCP stack (created on first use)."""
        if self._tcp is None:
            from .tcp import TcpStack

            self._tcp = TcpStack(self)
        return self._tcp

    @property
    def udp(self):
        """The host's UDP stack (created on first use)."""
        if self._udp is None:
            from .udp import UdpStack

            self._udp = UdpStack(self)
        return self._udp

    # -- data path ----------------------------------------------------------
    def route(self, dst_ip: str) -> Optional[Interface]:
        dst = ip_to_int(dst_ip)
        for prefix, _plen, mask, iface in self._routes:
            if dst & mask == prefix:
                return iface
        return None

    def send_segment(self, segment: Segment) -> None:
        """Route and transmit a locally originated segment."""
        if segment.dst[0] in self.local_ips:
            # Loopback delivery, no wire.
            self.net.trace("lo", host=self, iface=None, segment=segment)
            self.sim.call_later(0.0, self._deliver_local, segment)
            return
        iface = self.route(segment.dst[0])
        if iface is None:
            self.net.trace(
                "drop", host=self, iface=None, segment=segment, reason="no-route"
            )
            return
        iface.send(segment)

    def _receive(self, iface: Interface, segment: Segment) -> None:
        if segment.dst[0] in self.local_ips:
            self._deliver_local(segment)
        elif self.ip_forward:
            self._forward(segment)
        else:
            self.net.trace(
                "drop", host=self, iface=iface, segment=segment,
                reason="not-for-me",
            )

    def _forward(self, segment: Segment) -> None:
        if segment.ttl <= 1:
            self.net.trace(
                "drop", host=self, iface=None, segment=segment, reason="ttl"
            )
            return
        segment.ttl -= 1
        out = self.route(segment.dst[0])
        if out is None:
            self.net.trace(
                "drop", host=self, iface=None, segment=segment, reason="no-route"
            )
            return
        out.send(segment)

    def _deliver_local(self, segment: Segment) -> None:
        if segment.proto == "udp":
            self.udp.receive(segment)
        else:
            self.tcp.receive(segment)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name}>"


class Network:
    """Container for the whole simulated network."""

    def __init__(self, sim: Optional[Simulator] = None, seed: int = 0):
        self.sim = sim or Simulator()
        self.seed = seed
        self.hosts: dict[str, Host] = {}
        self.links: list[Link] = []
        self.tracers: list[Callable[[dict], None]] = []
        self._link_seq = 0

    def add_host(self, name: str, ip_forward: bool = False) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(self, name, ip_forward=ip_forward)
        self.hosts[name] = host
        return host

    def add_router(self, name: str) -> Host:
        return self.add_host(name, ip_forward=True)

    def connect(
        self,
        a: Host,
        b: Host,
        ip_a: str,
        ip_b: str,
        prefixlen: int,
        delay: float = LAN_DELAY,
        bandwidth: float = LAN_BANDWIDTH,
        loss: float = 0.0,
        queue_bytes: Optional[int] = None,
        name: str = "",
        jitter: float = 0.0,
        delay_back: Optional[float] = None,
    ) -> Link:
        """Create a link between two hosts, adding connected interfaces.

        ``delay`` is the a→b propagation half; ``delay_back`` (defaulting
        to ``delay``) the b→a half.  Asymmetric paths are explicit so the
        RTT is always the sum of the two halves on every fidelity tier.
        """
        self._link_seq += 1
        link = Link(
            self.sim,
            delay=delay,
            bandwidth=bandwidth,
            queue_bytes=queue_bytes,
            loss=loss,
            seed=self.seed + self._link_seq,
            name=name or f"{a.name}--{b.name}",
            jitter=jitter,
            delay_back=delay_back,
        )
        iface_a = a.add_interface(ip_a, prefixlen)
        iface_b = b.add_interface(ip_b, prefixlen)
        link.connect(iface_a, iface_b)
        self.links.append(link)
        return link

    def trace(self, kind: str, **info) -> None:
        if not self.tracers:
            return
        info["kind"] = kind
        info["time"] = self.sim.now
        for tracer in self.tracers:
            tracer(info)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


class Site:
    """A grid site: LAN nodes behind a border gateway.

    * ``firewall`` — attach a stateful firewall to the gateway's WAN side.
    * ``nat`` — attach a NAT box; the site then uses private 10.x addresses.
    * Without NAT the site LAN uses publicly routed addresses
      (203.0.<index>.0/24) announced to the backbone.

    The gateway itself is dual-homed ("connected both inside and outside of
    the firewall", §3.3) so relays and SOCKS proxies can run on it.
    """

    def __init__(
        self,
        internet: "Internet",
        name: str,
        index: int,
        firewall=None,
        nat=None,
        access_delay: float = 0.005,
        access_bandwidth: float = 12_500_000.0,
        access_loss: float = 0.0,
        queue_bytes: Optional[int] = None,
        access_jitter: float = 0.0,
    ):
        self.internet = internet
        self.net = internet.net
        self.name = name
        self.index = index
        self.nat = nat
        self.firewall = firewall
        self.nodes: list[Host] = []

        net = self.net
        self.gateway = net.add_router(f"{name}-gw")
        self.wan_ip = f"198.51.{index}.2"
        backbone_ip = f"198.51.{index}.1"
        self.wan_link = net.connect(
            internet.backbone,
            self.gateway,
            backbone_ip,
            self.wan_ip,
            30,
            delay=access_delay,
            bandwidth=access_bandwidth,
            loss=access_loss,
            queue_bytes=queue_bytes,
            name=f"wan-{name}",
            jitter=access_jitter,
        )
        self.wan_iface = self.gateway.interfaces[-1]
        self.gateway.default_route(self.wan_iface)

        if nat is not None:
            self.lan_prefix = f"10.{index}.0.0"
            self.lan_plen = 16
        else:
            self.lan_prefix = f"203.0.{index}.0"
            self.lan_plen = 24
            # Publicly routed site: backbone learns the prefix.
            internet.backbone.add_route(
                self.lan_prefix, self.lan_plen, internet.backbone.interfaces[-1]
            )
        self._next_node = 10

        # Middlebox chain on the WAN interface: firewall sees internal
        # addressing; NAT rewrites outermost.
        if firewall is not None:
            firewall.exempt_ips.add(self.wan_ip)
            self.wan_iface.filters.append(firewall)
        if nat is not None:
            nat.configure(external_ip=self.wan_ip, site=self)
            self.wan_iface.filters.append(nat)

    def _lan_ip(self, node_index: int) -> str:
        base = self.lan_prefix.rsplit(".", 1)[0] if self.lan_plen == 24 else None
        if self.lan_plen == 24:
            return f"{base}.{node_index}"
        return f"10.{self.index}.0.{node_index}"

    @property
    def gateway_lan_ip(self) -> str:
        return self._lan_ip(1)

    def add_node(self, name: str = "") -> Host:
        """Add a compute node on the site LAN.

        The LAN is modelled as per-node point-to-point links to the gateway
        (a switched Ethernet); the gateway carries a host route per node so
        forwarding picks the right port.
        """
        idx = self._next_node
        self._next_node += 1
        node = self.net.add_host(name or f"{self.name}-n{idx}")
        node_ip = self._lan_ip(idx)
        gw_lan_ip = self._lan_ip(200 + len(self.nodes)) if self.nodes else self._lan_ip(1)
        self.net.connect(
            self.gateway,
            node,
            gw_lan_ip,
            node_ip,
            self.lan_plen,
            delay=LAN_DELAY,
            bandwidth=LAN_BANDWIDTH,
            queue_bytes=LAN_QUEUE,
            name=f"lan-{self.name}-{node.name}",
        )
        # Host route: the connected-prefix routes of sibling ports would
        # otherwise shadow each other.
        self.gateway.add_route(node_ip, 32, self.gateway.interfaces[-1])
        node.default_route(node.interfaces[-1])
        self.nodes.append(node)
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = []
        if self.firewall is not None:
            kind.append("firewall")
        if self.nat is not None:
            kind.append("nat")
        return f"<Site {self.name} [{','.join(kind) or 'open'}]>"


class Internet:
    """The wide-area backbone joining sites and public hosts.

    The backbone router itself is infinitely fast relative to access links,
    so end-to-end WAN characteristics (delay, capacity, loss) are set by the
    two access links of the communicating sites — matching how the paper
    reports per-pair link capacity/latency.
    """

    def __init__(self, net: Optional[Network] = None, seed: int = 0):
        self.net = net or Network(seed=seed)
        self.sim = self.net.sim
        self.backbone = self.net.add_router("backbone")
        self.sites: dict[str, Site] = {}
        self._public_seq = 9
        self._site_seq = 0

    def add_site(self, name: str, **kwargs) -> Site:
        self._site_seq += 1
        site = Site(self, name, self._site_seq, **kwargs)
        self.sites[name] = site
        return site

    def add_public_host(
        self,
        name: str,
        delay: float = 0.002,
        bandwidth: float = 125_000_000.0,
    ) -> Host:
        """A host with a public address directly on the backbone."""
        self._public_seq += 1
        host = self.net.add_host(name)
        host_ip = f"198.51.100.{self._public_seq}"
        backbone_ip = f"198.51.200.{self._public_seq}"
        self.net.connect(
            self.backbone, host, backbone_ip, host_ip, 32,
            delay=delay, bandwidth=bandwidth, name=f"pub-{name}",
        )
        # Point-to-point link: the backbone needs an explicit host route.
        self.backbone.add_route(host_ip, 32, self.backbone.interfaces[-1])
        host.default_route(host.interfaces[-1])
        return host
