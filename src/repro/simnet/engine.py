"""Discrete-event simulation engine.

This is the substrate clock for the whole simulated wide-area network.  It
provides a simpy-flavoured, generator-based process model:

* :class:`Simulator` owns the event heap and the simulated clock.
* :class:`Event` is a one-shot occurrence that processes can wait on.
* :class:`Process` drives a generator; every value the generator yields must
  be an :class:`Event`, and the process resumes when that event triggers.
* :class:`Timeout` triggers after a fixed amount of simulated time.
* :func:`any_of` / :func:`all_of` compose events.

The engine is fully deterministic: events scheduled for the same timestamp
fire in schedule order (a monotonically increasing sequence number breaks
ties), so simulation runs are reproducible bit-for-bit given the same seed
for any randomized component.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(proc(sim, "b", 2.0))
>>> _ = sim.process(proc(sim, "a", 1.0))
>>> sim.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "any_of",
    "all_of",
    "with_timeout",
    "Timer",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* exactly once via
    :meth:`succeed` or :meth:`fail`.  Triggering schedules the event's
    callbacks to run at the current simulation time (they run from the event
    loop, never re-entrantly from ``succeed``/``fail`` callers).

    Processes wait on events by yielding them.  If an event fails and no
    waiter marks it ``defused``, the exception propagates into every waiting
    process (or, if nothing waits, out of :meth:`Simulator.run`).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "defused", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set to True by a waiter that handled the failure
        self.defused = False
        self._scheduled = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with exception ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, 0.0)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- waiting ----------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event has already been processed, the callback runs
        immediately.
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay)


class Initialize(Event):
    """Internal: starts a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        sim._schedule(self, 0.0)


class Process(Event):
    """Drives a generator through the simulation.

    The process *is* an event: it triggers when the generator returns
    (successfully, with the generator's return value) or raises (failed).
    Other processes can therefore wait for a process by yielding it.
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"process requires a generator, got {gen!r}")
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self is self.sim.active_process:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        hurry = Event(self.sim)
        hurry._ok = False
        hurry._value = exc
        hurry.defused = True
        hurry.callbacks.append(self._resume)
        self.sim._schedule(hurry, 0.0)

    # -- engine plumbing ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        sim = self.sim
        sim.active_process = self
        self._waiting_on = None
        try:
            while True:
                if event._ok:
                    target = self._gen.send(event._value)
                else:
                    event.defused = True
                    target = self._gen.throw(event._value)
                if not isinstance(target, Event):
                    exc = SimulationError(
                        f"process {self.name!r} yielded non-event {target!r}"
                    )
                    try:
                        self._gen.throw(exc)
                    except StopIteration as stop:
                        self._finish_ok(stop.value)
                        return
                    except BaseException as err:
                        self._finish_fail(err)
                        return
                    raise exc
                if target.sim is not sim:
                    raise SimulationError("event belongs to another simulator")
                if target.callbacks is not None:
                    # Pending: park until the event is processed.
                    target.callbacks.append(self._resume)
                    self._waiting_on = target
                    return
                # Already processed: continue driving inline.
                event = target
        except StopIteration as stop:
            self._finish_ok(stop.value)
        except BaseException as err:
            self._finish_fail(err)
        finally:
            sim.active_process = None

    def _finish_ok(self, value: Any) -> None:
        self._ok = True
        self._value = value
        self.sim._schedule(self, 0.0)

    def _finish_fail(self, err: BaseException) -> None:
        self._ok = False
        self._value = err
        self.sim._schedule(self, 0.0)


class Condition(Event):
    """Triggers when ``predicate(events)`` over the triggered subset holds.

    Used through :func:`any_of` and :func:`all_of`.  The condition's value is
    a dict mapping each triggered event to its value (insertion-ordered by
    the original event order).
    """

    __slots__ = ("events", "_predicate", "_done")

    def __init__(
        self,
        sim: "Simulator",
        events: Iterable[Event],
        predicate: Callable[[list[Event], int], bool],
    ):
        super().__init__(sim)
        self.events = list(events)
        self._predicate = predicate
        self._done = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        return {
            ev: ev._value
            for ev in self.events
            if ev.triggered and ev.processed
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok and not event.defused:
                # A late failure with nobody to handle it: defuse it here so
                # it does not crash the run; the condition owner already got
                # its result.
                event.defused = True
            return
        self._done += 1
        if not event._ok:
            event.defused = True
            self.fail(event._value)
        elif self._predicate(self.events, self._done):
            self.succeed(self._collect())


def any_of(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Event that triggers as soon as any of ``events`` triggers."""
    return Condition(sim, events, lambda evs, done: done >= 1)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Condition:
    """Event that triggers when all of ``events`` have triggered."""
    return Condition(sim, events, lambda evs, done: done >= len(evs))


class Timer:
    """A cancellable/restartable one-shot timer on the simulation clock.

    Unlike a raw :meth:`Simulator.call_later`, a Timer can be cancelled or
    restarted; stale firings are suppressed by a generation counter.
    """

    __slots__ = ("sim", "fn", "_gen", "deadline")

    def __init__(self, sim: "Simulator", fn: Callable[[], None]):
        self.sim = sim
        self.fn = fn
        self._gen = 0
        self.deadline: Optional[float] = None

    def start(self, delay: float) -> None:
        self._gen += 1
        gen = self._gen
        self.deadline = self.sim.now + delay
        self.sim.call_later(delay, self._fire, gen)

    def cancel(self) -> None:
        self._gen += 1
        self.deadline = None

    @property
    def running(self) -> bool:
        return self.deadline is not None

    def _fire(self, gen: int) -> None:
        if gen != self._gen:
            return
        self.deadline = None
        self.fn()


def with_timeout(sim: "Simulator", gen: Generator, seconds: float):
    """Run ``gen`` as a process, bounded by a deadline.

    Yields from within a process.  Returns the generator's value, raises its
    exception, or raises :class:`TimeoutError` once ``seconds`` elapse (the
    inner process is interrupted).
    """
    proc = sim.process(gen)
    deadline = sim.timeout(seconds)
    result = yield any_of(sim, [proc, deadline])
    if proc in result:
        return result[proc]
    if proc.is_alive:
        proc.interrupt("timeout")
        try:
            yield proc
        except (Interrupt, Exception):
            pass
    raise TimeoutError(f"operation timed out after {seconds}s")


class Simulator:
    """The event loop: owns the clock and the pending-event heap."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list = []
        self._seq = 0
        self.active_process: Optional[Process] = None
        self._running = False

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event (trigger it with succeed/fail)."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event triggering after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start driving ``gen`` as a simulation process."""
        return Process(self, gen, name)

    def call_at(self, when: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise ValueError(f"call_at into the past: {when} < {self.now}")
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _ev: fn(*args))
        self._schedule(ev, when - self.now)
        return ev

    def call_later(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        return self.call_at(self.now + delay, fn, *args)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            # Nobody handled the failure: surface it.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, so follow-up ``run`` calls
        observe a monotone clock.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    return
                try:
                    self._step()
                except StopSimulation:
                    return
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False

    def run_until_triggered(self, event: Event, limit: float = 1e9) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises the event's exception if it failed, and
        :class:`SimulationError` if the simulation drains or hits ``limit``
        first.
        """
        event.add_callback(lambda ev: (_ for _ in ()).throw(StopSimulation()))
        self.run(until=self.now + limit)
        if not event.triggered:
            raise SimulationError(
                f"simulation ended at t={self.now} before event triggered"
            )
        if not event.ok:
            event.defused = True
            raise event.value
        return event.value

    def stop(self) -> None:
        """Stop the current :meth:`run` after the active callback."""
        ev = Event(self)
        ev._ok = False
        ev._value = StopSimulation()
        ev.defused = False
        self._schedule(ev, 0.0)

    @property
    def pending(self) -> int:
        """Number of events still scheduled (public; don't touch ``_heap``).

        This is the blessed resource-leak probe: after a scenario is torn
        down and drained, a non-zero ``pending`` means timers or sockets
        leaked.  Part of the :class:`~repro.simnet.backend.SimBackend`
        surface so invariant checks work on any fidelity tier.
        """
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self.now} pending={len(self._heap)}>"
