"""Blocking-style socket API for simulation processes.

Thin generator wrappers over :mod:`repro.simnet.tcp` so application code
reads like ordinary socket programming::

    def client(host):
        sock = yield from connect(host, ("198.51.100.10", 5000))
        yield from sock.send_all(b"hello")
        reply = yield from sock.recv_exactly(5)
        sock.close()

All helpers are generators to be driven by the simulation engine
(``yield from`` them inside a process).
"""

from __future__ import annotations

from typing import Generator, Optional

from .engine import any_of
from .packet import Addr
from .tcp import ConnectTimeout, ListenSocket, TcpConfig, TcpError, TcpSocket

__all__ = [
    "SimSocket",
    "SimListener",
    "connect",
    "listen",
    "connect_simultaneous",
]


class SimSocket:
    """A connected stream socket bound to a simulation process' host."""

    def __init__(self, tcp: TcpSocket):
        self._tcp = tcp

    @property
    def laddr(self) -> Addr:
        return self._tcp.laddr

    @property
    def raddr(self) -> Addr:
        return self._tcp.raddr

    @property
    def tcp(self) -> TcpSocket:
        """The underlying TCP connection (for inspecting counters)."""
        return self._tcp

    @property
    def sim(self):
        """The simulator this socket lives in."""
        return self._tcp.sim

    def send_all(self, data: bytes) -> Generator:
        """Send all of ``data``, blocking on send-buffer backpressure."""
        yield self._tcp.send(data)

    def recv(self, maxbytes: int) -> Generator:
        """Receive up to ``maxbytes``; returns b"" at EOF."""
        data = yield self._tcp.recv(maxbytes)
        return data

    def recv_exactly(self, n: int) -> Generator:
        """Receive exactly ``n`` bytes; raises :class:`EOFError` if the
        stream ends first."""
        chunks = []
        remaining = n
        while remaining > 0:
            data = yield self._tcp.recv(remaining)
            if not data:
                raise EOFError(
                    f"stream from {self.raddr} ended with {remaining} of {n} bytes missing"
                )
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)

    def close(self) -> None:
        self._tcp.close()

    def abort(self) -> None:
        self._tcp.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimSocket {self._tcp!r}>"


class SimListener:
    """A listening socket; ``accept`` yields :class:`SimSocket`."""

    def __init__(self, listener: ListenSocket):
        self._listener = listener

    @property
    def addr(self) -> Addr:
        return self._listener.addr

    @property
    def port(self) -> int:
        return self._listener.port

    def accept(self) -> Generator:
        sock = yield self._listener.accept()
        return SimSocket(sock)

    def close(self) -> None:
        self._listener.close()


def listen(host, port: int = 0, backlog: int = 64) -> SimListener:
    """Open a listening socket on ``host``."""
    return SimListener(host.tcp.listen(port, backlog))


def connect(
    host,
    raddr: Addr,
    lport: int = 0,
    config: Optional[TcpConfig] = None,
    laddr_ip: Optional[str] = None,
    reuse: bool = False,
) -> Generator:
    """Actively connect from ``host`` to ``raddr``; yields a SimSocket.

    Raises :class:`~repro.simnet.tcp.ConnectTimeout` /
    :class:`~repro.simnet.tcp.ConnectRefused` on failure.
    """
    sock = host.tcp.connect(
        raddr, lport=lport, config=config, laddr_ip=laddr_ip, reuse=reuse
    )
    yield sock.connected
    return SimSocket(sock)


def connect_simultaneous(
    host,
    raddr: Addr,
    lport: int,
    config: Optional[TcpConfig] = None,
    laddr_ip: Optional[str] = None,
    reuse: bool = False,
) -> Generator:
    """TCP splicing: simultaneous connect with an agreed port pair.

    Identical to :func:`connect` at the API level — the RFC 793 state
    machine handles the crossing SYNs — but requires ``lport`` because the
    peer must know which (ip, port) pair to dial.  ``reuse`` allows sharing
    the local port with the STUN-style mapping probe that NAT traversal
    needs (the probe keeps the cone-NAT mapping alive).
    """
    if lport == 0:
        raise ValueError("splicing requires an agreed local port")
    return (
        yield from connect(
            host, raddr, lport=lport, config=config, laddr_ip=laddr_ip, reuse=reuse
        )
    )
