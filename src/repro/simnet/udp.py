"""UDP: connectionless datagrams for the simulated network.

The IPL's networking drivers are not limited to TCP (Figure 5 lists "TCP,
UDP, MPI"); NetIbis shipped UDP drivers with its own reliability layer on
top.  This module provides the datagram substrate; the reliability layer
is the ``rel`` driver in :mod:`repro.core.utilization.reliable`.

Datagrams share the IP layer with TCP — the same links, queues, loss,
firewalls and NAT (a NAT maps UDP flows by address pair exactly like TCP
ones).  Delivery is unordered only insofar as the network reorders; there
is no reliability, no flow control, no congestion control.
"""

from __future__ import annotations

from typing import Optional

from .engine import Event, Simulator
from .packet import Addr, Segment

__all__ = ["UdpStack", "UdpSocket", "UdpError", "MAX_DATAGRAM"]

#: maximum payload per datagram (Ethernet-style MTU minus headers)
MAX_DATAGRAM = 1472


class UdpError(Exception):
    """UDP usage error (port in use, oversized datagram, ...)."""


class UdpStack:
    """Per-host UDP: demultiplexes datagrams to bound sockets."""

    EPHEMERAL_BASE = 49152

    def __init__(self, host):
        self.host = host
        self.sim: Simulator = host.sim
        self._sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = self.EPHEMERAL_BASE
        self.dropped_no_socket = 0

    def bind(self, port: int = 0, rcv_queue: int = 64) -> "UdpSocket":
        """Bind a datagram socket (0 picks an ephemeral port)."""
        if port == 0:
            for _ in range(16384):
                candidate = self._next_ephemeral
                self._next_ephemeral += 1
                if self._next_ephemeral >= 65536:
                    self._next_ephemeral = self.EPHEMERAL_BASE
                if candidate not in self._sockets:
                    port = candidate
                    break
            else:
                raise UdpError("out of ephemeral UDP ports")
        if port in self._sockets:
            raise UdpError(f"UDP port {port} already bound on {self.host.name}")
        sock = UdpSocket(self, port, rcv_queue)
        self._sockets[port] = sock
        return sock

    def _unbind(self, port: int) -> None:
        self._sockets.pop(port, None)

    def receive(self, segment: Segment) -> None:
        sock = self._sockets.get(segment.dst[1])
        if sock is None:
            self.dropped_no_socket += 1
            return
        sock._deliver(segment)


class UdpSocket:
    """A bound datagram socket."""

    def __init__(self, stack: UdpStack, port: int, rcv_queue: int):
        self.stack = stack
        self.sim = stack.sim
        self.port = port
        self.rcv_queue = rcv_queue
        self._queue: list[tuple[bytes, Addr]] = []
        self._waiters: list[Event] = []
        self.closed = False
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.drops_queue_full = 0

    @property
    def addr(self) -> Addr:
        return (self.stack.host.ip, self.port)

    def sendto(self, data: bytes, dst: Addr) -> None:
        """Fire-and-forget datagram (synchronous: queues at the NIC)."""
        if self.closed:
            raise UdpError("send on closed UDP socket")
        if len(data) > MAX_DATAGRAM:
            raise UdpError(f"datagram too large: {len(data)} > {MAX_DATAGRAM}")
        segment = Segment(
            src=self.addr,
            dst=dst,
            payload=bytes(data),
            proto="udp",
            window=0,
        )
        self.datagrams_sent += 1
        self.stack.host.send_segment(segment)

    def recvfrom(self) -> Event:
        """Event yielding ``(payload, source_addr)``."""
        ev = self.sim.event()
        if self.closed:
            ev.fail(UdpError("recv on closed UDP socket"))
        elif self._queue:
            ev.succeed(self._queue.pop(0))
        else:
            self._waiters.append(ev)
        return ev

    def _deliver(self, segment: Segment) -> None:
        if self.closed:
            return
        self.datagrams_received += 1
        item = (segment.payload, segment.src)
        if self._waiters:
            self._waiters.pop(0).succeed(item)
        elif len(self._queue) < self.rcv_queue:
            self._queue.append(item)
        else:
            self.drops_queue_full += 1

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.stack._unbind(self.port)
        for ev in self._waiters:
            ev.fail(UdpError("socket closed"))
            ev.defused = True
        self._waiters.clear()
