"""Cross-validation of the flow tier against the packet tier.

The flow tier (:mod:`repro.simnet.flow`) is only trustworthy if its
closed-form AIMD model reproduces what the from-scratch TCP actually
does on the WANs the paper measured.  This module runs the *same* bulk
transfer both ways — a dumbbell topology with the profile's capacity /
one-way delay / loss, ``streams`` parallel connections, one clock — and
compares end-to-end throughput (connection setup and slow start
included on both tiers).

:data:`PROFILES` carries the two measurement WANs from the paper's §6
(the fig9/fig10 link parameters, mirroring
``benchmarks/paperlinks.py``); ``tests/simnet/test_crossval.py`` pins
the two tiers within :data:`TOLERANCE` on both, single-stream and
parallel-stream, which is what licenses using the flow tier for
fleet-scale runs.
"""

from __future__ import annotations

from typing import Generator, Optional

from .flow import FlowNetwork
from .sockets import connect, listen
from .testing import wan_pair

__all__ = [
    "PROFILES",
    "TOLERANCE",
    "crossval",
    "measure_flow",
    "measure_packet",
]

#: paper §6 measurement WANs (same constants as benchmarks/paperlinks.py)
PROFILES = {
    "fig9": {  # Amsterdam–Rennes: high latency, low bandwidth, lossy
        "capacity": 1.6e6,
        "one_way_delay": 0.015,
        "loss": 0.0025,
    },
    "fig10": {  # Delft–Sophia: high latency, high bandwidth, clean
        "capacity": 9e6,
        "one_way_delay": 0.0215,
        "loss": 0.0005,
    },
}

#: acceptance bound on |flow/packet - 1| for the pinned profiles
TOLERANCE = 0.15


def measure_packet(
    capacity: float,
    one_way_delay: float,
    loss: float,
    *,
    streams: int = 1,
    total_bytes: int = 8 << 20,
    seed: int = 0,
    until: float = 3600.0,
) -> float:
    """Packet-tier throughput (B/s) of a bulk transfer on a dumbbell WAN.

    ``streams`` parallel TCP connections split ``total_bytes`` evenly;
    the clock runs from t=0 (connects start immediately) to the last
    byte's arrival, so handshake and slow start are paid exactly as the
    flow tier pays its setup delay and ramp penalty.
    """
    inet, sender, receiver = wan_pair(capacity, one_way_delay, loss, seed=seed)
    sim = inet.sim
    per_stream = total_bytes // streams
    sizes = [per_stream] * streams
    sizes[0] += total_bytes - per_stream * streams
    done: dict[int, float] = {}
    chunk = 64 * 1024
    payload = bytes(256) * (chunk // 256)

    def client(i: int, nbytes: int) -> Generator:
        sock = yield from connect(sender, (receiver.ip, 5001 + i))
        remaining = nbytes
        while remaining > 0:
            n = min(chunk, remaining)
            yield from sock.send_all(payload[:n])
            remaining -= n
        sock.close()

    def server(i: int, nbytes: int) -> Generator:
        listener = listen(receiver, 5001 + i)
        sock = yield from listener.accept()
        total = 0
        while total < nbytes:
            data = yield from sock.recv(chunk)
            if not data:
                break
            total += len(data)
        done[i] = sim.now
        sock.close()
        listener.close()

    for i, nbytes in enumerate(sizes):
        sim.process(server(i, nbytes), name=f"xval-server-{i}")
        sim.process(client(i, nbytes), name=f"xval-client-{i}")
    sim.run(until=until)
    if len(done) != streams:
        raise RuntimeError(
            f"packet transfer incomplete: {len(done)}/{streams} streams"
        )
    return total_bytes / max(done.values())


def measure_flow(
    capacity: float,
    one_way_delay: float,
    loss: float,
    *,
    streams: int = 1,
    total_bytes: int = 8 << 20,
    seed: int = 0,
    until: float = 3600.0,
) -> float:
    """Flow-tier throughput (B/s) of the same transfer on the same WAN.

    One fluid flow with ``streams`` parallelism, over the same dumbbell:
    each side's uplink carries half the one-way delay and the full
    capacity, loss on the sender side — the exact geometry
    :func:`~repro.simnet.testing.wan_pair` builds for the packet tier.
    """
    net = FlowNetwork(seed=seed)
    net.add_host("wan")
    net.add_host(
        "left", "wan", bandwidth=capacity, delay=one_way_delay / 2, loss=loss
    )
    net.add_host("right", "wan", bandwidth=capacity, delay=one_way_delay / 2)
    flow = net.start_flow("left", "right", total_bytes, streams=streams)
    net.sim.run(until=until)
    if flow.state != "done" or flow.finished_at is None:
        raise RuntimeError(f"flow transfer incomplete: {flow!r}")
    return total_bytes / flow.finished_at


def crossval(
    profile: str,
    *,
    streams: int = 1,
    total_bytes: Optional[int] = None,
    seed: int = 0,
) -> dict:
    """Both tiers on one named profile; returns rates and their ratio."""
    params = PROFILES[profile]
    if total_bytes is None:
        # ~10 simulated seconds of steady state at the link capacity
        total_bytes = int(params["capacity"] * 10)
    packet = measure_packet(
        params["capacity"], params["one_way_delay"], params["loss"],
        streams=streams, total_bytes=total_bytes, seed=seed,
    )
    flow = measure_flow(
        params["capacity"], params["one_way_delay"], params["loss"],
        streams=streams, total_bytes=total_bytes, seed=seed,
    )
    return {
        "profile": profile,
        "streams": streams,
        "total_bytes": total_bytes,
        "packet_bps": packet,
        "flow_bps": flow,
        "ratio": flow / packet,
    }
