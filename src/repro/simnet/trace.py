"""Packet tracing: reproduce the paper's protocol diagrams as event logs.

Figures 1 and 2 of the paper are packet-exchange diagrams (client/server
handshake vs. TCP splicing, with and without firewalls).  The tracer
records every transmit / receive / drop the network performs, and
:func:`handshake_diagram` reduces a trace to the handshake-segment
sequence so benchmarks and tests can assert the exact exchanges the paper
draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..obs import context as _obs_context
from .packet import Segment
from .topology import Network

__all__ = ["TraceEntry", "Tracer", "handshake_diagram", "format_trace"]


@dataclass
class TraceEntry:
    time: float
    kind: str  # tx / rx / drop / lo / tcp-state
    host: str
    segment: Optional[Segment]
    reason: str = ""
    detail: str = ""
    #: causal ids (obs schema) of the ambient trace context at record time,
    #: when a traced operation was driving the network
    ids: dict = field(default_factory=dict)

    def to_obs(self) -> dict:
        """This entry as an obs schema-v2 ``packet`` record, joinable with
        per-node exports by :mod:`repro.obs.assemble`."""
        record = {
            "type": "trace",
            "kind": "packet",
            "name": f"packet.{self.kind}",
            "ts": self.time,
            "node": self.host,
            "attrs": {},
        }
        record.update(self.ids)
        if self.segment is not None:
            record["attrs"]["segment"] = self.segment.describe()
        if self.reason:
            record["attrs"]["reason"] = self.reason
        if self.detail:
            record["attrs"]["detail"] = self.detail
        return record

    def line(self) -> str:
        base = f"{self.time * 1000:10.3f}ms {self.host:12s} {self.kind:5s}"
        if self.segment is not None:
            base += f" {self.segment.describe()}"
        if self.reason:
            base += f" [{self.reason}]"
        if self.detail:
            base += f" {self.detail}"
        return base


class Tracer:
    """Records network events; attach with ``Tracer(net)``.

    ``only`` restricts recording to the given event kinds; ``hosts``
    restricts to events at the named hosts.
    """

    def __init__(
        self,
        net: Network,
        only: Optional[Iterable[str]] = None,
        hosts: Optional[Iterable[str]] = None,
    ):
        self.entries: list[TraceEntry] = []
        self.only = set(only) if only else None
        self.hosts = set(hosts) if hosts else None
        net.tracers.append(self._record)
        self._net = net

    def detach(self) -> None:
        try:
            self._net.tracers.remove(self._record)
        except ValueError:
            pass

    def _record(self, info: dict) -> None:
        kind = info["kind"]
        if self.only is not None and kind not in self.only:
            return
        host = info.get("host")
        host_name = host.name if host is not None else "?"
        if self.hosts is not None and host_name not in self.hosts:
            return
        detail = ""
        if kind == "tcp-state":
            detail = f"{info.get('old')} -> {info.get('new')}"
        ctx = _obs_context.current()
        self.entries.append(
            TraceEntry(
                time=info["time"],
                kind=kind,
                host=host_name,
                segment=info.get("segment"),
                reason=info.get("reason", ""),
                detail=detail,
                ids=ctx.ids() if ctx is not None else {},
            )
        )

    def filter(self, pred: Callable[[TraceEntry], bool]) -> list[TraceEntry]:
        return [e for e in self.entries if pred(e)]

    def handshake_segments(self) -> list[TraceEntry]:
        """Entries for SYN-bearing segments (the Figure 1/2 content)."""
        return [
            e
            for e in self.entries
            if e.segment is not None and (e.segment.syn or e.segment.rst)
        ]

    def drops(self) -> list[TraceEntry]:
        return [e for e in self.entries if e.kind == "drop"]

    def render(self) -> str:
        return "\n".join(e.line() for e in self.entries)


def handshake_diagram(tracer: Tracer, host_a: str, host_b: str) -> list[str]:
    """Reduce a trace to the arrow diagram of Figures 1/2.

    Each line is ``A --FLAGS--> B`` for a handshake segment *received* by
    the far end (so firewall-dropped segments do not appear, matching how
    the paper draws blocked arrows separately).
    """
    arrows = []
    for entry in tracer.entries:
        seg = entry.segment
        if seg is None or not (seg.syn or (seg.ack_flag and not seg.payload)):
            continue
        if entry.kind != "rx" or entry.host not in (host_a, host_b):
            continue
        sender = host_b if entry.host == host_a else host_a
        arrows.append(f"{sender} --{seg.flags_str()}--> {entry.host}")
    return arrows


def format_trace(entries: Iterable[TraceEntry]) -> str:
    return "\n".join(e.line() for e in entries)
