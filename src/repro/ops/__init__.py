"""Production-ops drivers built on the streaming telemetry plane.

:mod:`repro.ops.rollout` is the first: canary-gated configuration
rollout with automatic rollback on SLO breach (the ROADMAP's
"production-ops hardening: staged rollout" item).
"""

from .rollout import CanaryRollout, ConfigChange, RolloutError

__all__ = ["CanaryRollout", "ConfigChange", "RolloutError"]
