"""Canary rollout gate: stage a config change, watch SLOs, roll back.

The ROADMAP's staged-rollout item, closed on top of the telemetry
plane: a :class:`CanaryRollout` applies a :class:`ConfigChange` to a
*canary subset* of targets, then watches the
:class:`~repro.obs.telemetry.TelemetryAggregator`'s SLO monitors over a
**bake window**.  Any breach that *starts* on a canary source after the
change was applied trips an automatic **rollback**; a clean bake
**promotes** the change to the remaining targets.  The driver is
backend-agnostic the same way the telemetry publisher is:
:meth:`CanaryRollout.run_sim` is a simulated-time generator process and
:meth:`CanaryRollout.run_async` an awaitable polling loop, both built
on the synchronous :meth:`CanaryRollout.poll` state machine.

States::

    pending --start()--> canary --breach--> rolled_back   (terminal)
                            \\----bake elapsed--> promoted (terminal)

Nothing here knows what a "config" is: a :class:`ConfigChange` is a
pair of callables over opaque targets (a tuner policy swap, a mux
scheduler swap, a session-window change), so the same gate drives sim
scenarios, live scenarios and — later — real deployments.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro import obs

__all__ = ["ConfigChange", "CanaryRollout", "RolloutError"]

#: default bake window (seconds in the rollout's clock domain)
DEFAULT_BAKE = 10.0

#: default poll interval
DEFAULT_POLL = 0.5


class RolloutError(Exception):
    """Invalid rollout-state transition or configuration."""


@dataclass
class ConfigChange:
    """A named, reversible configuration change over opaque targets.

    ``apply(target)`` switches one target to the new configuration;
    ``revert(target)`` restores the previous one.  Both must be
    idempotent enough to survive being called once per target.
    """

    name: str
    apply: Callable[[object], None]
    revert: Callable[[object], None]
    attrs: dict = field(default_factory=dict)


class CanaryRollout:
    """Stage ``change`` on canaries, gate promotion on SLO health.

    ``targets`` maps target id -> opaque target object; ``canaries``
    names the subset to stage first.  ``sources`` optionally maps a
    target id to the telemetry source names its health is read from
    (default: the target id itself) — breaches on *non-canary* sources
    never trip a rollback, they are the control group.
    """

    def __init__(
        self,
        change: ConfigChange,
        aggregator: obs.TelemetryAggregator,
        targets: dict,
        canaries: Iterable[str],
        bake_seconds: float = DEFAULT_BAKE,
        poll_seconds: float = DEFAULT_POLL,
        clock: Optional[Callable[[], float]] = None,
        sources: Optional[dict] = None,
    ):
        self.change = change
        self.aggregator = aggregator
        self.targets = dict(targets)
        self.canaries = list(canaries)
        if not self.canaries:
            raise RolloutError("a rollout needs at least one canary")
        missing = [c for c in self.canaries if c not in self.targets]
        if missing:
            raise RolloutError(f"canaries are not targets: {missing}")
        if bake_seconds <= 0 or poll_seconds <= 0:
            raise RolloutError("bake/poll windows must be positive")
        self.bake_seconds = bake_seconds
        self.poll_seconds = poll_seconds
        self._clock = clock or obs.get_registry().now
        source_map = sources or {}
        self.canary_sources = set()
        for canary in self.canaries:
            mapped = source_map.get(canary, canary)
            if isinstance(mapped, str):
                self.canary_sources.add(mapped)
            else:
                self.canary_sources.update(mapped)
        self.state = "pending"
        self.applied_at: Optional[float] = None
        self.decided_at: Optional[float] = None
        self.trigger: Optional[dict] = None
        self.events: list[dict] = []

    # -- bookkeeping -------------------------------------------------------
    def _event(self, kind: str, **attrs) -> None:
        entry = {"kind": kind, "ts": self._clock(), **attrs}
        self.events.append(entry)
        obs.event(f"rollout.{kind}", change=self.change.name, **attrs)

    @property
    def done(self) -> bool:
        return self.state in ("rolled_back", "promoted")

    def stats(self) -> dict:
        """JSON-able rollout outcome (chaos reports embed this)."""
        return {
            "change": self.change.name,
            "state": self.state,
            "canaries": sorted(self.canaries),
            "applied_at": self.applied_at,
            "decided_at": self.decided_at,
            "bake_seconds": self.bake_seconds,
            "trigger": self.trigger,
            "events": [e["kind"] for e in self.events],
        }

    # -- state machine -----------------------------------------------------
    def start(self) -> None:
        """Apply the change to every canary and open the bake window."""
        if self.state != "pending":
            raise RolloutError(f"cannot start from state {self.state!r}")
        for canary in self.canaries:
            self.change.apply(self.targets[canary])
        self.applied_at = self._clock()
        self.state = "canary"
        self._event("apply", targets=sorted(self.canaries), stage="canary")

    def poll(self) -> str:
        """Advance the gate one step; returns the (possibly new) state.

        While baking: a breach that started on a canary source at or
        after ``applied_at`` reverts the canaries (``rolled_back``); a
        fully elapsed bake window applies the change to the remaining
        targets (``promoted``).
        """
        if self.state != "canary":
            return self.state
        breaches = self.aggregator.breaches_since(
            self.applied_at, sources=self.canary_sources
        )
        if breaches:
            first = breaches[0]
            for canary in self.canaries:
                self.change.revert(self.targets[canary])
            self.state = "rolled_back"
            self.decided_at = self._clock()
            self.trigger = first.as_dict()
            self._event(
                "rollback",
                targets=sorted(self.canaries),
                slo=first.slo,
                source=first.source,
                value=first.value,
                threshold=first.threshold,
            )
            return self.state
        if self._clock() - self.applied_at >= self.bake_seconds:
            rest = [t for t in self.targets if t not in self.canaries]
            for target in rest:
                self.change.apply(self.targets[target])
            self.state = "promoted"
            self.decided_at = self._clock()
            self._event("promote", targets=sorted(rest), stage="fleet")
        return self.state

    # -- drivers -----------------------------------------------------------
    def run_sim(self, sim, start_at: float = 0.0):
        """Simulated-time driver: ``sim.process(rollout.run_sim(sim))``.

        Waits until ``start_at`` (absolute sim time), starts the canary
        stage, then polls every ``poll_seconds`` until a terminal state.
        """
        if start_at > sim.now:
            yield sim.timeout(start_at - sim.now)
        self.start()
        while not self.done:
            yield sim.timeout(self.poll_seconds)
            self.poll()

    async def run_async(self, start_after: float = 0.0) -> str:
        """Wall-clock driver; returns the terminal state."""
        if start_after > 0:
            await asyncio.sleep(start_after)
        self.start()
        while not self.done:
            await asyncio.sleep(self.poll_seconds)
            self.poll()
        return self.state
