"""Synthetic grid-application workloads."""

from .payloads import (
    incompressible,
    measured_ratio,
    payload_with_ratio,
    scientific_mesh,
    text_like,
)

__all__ = [
    "text_like",
    "incompressible",
    "scientific_mesh",
    "payload_with_ratio",
    "measured_ratio",
]
