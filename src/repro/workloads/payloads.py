"""Synthetic payload generators with controlled compressibility.

The paper's compression results depend entirely on (a) the zlib-1 ratio its
application data achieved and (b) the CPU cost of compressing it.  We have
neither their data nor their machines, so workloads here generate payloads
whose *measured* zlib-1 ratio is controlled, and the CPU side is a
calibrated :class:`~repro.simnet.cpu.CpuModel` parameter.  DESIGN.md
documents the substitution.

All generators are deterministic in their seed.
"""

from __future__ import annotations

import random
import struct
import zlib

__all__ = [
    "text_like",
    "incompressible",
    "scientific_mesh",
    "payload_with_ratio",
    "measured_ratio",
]


def incompressible(n: int, seed: int = 0) -> bytes:
    """Pseudo-random bytes: zlib-1 ratio ~1.0."""
    rng = random.Random(f"incompressible:{seed}")
    return rng.randbytes(n)


def text_like(n: int, seed: int = 0) -> bytes:
    """Log/text-flavoured data: zlib-1 ratio around 3-4."""
    rng = random.Random(f"text:{seed}")
    words = [
        "iteration", "residual", "converged", "node", "block", "matrix",
        "timestep", "energy", "flux", "boundary", "error", "norm",
    ]
    parts = []
    size = 0
    while size < n:
        line = (
            f"[{rng.randrange(10000):05d}] {rng.choice(words)}="
            f"{rng.random():.6f} {rng.choice(words)}={rng.randrange(1 << 16)}\n"
        )
        encoded = line.encode("ascii")
        parts.append(encoded)
        size += len(encoded)
    return b"".join(parts)[:n]


def scientific_mesh(n: int, seed: int = 0, smoothness: float = 0.02) -> bytes:
    """Smooth float64 field data (a mesh/grid snapshot): modest ratio."""
    rng = random.Random(f"mesh:{seed}")
    count = n // 8 + 1
    values = []
    value = 1.0
    for _ in range(count):
        value += smoothness * (rng.random() - 0.5)
        values.append(value)
    return struct.pack(f"<{count}d", *values)[:n]


def payload_with_ratio(n: int, ratio: float, seed: int = 0) -> bytes:
    """A payload whose zlib-1 ratio is approximately ``ratio``.

    Built as an interleave of incompressible spans and a highly repetitive
    pattern: for a pattern with ratio ``r_p`` and an incompressible
    fraction ``f``, the combined ratio is ~``1 / (f + (1 - f) / r_p)``.
    One Newton-free correction pass against the measured ratio tightens
    the approximation.
    """
    if ratio < 1.0:
        raise ValueError("ratio must be >= 1")
    if ratio == 1.0:
        return incompressible(n, seed)

    def build(f: float) -> bytes:
        rng = random.Random(f"mix:{seed}")
        chunk = 1024
        pattern = ((b"gridblock:" + bytes(range(64))) * ((chunk // 74) + 1))[:chunk]
        parts = []
        size = 0
        while size < n:
            if rng.random() < f:
                parts.append(rng.randbytes(chunk))
            else:
                parts.append(pattern)
            size += chunk
        return b"".join(parts)[:n]

    # Pattern-only ratio (measured once on a sample).
    sample = build(0.0)[: min(n, 65536)]
    r_p = len(sample) / max(1, len(zlib.compress(sample, 1)))
    if ratio >= r_p:
        return build(0.0)
    # Bisect the incompressible fraction against the measured ratio
    # (monotone decreasing in f) on a bounded sample.
    lo, hi = 0.0, 1.0
    payload = b""
    for _ in range(9):
        f = (lo + hi) / 2
        payload = build(f)
        got = measured_ratio(payload[: min(n, 131072)])
        if abs(got - ratio) / ratio < 0.03:
            break
        if got > ratio:
            lo = f  # too compressible: add randomness
        else:
            hi = f
    return payload


def measured_ratio(payload: bytes, level: int = 1) -> float:
    """The actual zlib ratio of ``payload``."""
    if not payload:
        return 1.0
    return len(payload) / len(zlib.compress(payload, level))
