"""Canned grid topologies for tests, examples and benchmarks.

A :class:`GridScenario` assembles the full experimental apparatus of the
paper's evaluation (§6): an Internet backbone, a public relay host running
the relay + address reflector, and any number of sites of various kinds:

============== ==============================================================
kind            meaning
============== ==============================================================
``open``        publicly routed addresses, no middleboxes
``firewall``    stateful firewall blocking unsolicited inbound
``cone_nat``    predictable (endpoint-independent) NAT, private addresses
``nat_firewall`` stateful firewall *and* a predictable NAT on the same
                gateway — the common campus setup; both fault-injection
                hooks (``conntrack_flush``, ``nat_expiry``) apply
``broken_nat``  standards-noncompliant NAT that resets crossing SYNs;
                a SOCKS proxy runs on the gateway (the paper's fall-back)
``symmetric_nat`` unpredictable per-destination mappings + gateway SOCKS
``severe``      firewall that blocks even outbound, except to the gateway
                SOCKS proxy (paper §3.3's "severe firewall")
============== ==============================================================
"""

from __future__ import annotations

from typing import Generator, Optional

from .. import obs
from ..simnet.backend import PacketBackend
from ..simnet.engine import all_of
from ..simnet.nat import BrokenNAT, ConeNAT, NatBox, SymmetricNAT
from ..simnet.firewall import StatefulFirewall
from ..simnet.link import Link
from ..simnet.socks import SocksServer
from ..simnet.topology import Host, Internet, Site
from .addressing import EndpointInfo
from .node import GridNode
from .relay import ReflectorServer, RelayServer
from .utilization.spec import StackSpec

__all__ = ["GridScenario", "SITE_KINDS"]

SITE_KINDS = (
    "open",
    "firewall",
    "cone_nat",
    "nat_firewall",
    "broken_nat",
    "symmetric_nat",
    "severe",
)

RELAY_PORT = 4000
REFLECTOR_PORT = 3478
SOCKS_PORT = 1080


class GridScenario:
    """Builder for multi-site grid experiments."""

    def __init__(
        self,
        seed: int = 1,
        relay_bandwidth: float = 125_000_000.0,
        relay_delay: float = 0.002,
    ):
        self.seed = seed
        self.inet = Internet(seed=seed)
        self.sim = self.inet.sim
        #: the scenario's :class:`~repro.simnet.backend.SimBackend` — the
        #: fidelity-agnostic surface chaos invariants and tooling use for
        #: clock access and resource-leak probes
        self.backend = PacketBackend(net=self.inet.net)
        # Timestamps in metrics/traces follow the simulation clock.
        obs.use_sim_clock(self.sim)
        self._relay_bandwidth = relay_bandwidth
        self._relay_delay = relay_delay
        # The relay machine's own uplink: on a real grid this is a site
        # gateway with finite capacity — the §3.4 bottleneck.
        self.relay_host = self.inet.add_public_host(
            "relay", delay=relay_delay, bandwidth=relay_bandwidth
        )
        self.relay = RelayServer(self.relay_host, RELAY_PORT)
        self.relay.start()
        #: every relay in the scenario, keyed by id (primary is "r1");
        #: extra relays join via :meth:`add_relay`, gossip via
        #: :meth:`enable_mesh`
        self.relays: dict[str, RelayServer] = {"r1": self.relay}
        self.mesh_enabled = False
        self.mesh_config = None
        self.reflector = ReflectorServer(self.relay_host, REFLECTOR_PORT)
        self.reflector.start()
        self._registry = None
        self.sites: dict[str, Site] = {}
        self.kinds: dict[str, str] = {}
        self.proxies: dict[str, SocksServer] = {}
        self.nodes: dict[str, GridNode] = {}
        #: streaming telemetry (populated by :meth:`enable_telemetry`)
        self.telemetry: Optional[obs.TelemetryAggregator] = None
        self.telemetry_log: Optional[obs.TelemetryLog] = None
        self.telemetry_publishers: list[obs.TelemetryPublisher] = []

    # -- construction -----------------------------------------------------------
    def add_relay(
        self,
        relay_id: str,
        bandwidth: Optional[float] = None,
        delay: Optional[float] = None,
    ) -> RelayServer:
        """Add another public relay host (mesh member-to-be)."""
        if relay_id in self.relays:
            raise ValueError(f"duplicate relay id {relay_id!r}")
        host = self.inet.add_public_host(
            f"relay-{relay_id}",
            delay=delay if delay is not None else self._relay_delay,
            bandwidth=(
                bandwidth if bandwidth is not None else self._relay_bandwidth
            ),
        )
        server = RelayServer(host, RELAY_PORT, name=f"relay-{relay_id}")
        server.start()
        self.relays[relay_id] = server
        return server

    def relay_addrs(self) -> dict[str, tuple]:
        return {rid: server.addr for rid, server in sorted(self.relays.items())}

    def enable_mesh(self, topology=None, config=None) -> None:
        """Turn the relays into a gossiping mesh.

        ``topology`` maps relay id -> list of seed-peer ids; ``None``
        means full mesh.  Gossip self-extends past the seeds, so sparse
        topologies (chains) still converge end to end.
        """
        addrs = self.relay_addrs()
        self.mesh_enabled = True
        self.mesh_config = config
        for rid, server in sorted(self.relays.items()):
            if topology is None:
                peers = {p: a for p, a in addrs.items() if p != rid}
            else:
                peers = {p: addrs[p] for p in topology.get(rid, ())}
            server.enable_mesh(rid, peers, seed=self.seed, config=config)

    def add_site(self, name: str, kind: str = "open", **wan_kwargs) -> Site:
        """Add a site of the given kind (see module docstring)."""
        if kind not in SITE_KINDS:
            raise ValueError(f"unknown site kind {kind!r}")
        kwargs = dict(wan_kwargs)
        needs_proxy = False
        if kind == "firewall":
            kwargs["firewall"] = StatefulFirewall(sim=self.sim)
        elif kind == "cone_nat":
            kwargs["nat"] = ConeNAT()
        elif kind == "nat_firewall":
            kwargs["firewall"] = StatefulFirewall(sim=self.sim)
            kwargs["nat"] = ConeNAT()
        elif kind == "broken_nat":
            kwargs["nat"] = BrokenNAT()
            needs_proxy = True
        elif kind == "symmetric_nat":
            kwargs["nat"] = SymmetricNAT()
            needs_proxy = True
        elif kind == "severe":
            needs_proxy = True
        site = self.inet.add_site(name, **kwargs)
        if kind == "severe":
            firewall = StatefulFirewall(
                sim=self.sim,
                strict_outbound=True,
                allowed_destinations={site.wan_ip},
            )
            firewall.exempt_ips.add(site.wan_ip)
            site.firewall = firewall
            site.wan_iface.filters.insert(0, firewall)
        if needs_proxy:
            proxy = SocksServer(site.gateway, SOCKS_PORT)
            proxy.start()
            self.proxies[name] = proxy
        self.sites[name] = site
        self.kinds[name] = kind
        return site

    def endpoint_info(self, site_name: str, node_id: str, node: Host) -> EndpointInfo:
        kind = self.kinds[site_name]
        site = self.sites[site_name]
        proxy = self.proxies.get(site_name)
        proxy_addr = (site.gateway.ip, SOCKS_PORT) if proxy else None
        return EndpointInfo(
            node_id=node_id,
            local_ip=node.ip,
            behind_firewall=kind in ("firewall", "nat_firewall", "severe"),
            behind_nat=kind in ("cone_nat", "nat_firewall", "broken_nat", "symmetric_nat"),
            nat_predictable={
                "cone_nat": True,
                "nat_firewall": True,
                "broken_nat": True,  # looks predictable; fails behaviourally
                "symmetric_nat": False,
            }.get(kind),
            socks_proxy=proxy_addr,
            outbound_blocked=(kind == "severe"),
        )

    def _relay_addr_arg(self, relays):
        """Resolve an ``add_node``/``add_ibis`` relay pin to an address arg.

        ``None`` keeps the single-relay default; ``"all"`` registers with
        every relay (mesh client); a list of relay ids pins the node to a
        subset (how the relay-chain scenario forces trunk hops).
        """
        if relays is None:
            return (self.relay_host.ip, RELAY_PORT)
        if relays == "all":
            return self.relay_addrs()
        return {rid: self.relays[rid].addr for rid in relays}

    def add_node(
        self,
        site_name: str,
        node_id: str,
        auto_reconnect: bool = False,
        relays=None,
    ) -> GridNode:
        """Add a compute node to a site, wrapped as a GridNode."""
        site = self.sites[site_name]
        host = site.add_node(f"{site_name}-{node_id}")
        info = self.endpoint_info(site_name, node_id, host)
        kind = self.kinds[site_name]
        connector = None
        if kind == "severe":
            # Even the relay can only be reached through the gateway proxy.
            proxy_addr = (site.gateway.ip, SOCKS_PORT)

            def connector(h, relay_addr, _proxy=proxy_addr):
                from ..simnet.socks import socks_connect

                return (yield from socks_connect(h, _proxy, relay_addr))

        node = GridNode(
            host,
            info,
            self._relay_addr_arg(relays),
            reflector_addr=(self.relay_host.ip, REFLECTOR_PORT),
            connector=connector,
            auto_reconnect=auto_reconnect,
            mesh_seed=self.seed,
            mesh_config=self.mesh_config,
        )
        self.nodes[node_id] = node
        return node

    @property
    def registry(self):
        """An Ibis Name Service on the relay host (created on first use)."""
        if self._registry is None:
            from ..ipl.registry import RegistryServer

            self._registry = RegistryServer(self.relay_host, 4100)
            self._registry.start()
        return self._registry

    def add_ibis(self, site_name: str, name: str, relays=None, **ibis_kwargs):
        """Add a node running a full Ibis runtime instance."""
        from ..ipl.runtime import Ibis

        registry = self.registry  # ensure the name service is up
        site = self.sites[site_name]
        host = site.add_node(f"{site_name}-{name}")
        info = self.endpoint_info(site_name, name, host)
        kind = self.kinds[site_name]
        connector = None
        if kind == "severe":
            proxy_addr = (site.gateway.ip, SOCKS_PORT)

            def connector(h, target, _proxy=proxy_addr):
                from ..simnet.socks import socks_connect

                return (yield from socks_connect(h, _proxy, target))

        ibis = Ibis(
            host,
            name,
            info,
            relay_addr=self._relay_addr_arg(relays),
            registry_addr=registry.addr,
            reflector_addr=(self.relay_host.ip, REFLECTOR_PORT),
            connector=connector,
            mesh_seed=self.seed,
            mesh_config=self.mesh_config,
            **ibis_kwargs,
        )
        self.nodes[name] = ibis.node
        return ibis

    # -- fault-injection surface (used by repro.chaos) -----------------------
    def site_wan_link(self, name: str) -> Link:
        """The access link joining site ``name`` to the backbone."""
        return self.sites[name].wan_link

    def site_firewall(self, name: str) -> StatefulFirewall:
        fw = self.sites[name].firewall
        if fw is None:
            raise ValueError(f"site {name!r} has no firewall")
        return fw

    def site_nat(self, name: str) -> NatBox:
        nat = self.sites[name].nat
        if nat is None:
            raise ValueError(f"site {name!r} has no NAT")
        return nat

    def site_proxy(self, name: str) -> SocksServer:
        proxy = self.proxies.get(name)
        if proxy is None:
            raise ValueError(f"site {name!r} has no SOCKS proxy")
        return proxy

    # -- streaming telemetry ---------------------------------------------------
    def enable_telemetry(
        self,
        interval: float = 0.5,
        window: float = 10.0,
        sources: Optional[dict] = None,
    ) -> obs.TelemetryAggregator:
        """Give every node (and the relay plane) a telemetry publisher.

        Call *after* the nodes are added.  Each node publishes the
        instruments labelled ``node=<id>`` out of the process registry;
        one extra ``relays`` source publishes the ``relay.*``/``mesh.*``
        families.  ``sources`` adds custom publishers: a mapping of
        source name -> ``select(name, labels)`` predicate.  All streams
        feed ``self.telemetry`` (the aggregator SLOs hang off) and
        ``self.telemetry_log`` (the JSONL capture the chaos runner can
        write out); publishers tick as sim processes and are stopped —
        with a final flush — at :meth:`shutdown`.
        """
        registry = obs.get_registry()
        self.telemetry = obs.TelemetryAggregator(window=window)
        self.telemetry_log = obs.TelemetryLog()

        def add_publisher(source, select):
            pub = obs.TelemetryPublisher(
                registry,
                source,
                interval=interval,
                clock=lambda: self.sim.now,
                select=select,
            )
            pub.add_sink(self.telemetry_log)
            pub.add_sink(self.telemetry.ingest)
            self.telemetry_publishers.append(pub)
            self.sim.process(pub.run_sim(self.sim), name=f"telemetry-{source}")
            return pub

        for node_id in sorted(self.nodes):
            add_publisher(
                node_id,
                lambda name, labels, _id=node_id: labels.get("node") == _id,
            )
        add_publisher(
            "relays",
            lambda name, labels: name.startswith(("relay.", "mesh."))
            and "node" not in labels,
        )
        for source, select in sorted((sources or {}).items()):
            add_publisher(source, select)
        return self.telemetry

    # -- chaos scenario protocol ---------------------------------------------
    def shutdown(self) -> None:
        """Tear down every node and every relay (chaos teardown surface)."""
        # Publishers first (with a final flush), so the last delta is on
        # the stream before instruments stop moving.
        for pub in self.telemetry_publishers:
            pub.stop(flush=True)
        # Which relays a fault had already taken down (and which were
        # still up) — the mesh convergence post-checks need to know who
        # was killed vs. merely torn down, after everything is stopped.
        self.down_at_shutdown = sorted(
            rid for rid, r in self.relays.items() if r._listener is None
        )
        for node in self.nodes.values():
            node.stop()
        for server in self.relays.values():
            server.stop()

    def chaos_stats(self) -> dict:
        """Scenario-side stats merged into a chaos report's ``stats``."""
        stats = {
            "relay_forwarded_bytes": sum(
                r.forwarded_bytes for r in self.relays.values()
            ),
            "relay_forwarded_messages": sum(
                r.forwarded_messages for r in self.relays.values()
            ),
            "reconnects": sum(
                n.relay_client.reconnects for n in self.nodes.values()
            ),
        }
        if self.telemetry_log is not None:
            stats["telemetry_records"] = len(self.telemetry_log)
            stats["telemetry_breaches"] = len(self.telemetry.breaches)
        if self.mesh_enabled:
            stats["mesh_relays"] = len(self.relays)
            stats["mesh_deaths"] = sum(
                len(r.mesh.deaths)
                for r in self.relays.values()
                if r.mesh is not None
            )
            stats["mesh_route_changes"] = sum(
                getattr(n.relay_client, "table", None).route_changes
                for n in self.nodes.values()
                if getattr(n.relay_client, "table", None) is not None
            )
        return stats

    def mesh_deaths(self) -> list[tuple[str, str, float, float]]:
        """Every (observer, dead relay, last_heard, detected_at) record.

        The chaos convergence invariant asserts ``detected_at -
        last_heard`` stays within the configured detection bound on
        every surviving observer.
        """
        out = []
        for rid, server in sorted(self.relays.items()):
            if server.mesh is None:
                continue
            for dead_id, last_heard, detected in server.mesh.deaths:
                out.append((rid, dead_id, last_heard, detected))
        return out

    # -- execution helpers ---------------------------------------------------
    def start_all(self) -> Generator:
        """Start every node (register with the relay)."""
        procs = [self.sim.process(node.start()) for node in self.nodes.values()]
        yield all_of(self.sim, procs)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)

    def measure_stack_throughput(
        self,
        sender_id: str,
        receiver_id: str,
        spec: StackSpec,
        payload: bytes,
        total_bytes: int,
        message_size: int = 65536,
        until: float = 3600.0,
        warmup_bytes: int = 0,
    ) -> dict:
        """Bulk transfer over a negotiated driver stack; returns metrics.

        ``payload`` is cycled to supply ``total_bytes`` of application data
        in ``message_size`` writes (the "message size" axis of Figures
        9/10); the channel aggregates them into TCP_Block blocks of at most
        64 KiB (§4.1).  Throughput is measured at the receiver over
        simulated time, excluding establishment and an optional warm-up
        prefix.
        """
        from .factory import BrokeredConnectionFactory

        sim = self.sim
        sender = self.nodes[sender_id]
        receiver = self.nodes[receiver_id]
        if not isinstance(spec, StackSpec):
            raise TypeError(
                f"expected StackSpec, got {type(spec).__name__}; the string "
                f"form is wire-only — use StackSpec.parse(...) or the typed "
                f"builders"
            )
        parsed = spec
        res: dict = {}

        def run_sender() -> Generator:
            yield from sender.start()
            yield from receiver.relay_client.wait_connected(timeout=until)
            service = yield from sender.open_service_link(receiver_id)
            factory = BrokeredConnectionFactory(sender)
            channel = yield from factory.connect(
                service, receiver.info, spec=parsed,
                block_size=min(message_size, 65536),
            )
            res["method"] = None
            sent = 0
            pos = 0
            while sent < total_bytes:
                chunk = payload[pos : pos + message_size]
                if len(chunk) < message_size:
                    pos = 0
                    chunk = payload[:message_size]
                pos += message_size
                yield from channel.write(chunk)
                sent += len(chunk)
            yield from channel.flush()
            channel.close()
            res["sent"] = sent

        def run_receiver() -> Generator:
            yield from receiver.start()
            _peer, service = yield from receiver.accept_service_link()
            factory = BrokeredConnectionFactory(receiver)
            channel = yield from factory.accept(service)
            got = 0
            t0 = None
            while True:
                data = yield from channel.read(1 << 20)
                if not data:
                    break
                got += len(data)
                if t0 is None and got >= warmup_bytes:
                    t0 = sim.now
                    got_at_t0 = got
            res["received"] = got
            res["seconds"] = sim.now - t0
            res["measured_bytes"] = got - got_at_t0
            res["throughput"] = res["measured_bytes"] / res["seconds"] / 1e6

        sim.process(run_sender(), name="xfer-sender")
        sim.process(run_receiver(), name="xfer-receiver")
        sim.run(until=sim.now + until)
        if "throughput" not in res:
            raise RuntimeError(
                f"stacked transfer {sender_id}->{receiver_id} ({spec}) did not finish"
            )
        return res

    def establish_pair(
        self,
        initiator_id: str,
        responder_id: str,
        methods: Optional[list[str]] = None,
        payload: bytes = b"ping",
        until: float = 300.0,
    ) -> dict:
        """Start both nodes, negotiate a data link, echo a payload.

        Returns ``{"method", "delay", "echo", "initiator_log", ...}``.
        """
        res: dict = {}
        initiator = self.nodes[initiator_id]
        responder = self.nodes[responder_id]

        def run_initiator() -> Generator:
            yield from initiator.start()
            yield from responder.relay_client.wait_connected(timeout=until)
            service = yield from initiator.open_service_link(responder_id)
            t0 = self.sim.now
            link = yield from initiator.connect_data(
                service, responder.info, methods
            )
            res["method"] = link.method
            res["delay"] = self.sim.now - t0
            res["native_tcp"] = link.native_tcp
            res["relayed"] = link.relayed
            yield from link.send_all(payload)
            res["echo"] = yield from link.recv_exactly(len(payload))
            res["initiator_log"] = list(initiator.broker.attempt_log)
            link.close()

        def run_responder() -> Generator:
            yield from responder.start()
            _peer, service = yield from responder.accept_service_link()
            link = yield from responder.accept_data(service)
            data = yield from link.recv_exactly(len(payload))
            yield from link.send_all(data)
            res["responder_log"] = list(responder.broker.attempt_log)

        self.sim.process(run_initiator(), name="scenario-initiator")
        self.sim.process(run_responder(), name="scenario-responder")
        self.sim.run(until=self.sim.now + until)
        if "method" not in res:
            raise RuntimeError(f"pair {initiator_id}->{responder_id} never connected")
        return res
