"""Brokered data-link establishment over service links (paper §3, §5.2).

"Each data link has an associated service link, used for driver assembly
consistency on both endpoints, and connection establishment negotiation."

The broker walks the Figure 4 precedence list produced by
:func:`~repro.core.establishment.decision.feasible_methods`, attempting one
method at a time.  Every attempt is verified with a cookie exchange; a
failed attempt (timeout, reset, verification mismatch — e.g. a
standards-noncompliant NAT) falls back to the next method, exactly the
behaviour the paper reports in §6.

Wire protocol over the service link (length-prefixed frames, all tagged
with the attempt nonce so frames from a timed-out attempt cannot
desynchronize a later one):

* ``ATTEMPT``  initiator → responder: method, nonce, initiator info+params.
* ``PARAMS``   responder → initiator: responder's parameters (addresses).
* ``NAK``      responder → initiator: method not possible on this side.
* ``RESULT``   initiator → responder: attempt verdict, so both sides agree
  on whether to fall back.
"""

from __future__ import annotations

from typing import Generator, Optional

from .. import obs
from ..obs import DEFAULT_SECONDS_BUCKETS, TraceContext
from ..obs.flight import FlightRecorder
from ..simnet.engine import with_timeout
from ..simnet.packet import Addr
from ..util.framing import ByteReader, ByteWriter, FrameError
from .addressing import EndpointInfo
from .dispatch import RoutedDispatcher, data_tag
from .establishment import client_server, proxy, routed, splicing
from .establishment.base import (
    CLIENT_SERVER,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    EstablishmentError,
)
from .establishment.decision import feasible_methods
from .establishment.verify import verify_initiator
from .links import Link
from .relay import RelayClient
from .wire import WireError, recv_frame, send_frame

__all__ = ["Broker", "BrokerError", "ATTEMPT_TIMEOUT"]

M_ATTEMPT = 1
M_PARAMS = 2
M_NAK = 3
M_RESULT = 4

#: per-attempt wall-clock budget (simulated seconds)
ATTEMPT_TIMEOUT = 12.0


class BrokerError(EstablishmentError):
    """Negotiation protocol failure."""


class _NakReceived(Exception):
    """Responder declined the method."""


def _pack_addr(w: ByteWriter, addr: Addr) -> ByteWriter:
    return w.lp_str(addr[0]).u16(addr[1])


def _unpack_addr(r: ByteReader) -> Addr:
    return (r.lp_str(), r.u16())


class Broker:
    """Runs data-link negotiations for one node.

    Parameters
    ----------
    host:
        The simulated host this broker lives on.
    info:
        This node's :class:`EndpointInfo`.
    relay_client / dispatcher:
        Needed for the routed fall-back (and for receiving brokered routed
        channels).  Optional when routed fall-back is not desired.
    reflector:
        Address-reflector service used for NAT mapping discovery.
    """

    def __init__(
        self,
        host,
        info: EndpointInfo,
        relay_client: Optional[RelayClient] = None,
        dispatcher: Optional[RoutedDispatcher] = None,
        reflector: Optional[Addr] = None,
        attempt_timeout: float = ATTEMPT_TIMEOUT,
        flight: Optional[FlightRecorder] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.info = info
        self.relay_client = relay_client
        self.dispatcher = dispatcher
        self.reflector = reflector
        self.attempt_timeout = attempt_timeout
        self.flight = flight
        self._nonce_seq = 0
        #: history of (method, ok) per negotiation, observable in tests
        self.attempt_log: list[tuple[str, bool]] = []

    def _next_nonce(self) -> int:
        self._nonce_seq += 1
        base = int.from_bytes(self.info.node_id.encode()[:4].ljust(4, b"\0"), "big")
        return (base << 24) ^ self._nonce_seq

    def _record_attempt(self, method: str, outcome: str, role: str, elapsed: float):
        reg = obs.metrics()
        reg.counter(
            "establish.attempts_total", method=method, outcome=outcome, role=role
        ).inc()
        reg.histogram(
            "establish.attempt_seconds", buckets=DEFAULT_SECONDS_BUCKETS, method=method
        ).observe(elapsed)

    def _note(self, name: str, ctx: Optional[TraceContext], **attrs) -> None:
        if self.flight is not None:
            self.flight.note(name, ctx=ctx, **attrs)

    # ------------------------------------------------------------- initiator
    def initiate(
        self,
        service_link: Link,
        peer_info: EndpointInfo,
        methods: Optional[list[str]] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Negotiate and establish a data link to ``peer_info``.

        Returns the established :class:`Link`.  Raises
        :class:`EstablishmentError` when every feasible method failed.

        ``ctx`` is the causal parent of the negotiation; each attempt
        gets a child context which rides the ATTEMPT frame so the
        responder's spans join the same trace.
        """
        if methods is None:
            methods = feasible_methods(self.info, peer_info, bootstrap=False)
            if self.relay_client is None and ROUTED in methods:
                methods.remove(ROUTED)
        if ctx is None:
            ctx = obs.current() or TraceContext.new()
        node = self.info.node_id
        obs.event(
            "establish.decision",
            ctx=ctx,
            node=node,
            peer=peer_info.node_id,
            methods=",".join(methods),
        )
        failures = []
        for method in methods:
            nonce = self._next_nonce()
            attempt_ctx = ctx.child()
            self._note(
                "establish.attempt", attempt_ctx,
                method=method, peer=peer_info.node_id, role="initiator",
            )
            t0 = self.sim.now
            with obs.span(
                "establish.attempt",
                ctx=attempt_ctx,
                node=node,
                method=method,
                peer=peer_info.node_id,
                role="initiator",
            ) as sp:
                try:
                    link = yield from self._attempt_initiator(
                        service_link, peer_info, method, nonce, attempt_ctx
                    )
                except _NakReceived as nak:
                    sp.set(outcome="nak")
                    self._record_attempt(method, "nak", "initiator", self.sim.now - t0)
                    self.attempt_log.append((method, False))
                    failures.append(f"{method}: peer NAK ({nak})")
                    obs.event(
                        "establish.fallback", ctx=ctx, node=node,
                        method=method, reason=f"nak: {nak}",
                    )
                    self._note(
                        "establish.fallback", attempt_ctx,
                        method=method, reason="nak",
                    )
                    continue
                except (WireError, FrameError, EOFError, BrokerError):
                    self._record_attempt(
                        method, "error", "initiator", self.sim.now - t0
                    )
                    raise  # the service link itself broke: no point continuing
                except Exception as exc:
                    sp.set(outcome="failed")
                    self._record_attempt(
                        method, "failed", "initiator", self.sim.now - t0
                    )
                    self.attempt_log.append((method, False))
                    failures.append(f"{method}: {type(exc).__name__}: {exc}")
                    obs.event(
                        "establish.fallback",
                        ctx=ctx,
                        node=node,
                        method=method,
                        reason=f"{type(exc).__name__}: {exc}",
                    )
                    self._note(
                        "establish.fallback", attempt_ctx,
                        method=method, reason=type(exc).__name__,
                    )
                    yield from send_frame(
                        service_link, _result(nonce, False, str(exc))
                    )
                    continue
                except BaseException as exc:
                    # Process death (kill/interrupt) mid-attempt still exits
                    # the span, so close the books: the attempts counter must
                    # agree with the recorded spans (chaos obs invariant).
                    # GeneratorExit is the one exception that must NOT record
                    # — it arrives when a GC'd process generator is closed,
                    # at a time no seed controls.
                    if isinstance(exc, GeneratorExit):
                        raise
                    sp.set(outcome="aborted")
                    self._record_attempt(
                        method, "aborted", "initiator", self.sim.now - t0
                    )
                    raise
                sp.set(outcome="ok")
                self._record_attempt(method, "ok", "initiator", self.sim.now - t0)
            self._note(
                "establish.ok", attempt_ctx, method=method, peer=peer_info.node_id
            )
            self.attempt_log.append((method, True))
            yield from send_frame(service_link, _result(nonce, True, ""))
            return link
        raise EstablishmentError(
            f"all methods failed toward {peer_info.node_id}: {failures}"
        )

    def _attempt_initiator(
        self,
        service_link: Link,
        peer_info: EndpointInfo,
        method: str,
        nonce: int,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        params, cleanup, state = yield from self._initiator_params(method)
        try:
            attempt = (
                ByteWriter()
                .u8(M_ATTEMPT)
                .u64(nonce)
                .f64(self.sim.now)  # lets the responder estimate one-way delay
                .lp_str(method)
                .lp_bytes(self.info.encode())
                .lp_bytes(params)
                # Trailing causal context: the responder parents its
                # attempt span on the initiator's, joining the traces.
                .lp_bytes(ctx.encode() if ctx is not None else b"")
                .getvalue()
            )
            yield from send_frame(service_link, attempt)
            # The responder's reply is also bounded: a peer disappearing
            # mid-negotiation (crashed node, dead relay session) must not
            # hang the initiator forever.  A timeout here may leave a dead
            # waiter on the service link (the interrupted read), so it is
            # reported as a BrokerError: negotiation-fatal, the caller must
            # abandon this service link and renegotiate on a fresh one.
            try:
                peer_params = yield from with_timeout(
                    self.sim,
                    self._await_params(service_link, nonce),
                    self.attempt_timeout,
                )
            except TimeoutError:
                raise BrokerError(
                    f"{method}: no PARAMS/NAK within {self.attempt_timeout}s "
                    f"(responder vanished mid-negotiation?)"
                ) from None
            return (
                yield from with_timeout(
                    self.sim,
                    self._execute_initiator(
                        method, nonce, peer_info, peer_params, state, ctx
                    ),
                    self.attempt_timeout,
                )
            )
        finally:
            if cleanup is not None:
                cleanup()

    def _await_params(self, service_link: Link, nonce: int) -> Generator:
        """Read frames until this attempt's PARAMS or NAK (skipping stale)."""
        while True:
            reply = yield from recv_frame(service_link)
            r = ByteReader(reply)
            kind = r.u8()
            frame_nonce = r.u64()
            if frame_nonce != nonce:
                continue  # leftover of a timed-out attempt
            if kind == M_NAK:
                raise _NakReceived(r.lp_str())
            if kind != M_PARAMS:
                raise BrokerError(f"expected PARAMS, got frame type {kind}")
            return r.lp_bytes()

    def _initiator_params(self, method: str) -> Generator:
        """Method-specific initiator parameters.

        Returns ``(params_bytes, cleanup_or_None, state)``.
        """
        if method == SPLICING:
            lport, ext_addr, probe = yield from splicing.prepare_endpoint(
                self.host, self.info.behind_nat, self.reflector
            )

            def cleanup():
                if probe is not None:
                    probe.close()  # idempotent; pins the NAT mapping until now
                self.host.tcp.release_port(lport)

            return (
                _pack_addr(ByteWriter(), ext_addr).getvalue(),
                cleanup,
                (lport, probe),
            )
        return b"", None, None

    def _execute_initiator(
        self,
        method: str,
        nonce: int,
        peer_info: EndpointInfo,
        peer_params: bytes,
        state,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        r = ByteReader(peer_params)
        if method == CLIENT_SERVER:
            addr = _unpack_addr(r)
            if self.info.socks_proxy is not None:
                # Severe outbound firewall: even client/server goes through
                # the local proxy when one is configured.
                return (
                    yield from proxy.connect_via_proxy_and_verify(
                        self.host, self.info.socks_proxy, addr, nonce, ctx=ctx
                    )
                )
            return (
                yield from client_server.connect_and_verify(
                    self.host, addr, nonce, config=splicing.SPLICE_CONFIG, ctx=ctx
                )
            )
        if method == SPLICING:
            peer_addr = _unpack_addr(r)
            lport, probe = state
            return (
                yield from splicing.splice_and_verify(
                    self.host, peer_addr, lport, nonce, initiator=True, probe=probe,
                    ctx=ctx,
                )
            )
        if method == SOCKS_PROXY:
            addr = _unpack_addr(r)
            if self.info.socks_proxy is not None:
                return (
                    yield from proxy.connect_via_proxy_and_verify(
                        self.host, self.info.socks_proxy, addr, nonce, ctx=ctx
                    )
                )
            return (
                yield from proxy.connect_direct_and_verify(
                    self.host, addr, nonce, ctx=ctx
                )
            )
        if method == ROUTED:
            if self.relay_client is None:
                raise BrokerError("routed method needs a relay client")
            link = yield from self.relay_client.open_link(
                peer_info.node_id, payload=data_tag(nonce), ctx=ctx
            )
            yield from verify_initiator(link, nonce)
            return link
        raise BrokerError(f"unknown method {method}")

    # ------------------------------------------------------------- responder
    def respond(self, service_link: Link) -> Generator:
        """Serve one data-link negotiation on ``service_link``.

        Returns the established :class:`Link`.
        """
        while True:
            frame = yield from recv_frame(service_link)
            r = ByteReader(frame)
            kind = r.u8()
            nonce = r.u64()
            if kind == M_RESULT:
                continue  # stale verdict of an attempt we already abandoned
            if kind != M_ATTEMPT:
                raise BrokerError(f"expected ATTEMPT, got frame type {kind}")
            sent_at = r.f64()
            owd = max(0.0, self.sim.now - sent_at)
            method = r.lp_str()
            peer_info = EndpointInfo.decode(r.lp_bytes())
            peer_params = r.lp_bytes()
            ctx = None
            if r.remaining:
                blob = r.lp_bytes()
                if blob:
                    ctx = TraceContext.decode(blob)
            link = yield from self._attempt_responder(
                service_link, method, nonce, peer_info, peer_params, owd, ctx
            )
            if link is not None:
                return link

    def _attempt_responder(
        self,
        service_link: Link,
        method: str,
        nonce: int,
        peer_info: EndpointInfo,
        peer_params: bytes,
        owd: float,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """One responder-side attempt; returns the link or None (fall back)."""
        t0 = self.sim.now
        # Parent this side's span on the initiator's attempt span (which
        # arrived in the ATTEMPT frame), so both halves share one trace.
        rctx = ctx.child() if ctx is not None else None
        self._note(
            "establish.attempt", rctx,
            method=method, peer=peer_info.node_id, role="responder",
        )
        with obs.span(
            "establish.attempt",
            ctx=rctx,
            node=self.info.node_id,
            method=method,
            peer=peer_info.node_id,
            role="responder",
        ) as sp:
            try:
                params, pending = yield from self._responder_params(
                    method, nonce, peer_info, peer_params, owd, ctx=rctx
                )
            except Exception as exc:
                sp.set(outcome="nak")
                self._record_attempt(method, "nak", "responder", self.sim.now - t0)
                nak = (
                    ByteWriter()
                    .u8(M_NAK)
                    .u64(nonce)
                    .lp_str(f"{type(exc).__name__}: {exc}")
                    .getvalue()
                )
                yield from send_frame(service_link, nak)
                return None
            # Run the local half of the attempt concurrently with sending
            # PARAMS and reading the initiator's RESULT.  The guard parks
            # failures so an early error (e.g. our spliced SYN refused)
            # waits for the verdict instead of crashing the negotiation.
            # Spawning *before* touching the service link matters: the
            # pending generator owns method resources (a reflector probe,
            # a listener), and only running it to completion releases them
            # — so if the service link dies mid-negotiation we interrupt
            # the attempt rather than dropping it un-started.
            attempt_proc = self.sim.process(
                _guarded(pending), name=f"broker-attempt-{method}"
            )
            try:
                yield from send_frame(
                    service_link,
                    ByteWriter().u8(M_PARAMS).u64(nonce).lp_bytes(params).getvalue(),
                )
                ok = yield from self._await_result(service_link, nonce)
            except BaseException as exc:
                if attempt_proc.is_alive:
                    attempt_proc.interrupt("negotiation aborted")
                # The service link died mid-negotiation (a partition or
                # relay kill, not a method failure).  The span exits
                # regardless, so record the attempt too: the chaos obs
                # invariant holds counters and spans to exact agreement.
                # GeneratorExit (a GC'd process generator being closed)
                # must re-raise without recording — its timing is not
                # seed-controlled.
                if isinstance(exc, GeneratorExit):
                    raise
                sp.set(outcome="aborted")
                self._record_attempt(
                    method, "aborted", "responder", self.sim.now - t0
                )
                raise
            if ok:
                status, value = yield attempt_proc
                if status != "ok":
                    self._record_attempt(
                        method, "error", "responder", self.sim.now - t0
                    )
                    # Initiator verified success but our half failed: the link
                    # is unusable, report it upward.
                    raise BrokerError(
                        f"{method}: initiator succeeded but responder half "
                        f"failed: {value}"
                    )
                sp.set(outcome="ok")
                self._record_attempt(method, "ok", "responder", self.sim.now - t0)
                self._note(
                    "establish.ok", rctx, method=method, peer=peer_info.node_id
                )
                self.attempt_log.append((method, True))
                if rctx is not None:
                    try:
                        # expose the causal identity on the link so upper
                        # layers (stack assembly, sessions) can join the
                        # initiator's trace
                        value.ctx = rctx
                    except AttributeError:
                        pass
                return value
            # Initiator reported failure: cancel our half if still running.
            if attempt_proc.is_alive:
                attempt_proc.interrupt("peer reported failure")
            status, value = yield attempt_proc
            if status == "ok" and value is not None and hasattr(value, "abort"):
                value.abort()
            sp.set(outcome="failed")
            self._record_attempt(method, "failed", "responder", self.sim.now - t0)
            self.attempt_log.append((method, False))
            return None

    def _await_result(self, service_link: Link, nonce: int) -> Generator:
        while True:
            frame = yield from recv_frame(service_link)
            r = ByteReader(frame)
            kind = r.u8()
            frame_nonce = r.u64()
            if kind != M_RESULT or frame_nonce != nonce:
                continue
            return bool(r.u8())

    def _responder_params(
        self,
        method: str,
        nonce: int,
        peer_info: EndpointInfo,
        peer_params: bytes,
        owd: float = 0.0,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Prepare responder-side parameters and the pending local half.

        Returns ``(params_bytes, pending_generator)``.
        """
        if method == CLIENT_SERVER:
            listener = client_server.open_listener(self.host)
            params = _pack_addr(ByteWriter(), listener.addr).getvalue()

            def pending():
                try:
                    return (
                        yield from client_server.accept_and_verify(
                            listener, nonce, ctx=ctx
                        )
                    )
                finally:
                    listener.close()

            return params, pending()

        if method == SPLICING:
            r = ByteReader(peer_params)
            peer_addr = _unpack_addr(r)
            lport, ext_addr, probe = yield from splicing.prepare_endpoint(
                self.host, self.info.behind_nat, self.reflector
            )
            params = _pack_addr(ByteWriter(), ext_addr).getvalue()

            def pending():
                try:
                    # Start when the initiator (one service-link delay away)
                    # is expected to start, so the SYNs cross.
                    yield self.sim.timeout(owd)
                    return (
                        yield from splicing.splice_and_verify(
                            self.host,
                            peer_addr,
                            lport,
                            nonce,
                            initiator=False,
                            probe=probe,
                            ctx=ctx,
                        )
                    )
                finally:
                    if probe is not None:
                        probe.close()  # idempotent; also closed post-splice
                    self.host.tcp.release_port(lport)

            return params, pending()

        if method == SOCKS_PROXY:
            if self.info.socks_proxy is None and self.info.behind_nat:
                raise BrokerError("no SOCKS proxy available on responder")
            if self.info.accepts_inbound or self.info.socks_proxy is None:
                # Initiator-side-proxy shape: we simply listen; the
                # initiator reaches us through its own proxy.
                listener = client_server.open_listener(self.host)
                params = _pack_addr(ByteWriter(), listener.addr).getvalue()

                def pending():
                    try:
                        link = yield from client_server.accept_and_verify(
                            listener, nonce, ctx=ctx
                        )
                        link.method = SOCKS_PROXY
                        link.relayed = True
                        return link
                    finally:
                        listener.close()

                return params, pending()
            control, bound = yield from proxy.bind_via_proxy(
                self.host, self.info.socks_proxy
            )
            params = _pack_addr(ByteWriter(), bound).getvalue()

            def pending():
                try:
                    return (
                        yield from proxy.await_bound_and_verify(
                            control, nonce, ctx=ctx
                        )
                    )
                except BaseException:
                    control.abort()
                    raise

            return params, pending()

        if method == ROUTED:
            if self.dispatcher is None:
                raise BrokerError("routed method needs a dispatcher")

            def pending():
                link = yield from self.dispatcher.await_data(nonce)
                yield from routed.accept_routed_and_verify(link, nonce, ctx=ctx)
                return link

            return b"", pending()

        raise BrokerError(f"unknown method {method}")


def _guarded(gen) -> Generator:
    """Wrap an attempt so failures become values instead of crashes."""
    try:
        value = yield from gen
        return ("ok", value)
    except BaseException as exc:
        return ("err", exc)


def _result(nonce: int, ok: bool, reason: str) -> bytes:
    return (
        ByteWriter()
        .u8(M_RESULT)
        .u64(nonce)
        .u8(1 if ok else 0)
        .lp_str(reason)
        .getvalue()
    )
