"""Adaptive on-line compression (paper §4.3 and §8 future work).

"Some advanced mechanisms of on-the-fly compression, like AdOC, are able
to dynamically adapt the compression level according to their
environment" and the paper's future work names "the dynamic enabling or
disabling of compression".

Strategy (AdOC-flavoured ε-greedy): measure the effective per-block
throughput of each mode — raw vs. zlib-1 — from the block's own wall-clock
(simulated) send time.  Crucially, only *saturated* samples count: a block
absorbed instantly by an empty send buffer says nothing about which mode is
better (the link is underutilized either way), and treating it as an
"infinitely fast" sample would poison the estimate.  A sample is saturated
when its effective rate falls below a high cutoff, i.e. the block actually
waited on the CPU or the network.  Per-mode statistics decay exponentially
so the driver tracks a changing environment, and the minority mode is
re-probed periodically.

The wire format is identical to :class:`CompressionDriver` (flag byte per
block), so the receive side needs no mode agreement.
"""

from __future__ import annotations

import zlib
from typing import Generator, Optional

from ... import obs
from ...simnet.cpu import charge
from .base import DriverError, FilterDriver
from .compression import FLAG_DEFLATE, FLAG_RAW

__all__ = ["AdaptiveCompressionDriver"]


class AdaptiveCompressionDriver(FilterDriver):
    """Per-block raw/compressed decision from measured throughput."""

    name = "adaptive"

    #: a sample is "saturated" (informative) when its effective rate is
    #: below this — faster means the block never waited on anything
    SATURATION_RATE = 2e8
    #: decay applied to accumulated per-mode statistics on every sample
    DECAY = 0.97
    #: saturated samples needed before a mode's rate estimate is trusted
    MIN_SAMPLES = 3

    def __init__(
        self,
        child,
        host,
        level: int = 1,
        probe_every: int = 16,
    ):
        super().__init__(child)
        if host is None:
            raise DriverError("adaptive compression needs a host (for its clock)")
        self.host = host
        self.sim = host.sim
        self.level = level
        self.probe_every = probe_every
        # mode -> [saturated bytes, saturated seconds, saturated samples]
        self._stats: dict[int, list] = {
            FLAG_RAW: [0.0, 0.0, 0],
            FLAG_DEFLATE: [0.0, 0.0, 0],
        }
        self._counter = 0
        self.mode_counts = {FLAG_RAW: 0, FLAG_DEFLATE: 0}
        #: tuner override: None (learn), "raw" or "compress" (pinned)
        self.force_mode: Optional[str] = None

    def _rate_of(self, mode: int) -> Optional[float]:
        nbytes, seconds, count = self._stats[mode]
        if count < self.MIN_SAMPLES or seconds <= 0:
            return None
        return nbytes / seconds

    def _choose_mode(self) -> int:
        self._counter += 1
        if self.force_mode == "raw":
            return FLAG_RAW
        if self.force_mode == "compress":
            return FLAG_DEFLATE
        raw, comp = self._rate_of(FLAG_RAW), self._rate_of(FLAG_DEFLATE)
        if raw is None and comp is None:
            # No congestion signal at all: alternate cheaply.
            return FLAG_RAW if self._counter % 2 else FLAG_DEFLATE
        if raw is None:
            # Raw never congests: nothing to gain from compressing — stay
            # raw, re-probing compression occasionally.
            return FLAG_DEFLATE if self._counter % self.probe_every == 0 else FLAG_RAW
        if comp is None:
            # Raw congests and compression is unmeasured: favour learning
            # about compression quickly.
            return FLAG_RAW if self._counter % 4 == 0 else FLAG_DEFLATE
        best = FLAG_DEFLATE if comp > raw else FLAG_RAW
        if self._counter % self.probe_every == 0:
            return FLAG_DEFLATE if best == FLAG_RAW else FLAG_RAW  # probe
        return best

    def _update(self, mode: int, nbytes: int, seconds: float) -> None:
        if nbytes <= 0:
            return
        if seconds <= 0 or nbytes / seconds > self.SATURATION_RATE:
            return  # unsaturated: carries no signal about the bottleneck
        stats = self._stats[mode]
        stats[0] = stats[0] * self.DECAY + nbytes
        stats[1] = stats[1] * self.DECAY + seconds
        stats[2] += 1

    @property
    def current_preference(self) -> str:
        raw, comp = self._rate_of(FLAG_RAW), self._rate_of(FLAG_DEFLATE)
        if raw is None and comp is None:
            return "undecided"
        if raw is None:
            return "raw"  # raw never congests: no reason to compress
        if comp is None:
            return "compress"  # raw congests; compression unmeasured so far
        return "compress" if comp > raw else "raw"

    def send_block(self, block: bytes) -> Generator:
        mode = self._choose_mode()
        t0 = self.sim.now
        if mode == FLAG_DEFLATE:
            yield charge(self.host, "compress", len(block))
            deflated = zlib.compress(block, self.level)
            if len(deflated) < len(block):
                payload = bytes([FLAG_DEFLATE]) + deflated
            else:
                payload = bytes([FLAG_RAW]) + block
        else:
            payload = bytes([FLAG_RAW]) + block
        yield from self.child.send_block(payload)
        self.mode_counts[mode] += 1
        self._update(mode, len(block), self.sim.now - t0)
        obs.metrics().counter(
            "compress.mode_total",
            driver=self.name,
            mode="deflate" if mode == FLAG_DEFLATE else "raw",
            backend="sim",
        ).inc()

    def recv_block(self) -> Generator:
        payload = yield from self.child.recv_block()
        if not payload:
            raise DriverError("empty adaptive block")
        flag, body = payload[0], payload[1:]
        if flag == FLAG_DEFLATE:
            block = zlib.decompress(body)
            yield charge(self.host, "decompress", len(block))
        elif flag == FLAG_RAW:
            block = body
        else:
            raise DriverError(f"bad adaptive flag {flag}")
        return block
