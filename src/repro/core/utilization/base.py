"""Driver model for link utilization (paper §4, §5.1, Figure 6).

"The communication paths are built using one or more drivers organized as
a driver tree.  Each driver provides one single added value, either a
filtering capability ... or a networking capability ...  NetIbis drivers
have uniform interfaces which makes them interchangeable, allowing to
compose complex communication stacks."

A driver moves *blocks* (byte strings).  Networking drivers sit at the
bottom and own one or more established links; filtering drivers wrap a
sub-driver and transform blocks in flight.  Composition is free-form:
``compression`` over ``parallel streams`` over any establishment method —
the paper's headline capability.
"""

from __future__ import annotations

from typing import Generator

__all__ = ["Driver", "FilterDriver", "DriverError"]


class DriverError(Exception):
    """Driver protocol failure."""


class Driver:
    """Uniform block-oriented driver interface."""

    #: short name used in stack specifications
    name = "driver"

    def send_block(self, block: bytes) -> Generator:
        """Push one block down the stack."""
        raise NotImplementedError

    def recv_block(self) -> Generator:
        """Pull the next block up the stack; raises EOFError at stream end."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the underlying links."""
        raise NotImplementedError

    def abort(self) -> None:
        self.close()


class FilterDriver(Driver):
    """A filtering driver wrapping a single sub-driver."""

    def __init__(self, child: Driver):
        self.child = child

    def close(self) -> None:
        self.child.close()

    def abort(self) -> None:
        self.child.abort()
