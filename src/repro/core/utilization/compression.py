"""zlib compression filtering driver (paper §4.3).

"In our measurements with the zlib compression library only the first
level of compression turned out to be useful: higher levels consumed much
more CPU time ... for only a limited gain."

Each block is compressed independently (dictionary reset per block) —
required for composability with striping and for receiver-side random
restart, and real compression is performed (actual zlib, actual ratios on
the actual payload).  CPU time is charged to the host's
:class:`~repro.simnet.cpu.CpuModel` at its configured ``compress`` /
``decompress`` rates, which is what produces the paper's crossover:
compression helps below ~6 MB/s of link capacity and hurts above it.

Wire format: ``u8 flag || payload`` where flag 1 means deflated (a block
that zlib cannot shrink is sent raw, like most real framing protocols).
"""

from __future__ import annotations

import zlib
from typing import Generator

from ... import obs
from ...simnet.cpu import charge
from .base import DriverError, FilterDriver

__all__ = ["CompressionDriver"]

FLAG_RAW = 0
FLAG_DEFLATE = 1


class CompressionDriver(FilterDriver):
    """Per-block zlib filter; composable above any sub-driver."""

    name = "compress"

    def __init__(self, child, host=None, level: int = 1):
        super().__init__(child)
        if not 1 <= level <= 9:
            raise DriverError(f"zlib level out of range: {level}")
        self.host = host
        self.level = level
        self.bytes_in = 0
        self.bytes_out = 0

    @property
    def ratio(self) -> float:
        """Achieved compression ratio so far (input/output)."""
        if self.bytes_out == 0:
            return 1.0
        return self.bytes_in / self.bytes_out

    def send_block(self, block: bytes) -> Generator:
        if self.host is not None:
            yield charge(self.host, "compress", len(block))
        deflated = zlib.compress(block, self.level)
        if len(deflated) < len(block):
            payload = bytes([FLAG_DEFLATE]) + deflated
        else:
            payload = bytes([FLAG_RAW]) + block
        self.bytes_in += len(block)
        self.bytes_out += len(payload)
        reg = obs.metrics()
        reg.counter(
            "compress.bytes_total", driver=self.name, stage="in", backend="sim"
        ).inc(len(block))
        reg.counter(
            "compress.bytes_total", driver=self.name, stage="out", backend="sim"
        ).inc(len(payload))
        reg.gauge("compress.ratio", driver=self.name, backend="sim").set(self.ratio)
        yield from self.child.send_block(payload)

    def recv_block(self) -> Generator:
        payload = yield from self.child.recv_block()
        if not payload:
            raise DriverError("empty compressed block")
        flag, body = payload[0], payload[1:]
        if flag == FLAG_DEFLATE:
            block = zlib.decompress(body)
        elif flag == FLAG_RAW:
            block = body
        else:
            raise DriverError(f"bad compression flag {flag}")
        if self.host is not None:
            yield charge(self.host, "decompress", len(block))
        return block
