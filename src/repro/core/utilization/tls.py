"""TLS filtering driver (paper §4.4, §5.2).

"SSL/TLS security may be added over a link built with any of the
establishment methods" — the paper left the encryption driver as planned
work; here it is implemented over :mod:`repro.security`: the sans-IO
handshake runs over the sub-driver's blocks, then every block is sealed by
the record layer (ChaCha20 + HMAC, sequence-numbered).

Like compression, encryption CPU time is charged to the host model so
security's throughput cost is measurable (benchmark S1).
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from ...security.certs import Certificate
from ...security.handshake import ClientHandshake, Identity, ServerHandshake
from ...security.record import RecordError, SecureSession
from ...simnet.cpu import charge
from .base import DriverError, FilterDriver

__all__ = ["TlsDriver"]


class TlsDriver(FilterDriver):
    """Encrypt-and-authenticate filter; call ``handshake_*`` after wiring.

    One side runs :meth:`handshake_client`, the other
    :meth:`handshake_server`; who is which is decided by the brokered
    roles (the data-link initiator acts as TLS client).
    """

    name = "tls"

    def __init__(self, child, host=None):
        super().__init__(child)
        self.host = host
        self.session: Optional[SecureSession] = None

    @property
    def peer_subject(self) -> Optional[str]:
        """Authenticated peer identity (after the handshake)."""
        return self.session.peer_subject if self.session else None

    def handshake_client(
        self,
        trust_anchors: Iterable[Certificate],
        identity: Optional[Identity] = None,
        expected_server: Optional[str] = None,
        now: float = 0.0,
        seed: Optional[bytes] = None,
    ) -> Generator:
        hs = ClientHandshake(
            trust_anchors=trust_anchors,
            identity=identity,
            expected_server=expected_server,
            now=now,
            seed=seed,
        )
        if self.host is not None and self.host.cpu is not None:
            yield self.host.cpu.op("dh")  # ephemeral keypair
        yield from self.child.send_block(hs.hello())
        server_hello = yield from self.child.recv_block()
        if self.host is not None and self.host.cpu is not None:
            yield self.host.cpu.op("verify")
            yield self.host.cpu.op("dh")
        finished, session = hs.finish(server_hello)
        yield from self.child.send_block(finished)
        self.session = session
        return session

    def handshake_server(
        self,
        identity: Identity,
        trust_anchors: Optional[Iterable[Certificate]] = None,
        require_client_auth: bool = False,
        now: float = 0.0,
        seed: Optional[bytes] = None,
    ) -> Generator:
        hs = ServerHandshake(
            identity=identity,
            trust_anchors=trust_anchors,
            require_client_auth=require_client_auth,
            now=now,
            seed=seed,
        )
        client_hello = yield from self.child.recv_block()
        if self.host is not None and self.host.cpu is not None:
            yield self.host.cpu.op("sign")
            yield self.host.cpu.op("dh")
        yield from self.child.send_block(hs.respond(client_hello))
        finished = yield from self.child.recv_block()
        self.session = hs.finish(finished)
        return self.session

    # -- data path -----------------------------------------------------------
    def send_block(self, block: bytes) -> Generator:
        if self.session is None:
            raise DriverError("TLS handshake not completed")
        if self.host is not None:
            yield charge(self.host, "encrypt", len(block))
        yield from self.child.send_block(self.session.seal(block))

    def recv_block(self) -> Generator:
        if self.session is None:
            raise DriverError("TLS handshake not completed")
        record = yield from self.child.recv_block()
        try:
            block = self.session.open(record)
        except RecordError as exc:
            raise DriverError(f"record authentication failed: {exc}") from exc
        if self.host is not None:
            yield charge(self.host, "decrypt", len(block))
        return block
