"""``TCP_Block``: the basic networking driver (paper §4.1, §5.2).

Blocks are length-prefixed frames over a single established link.  The
paper's point is that *user-space aggregation with explicit flush* — not
per-call ``send`` of small packets, and not Nagle — is what achieves both
high bandwidth and low latency; the aggregation itself lives in the
stream adapter (:class:`~repro.core.utilization.stream.BlockChannel`),
which feeds this driver whole blocks.
"""

from __future__ import annotations

from typing import Generator

from ... import obs
from ..links import Link
from ..wire import recv_frame, send_frame
from .base import Driver

__all__ = ["TcpBlockDriver"]


class TcpBlockDriver(Driver):
    """Block transport over one link (any establishment method)."""

    name = "tcp_block"
    links_required = 1

    def __init__(self, link: Link):
        self.link = link
        self.blocks_sent = 0
        self.blocks_received = 0

    def send_block(self, block: bytes) -> Generator:
        self.blocks_sent += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="tx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="tx", backend="sim"
        ).observe(len(block))
        yield from send_frame(self.link, block)

    def recv_block(self) -> Generator:
        try:
            block = yield from recv_frame(self.link)
        except EOFError:
            raise
        self.blocks_received += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="rx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="rx", backend="sim"
        ).observe(len(block))
        return block

    def close(self) -> None:
        self.link.close()

    def abort(self) -> None:
        self.link.abort()
