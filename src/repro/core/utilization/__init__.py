"""Link utilization drivers (paper §4): composable block transforms.

``TCP_Block`` aggregation, parallel TCP streams, zlib compression (static
and adaptive) and TLS — assembled into stacks by
:mod:`~repro.core.utilization.stack` and fronted to applications by
:class:`~repro.core.utilization.stream.BlockChannel`.
"""

from .adaptive import AdaptiveCompressionDriver
from .base import Driver, DriverError, FilterDriver
from .compression import CompressionDriver
from .parallel import (
    DEFAULT_FRAGMENT,
    ParallelStreamsDriver,
    RebalancingParallelDriver,
)
from .reliable import ReliableUdpDriver
from .spec import FILTERING, NETWORKING, SESSION, LayerSpec, StackSpec, StackSpecError
from .stack import (
    build_stack,
    find_driver,
    iter_drivers,
    links_required,
    parse_stack,
)
from .stream import DEFAULT_BLOCK, BlockChannel
from .tcp_block import TcpBlockDriver
from .tls import TlsDriver

__all__ = [
    "Driver",
    "FilterDriver",
    "DriverError",
    "TcpBlockDriver",
    "ParallelStreamsDriver",
    "RebalancingParallelDriver",
    "DEFAULT_FRAGMENT",
    "ReliableUdpDriver",
    "CompressionDriver",
    "AdaptiveCompressionDriver",
    "TlsDriver",
    "BlockChannel",
    "DEFAULT_BLOCK",
    "parse_stack",
    "links_required",
    "build_stack",
    "iter_drivers",
    "find_driver",
    "StackSpec",
    "LayerSpec",
    "StackSpecError",
    "NETWORKING",
    "FILTERING",
    "SESSION",
]
