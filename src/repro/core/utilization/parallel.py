"""Parallel TCP streams (paper §4.2).

"On such high latency WANs, using multiple TCP streams — or parallel
streams — for a single logical connection can improve the achievable
bandwidth by increasing the window size beyond the operating-system
limits. ... sender and receiver have to fragment and multiplex the data
over the underlying, individual TCP streams."

Striping scheme: block *n*'s length header travels on stream ``n % N``;
its fragments of at most ``fragment`` bytes follow round-robin starting on
that same stream.  Because every stream is an ordered byte pipe and the
assignment is a pure function of the block counter, the receiver needs no
per-fragment metadata at all — reassembly is deterministic.

Each stream has its own writer process behind a bounded queue, so a
momentarily backlogged stream does not head-of-line-block the others —
all N congestion windows stay filled concurrently, which is the whole
point of striping.  Backpressure still propagates: ``send_block`` waits
when the *target* stream's queue is full.

Fragmentation work (the extra copy per byte that striping costs) is
charged to the host CPU model as ``serialize`` work when one is attached.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional, Sequence

from ... import obs
from ...simnet.cpu import charge
from ...simnet.engine import Event
from ..links import Link
from .base import Driver, DriverError

__all__ = ["ParallelStreamsDriver", "DEFAULT_FRAGMENT"]

DEFAULT_FRAGMENT = 16384

_CLOSE = object()


class _StreamWriter:
    """Bounded outbound queue + writer process for one stream."""

    def __init__(self, sim, link: Link, limit_bytes: int):
        self.sim = sim
        self.link = link
        self.limit = limit_bytes
        self._queue: list = []
        self._queued_bytes = 0
        self._space_waiters: list[Event] = []
        self._data_waiter: Optional[Event] = None
        self.error: Optional[BaseException] = None
        self._proc = sim.process(self._run(), name="stripe-writer")

    def put(self, data: bytes) -> Generator:
        """Enqueue ``data``; blocks while the queue is over its limit."""
        while self._queued_bytes >= self.limit and self.error is None:
            ev = self.sim.event()
            self._space_waiters.append(ev)
            yield ev
        if self.error is not None:
            raise self.error
        self._queue.append(data)
        self._queued_bytes += len(data)
        self._kick()

    def close(self) -> None:
        self._queue.append(_CLOSE)
        self._kick()

    def _kick(self) -> None:
        if self._data_waiter is not None:
            waiter, self._data_waiter = self._data_waiter, None
            waiter.succeed()

    def _run(self) -> Generator:
        try:
            while True:
                while not self._queue:
                    self._data_waiter = self.sim.event()
                    yield self._data_waiter
                item = self._queue.pop(0)
                if item is _CLOSE:
                    self.link.close()
                    return
                self._queued_bytes -= len(item)
                for ev in self._space_waiters:
                    ev.succeed()
                self._space_waiters.clear()
                yield from self.link.send_all(item)
        except BaseException as exc:
            self.error = exc
            for ev in self._space_waiters:
                ev.succeed()
            self._space_waiters.clear()


class _StreamReader:
    """Eager reader process for one stream.

    Drains the socket as data arrives — keeping the TCP advertised window
    open — into a bounded local reassembly buffer the driver consumes from
    (the user-space reader thread a real striping implementation has).
    """

    def __init__(self, sim, link: Link, limit_bytes: int):
        self.sim = sim
        self.link = link
        self.limit = limit_bytes
        self._buf = bytearray()
        self._eof = False
        self.error: Optional[BaseException] = None
        self._consumer: Optional[tuple[Event, int]] = None
        self._drain_waiter: Optional[Event] = None
        self._proc = sim.process(self._run(), name="stripe-reader")

    def take(self, n: int) -> Generator:
        """Exactly ``n`` bytes from this stream (in arrival order)."""
        while len(self._buf) < n:
            if self.error is not None:
                raise self.error
            if self._eof:
                raise EOFError(
                    f"stream ended with {n - len(self._buf)} bytes missing"
                )
            ev = self.sim.event()
            self._consumer = (ev, n)
            yield ev
        out = bytes(self._buf[:n])
        del self._buf[:n]
        if self._drain_waiter is not None and len(self._buf) < self.limit:
            waiter, self._drain_waiter = self._drain_waiter, None
            waiter.succeed()
        return out

    def _wake_consumer(self) -> None:
        if self._consumer is not None:
            ev, n = self._consumer
            if len(self._buf) >= n or self._eof or self.error is not None:
                self._consumer = None
                ev.succeed()

    def _run(self) -> Generator:
        try:
            while True:
                if len(self._buf) >= self.limit:
                    self._drain_waiter = self.sim.event()
                    yield self._drain_waiter
                    continue
                data = yield from self.link.recv(65536)
                if not data:
                    self._eof = True
                    self._wake_consumer()
                    return
                self._buf.extend(data)
                self._wake_consumer()
        except BaseException as exc:
            self.error = exc
            self._wake_consumer()


class ParallelStreamsDriver(Driver):
    """Stripe blocks over N established links."""

    name = "parallel"

    def __init__(
        self,
        links: Sequence[Link],
        host=None,
        fragment: int = DEFAULT_FRAGMENT,
        queue_limit: int = 131072,
    ):
        if not links:
            raise DriverError("parallel driver needs at least one link")
        if fragment <= 0:
            raise DriverError("fragment size must be positive")
        self.links = list(links)
        self.host = host
        self.fragment = fragment
        self._send_seq = 0
        self._recv_seq = 0
        self.blocks_sent = 0
        self.blocks_received = 0
        self._writers: Optional[list[_StreamWriter]] = None
        self._readers: Optional[list[_StreamReader]] = None
        self._queue_limit = queue_limit
        self._closed = False
        obs.metrics().gauge(
            "driver.streams", driver=self.name, backend="sim"
        ).set(len(self.links))

    @property
    def nstreams(self) -> int:
        return len(self.links)

    def _ensure_writers(self):
        if self._writers is None:
            sim = self.links[0].sim
            self._writers = [
                _StreamWriter(sim, link, self._queue_limit) for link in self.links
            ]
        return self._writers

    def send_block(self, block: bytes) -> Generator:
        if self._closed:
            raise DriverError("driver closed")
        writers = self._ensure_writers()
        n = self.nstreams
        start = self._send_seq % n
        self._send_seq += 1
        if self.host is not None:
            yield charge(self.host, "serialize", len(block))
        yield from writers[start].put(struct.pack("!I", len(block)))
        for i, offset in enumerate(range(0, len(block), self.fragment)):
            writer = writers[(start + i) % n]
            yield from writer.put(block[offset : offset + self.fragment])
        self.blocks_sent += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="tx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="tx", backend="sim"
        ).observe(len(block))

    def _ensure_readers(self):
        if self._readers is None:
            sim = self.links[0].sim
            self._readers = [
                _StreamReader(sim, link, self._queue_limit) for link in self.links
            ]
        return self._readers

    def recv_block(self) -> Generator:
        readers = self._ensure_readers()
        n = self.nstreams
        start = self._recv_seq % n
        self._recv_seq += 1
        header = yield from readers[start].take(4)
        length = struct.unpack("!I", header)[0]
        parts = []
        remaining = length
        i = 0
        while remaining > 0:
            take = min(self.fragment, remaining)
            reader = readers[(start + i) % n]
            parts.append((yield from reader.take(take)))
            remaining -= take
            i += 1
        block = b"".join(parts)
        if self.host is not None:
            yield charge(self.host, "serialize", len(block))
        self.blocks_received += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="rx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="rx", backend="sim"
        ).observe(len(block))
        return block

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._writers is not None:
            for writer in self._writers:
                writer.close()  # links close after their queues drain
        else:
            for link in self.links:
                link.close()

    def abort(self) -> None:
        self._closed = True
        for link in self.links:
            link.abort()
