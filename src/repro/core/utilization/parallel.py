"""Parallel TCP streams (paper §4.2).

"On such high latency WANs, using multiple TCP streams — or parallel
streams — for a single logical connection can improve the achievable
bandwidth by increasing the window size beyond the operating-system
limits. ... sender and receiver have to fragment and multiplex the data
over the underlying, individual TCP streams."

Striping scheme: block *n*'s length header travels on stream ``n % N``;
its fragments of at most ``fragment`` bytes follow round-robin starting on
that same stream.  Because every stream is an ordered byte pipe and the
assignment is a pure function of the block counter, the receiver needs no
per-fragment metadata at all — reassembly is deterministic.

Each stream has its own writer process behind a bounded queue, so a
momentarily backlogged stream does not head-of-line-block the others —
all N congestion windows stay filled concurrently, which is the whole
point of striping.  Backpressure still propagates: ``send_block`` waits
when the *target* stream's queue is full.

Fragmentation work (the extra copy per byte that striping costs) is
charged to the host CPU model as ``serialize`` work when one is attached.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional, Sequence

from ... import obs
from ...simnet.cpu import charge
from ...simnet.engine import Event
from ..links import Link
from .base import Driver, DriverError

__all__ = [
    "ParallelStreamsDriver",
    "RebalancingParallelDriver",
    "DEFAULT_FRAGMENT",
]

DEFAULT_FRAGMENT = 16384

_CLOSE = object()


class _StreamWriter:
    """Bounded outbound queue + writer process for one stream."""

    def __init__(self, sim, link: Link, limit_bytes: int, on_error=None):
        self.sim = sim
        self.link = link
        self.limit = limit_bytes
        self.on_error = on_error
        self.written = 0
        self.closed = False
        self._queue: list = []
        self._queued_bytes = 0
        self._space_waiters: list[Event] = []
        self._data_waiter: Optional[Event] = None
        self.error: Optional[BaseException] = None
        self._proc = sim.process(self._run(), name="stripe-writer")

    def put(self, data: bytes) -> Generator:
        """Enqueue ``data``; blocks while the queue is over its limit."""
        while self._queued_bytes >= self.limit and self.error is None:
            ev = self.sim.event()
            self._space_waiters.append(ev)
            yield ev
        if self.error is not None:
            raise self.error
        if self.closed:
            raise DriverError("stream writer closed")
        self._queue.append(data)
        self._queued_bytes += len(data)
        self._kick()

    def close(self) -> None:
        self._queue.append(_CLOSE)
        self._kick()

    def _kick(self) -> None:
        if self._data_waiter is not None:
            waiter, self._data_waiter = self._data_waiter, None
            waiter.succeed()

    def _run(self) -> Generator:
        try:
            while True:
                while not self._queue:
                    self._data_waiter = self.sim.event()
                    yield self._data_waiter
                item = self._queue.pop(0)
                if item is _CLOSE:
                    self.closed = True
                    self.link.close()
                    return
                self._queued_bytes -= len(item)
                for ev in self._space_waiters:
                    ev.succeed()
                self._space_waiters.clear()
                yield from self.link.send_all(item)
                self.written += len(item)
        except BaseException as exc:
            self.error = exc
            for ev in self._space_waiters:
                ev.succeed()
            self._space_waiters.clear()
            if self.on_error is not None:
                self.on_error(exc)


class _StreamReader:
    """Eager reader process for one stream.

    Drains the socket as data arrives — keeping the TCP advertised window
    open — into a bounded local reassembly buffer the driver consumes from
    (the user-space reader thread a real striping implementation has).
    """

    def __init__(self, sim, link: Link, limit_bytes: int):
        self.sim = sim
        self.link = link
        self.limit = limit_bytes
        self._buf = bytearray()
        self._eof = False
        self.error: Optional[BaseException] = None
        self._consumer: Optional[tuple[Event, int]] = None
        self._drain_waiter: Optional[Event] = None
        self._proc = sim.process(self._run(), name="stripe-reader")

    def take(self, n: int) -> Generator:
        """Exactly ``n`` bytes from this stream (in arrival order)."""
        while len(self._buf) < n:
            if self.error is not None:
                raise self.error
            if self._eof:
                raise EOFError(
                    f"stream ended with {n - len(self._buf)} bytes missing"
                )
            ev = self.sim.event()
            self._consumer = (ev, n)
            yield ev
        out = bytes(self._buf[:n])
        del self._buf[:n]
        if self._drain_waiter is not None and len(self._buf) < self.limit:
            waiter, self._drain_waiter = self._drain_waiter, None
            waiter.succeed()
        return out

    def _wake_consumer(self) -> None:
        if self._consumer is not None:
            ev, n = self._consumer
            if len(self._buf) >= n or self._eof or self.error is not None:
                self._consumer = None
                ev.succeed()

    def _run(self) -> Generator:
        try:
            while True:
                if len(self._buf) >= self.limit:
                    self._drain_waiter = self.sim.event()
                    yield self._drain_waiter
                    continue
                data = yield from self.link.recv(65536)
                if not data:
                    self._eof = True
                    self._wake_consumer()
                    return
                self._buf.extend(data)
                self._wake_consumer()
        except BaseException as exc:
            self.error = exc
            self._wake_consumer()


class ParallelStreamsDriver(Driver):
    """Stripe blocks over N established links."""

    name = "parallel"

    def __init__(
        self,
        links: Sequence[Link],
        host=None,
        fragment: int = DEFAULT_FRAGMENT,
        queue_limit: int = 131072,
    ):
        if not links:
            raise DriverError("parallel driver needs at least one link")
        if fragment <= 0:
            raise DriverError("fragment size must be positive")
        self.links = list(links)
        self.host = host
        self.fragment = fragment
        self._send_seq = 0
        self._recv_seq = 0
        self.blocks_sent = 0
        self.blocks_received = 0
        self._writers: Optional[list[_StreamWriter]] = None
        self._readers: Optional[list[_StreamReader]] = None
        self._queue_limit = queue_limit
        self._closed = False
        obs.metrics().gauge(
            "driver.streams", driver=self.name, backend="sim"
        ).set(len(self.links))

    @property
    def nstreams(self) -> int:
        return len(self.links)

    def _ensure_writers(self):
        if self._writers is None:
            sim = self.links[0].sim
            self._writers = [
                _StreamWriter(sim, link, self._queue_limit) for link in self.links
            ]
        return self._writers

    def send_block(self, block: bytes) -> Generator:
        if self._closed:
            raise DriverError("driver closed")
        writers = self._ensure_writers()
        n = self.nstreams
        start = self._send_seq % n
        self._send_seq += 1
        if self.host is not None:
            yield charge(self.host, "serialize", len(block))
        yield from writers[start].put(struct.pack("!I", len(block)))
        for i, offset in enumerate(range(0, len(block), self.fragment)):
            writer = writers[(start + i) % n]
            yield from writer.put(block[offset : offset + self.fragment])
        self.blocks_sent += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="tx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="tx", backend="sim"
        ).observe(len(block))

    def _ensure_readers(self):
        if self._readers is None:
            sim = self.links[0].sim
            self._readers = [
                _StreamReader(sim, link, self._queue_limit) for link in self.links
            ]
        return self._readers

    def recv_block(self) -> Generator:
        readers = self._ensure_readers()
        n = self.nstreams
        start = self._recv_seq % n
        self._recv_seq += 1
        header = yield from readers[start].take(4)
        length = struct.unpack("!I", header)[0]
        parts = []
        remaining = length
        i = 0
        while remaining > 0:
            take = min(self.fragment, remaining)
            reader = readers[(start + i) % n]
            parts.append((yield from reader.take(take)))
            remaining -= take
            i += 1
        block = b"".join(parts)
        if self.host is not None:
            yield charge(self.host, "serialize", len(block))
        self.blocks_received += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="rx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="rx", backend="sim"
        ).observe(len(block))
        return block

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._writers is not None:
            for writer in self._writers:
                writer.close()  # links close after their queues drain
        else:
            for link in self.links:
                link.close()

    def abort(self) -> None:
        self._closed = True
        for link in self.links:
            link.abort()


#: self-describing frame header in rebalance mode: block seq, payload length
_REBAL_HDR = struct.Struct("!QI")

#: sanity bound on a rebalance-mode frame (blocks are block_size-bounded
#: far below this; anything larger is stream corruption)
_REBAL_MAX = 1 << 26


class RebalancingParallelDriver(Driver):
    """Parallel streams that survive member death (``rebalance=1``).

    Deterministic striping (:class:`ParallelStreamsDriver`) needs every
    stream alive forever: reassembly is a pure function of the block
    counter, so one dead member kills the transfer.  This variant trades
    a little framing overhead for survivability — each block travels
    whole on one stream behind a self-describing ``(seq, len)`` header,
    and the receiver reassembles from a reorder map keyed by ``seq``, so
    *which* stream carried a block stops mattering.

    Every sent block stays in a per-member pending set until it is known
    delivered — for :class:`~repro.core.session.SessionLink` members the
    peer's cumulative ack (``acked_tx``) is the authority, for raw links
    completion of the write is the best available signal.  When a member
    dies (for session members: the session could not be resumed), its
    pending blocks are retransmitted over the surviving members and the
    receiver's dedup drops any copies that did arrive.  The transfer
    fails only when *no* member survives.

    Clean end-of-stream still requires every member to terminate; a
    member wedged in unresumable recovery on the receive side stalls the
    EOF signal, so message boundaries above (``BlockChannel`` frames)
    remain the authority on completeness mid-stream.
    """

    name = "parallel"

    def __init__(
        self,
        links: Sequence[Link],
        host=None,
        fragment: int = DEFAULT_FRAGMENT,
        queue_limit: int = 131072,
    ):
        if not links:
            raise DriverError("parallel driver needs at least one link")
        self.links = list(links)
        self.host = host
        self.fragment = fragment  # accepted for spec symmetry; blocks go whole
        self.blocks_sent = 0
        self.blocks_received = 0
        self.rebalanced_blocks = 0
        self._queue_limit = queue_limit
        self._closed = False
        self._fatal: Optional[BaseException] = None
        # tx side
        self._send_seq = 0
        self._rr = 0
        self._alive = [True] * len(self.links)
        #: tuner-quiesced members: alive but not dealt new blocks
        self._quiesced = [False] * len(self.links)
        self._pending: list[dict[int, tuple[int, bytes]]] = [
            {} for _ in self.links
        ]
        self._put_bytes = [0] * len(self.links)
        self._writers: Optional[list[_StreamWriter]] = None
        # rx side
        self._readers: Optional[list[_StreamReader]] = None
        self._reorder: dict[int, bytes] = {}
        self._deliver_seq = 0
        self._dead_rx = 0
        self._rx_error: Optional[BaseException] = None
        self._rx_waiters: list[Event] = []
        obs.metrics().gauge(
            "driver.streams", driver=self.name, backend="sim"
        ).set(len(self.links))

    @property
    def nstreams(self) -> int:
        return len(self.links)

    @property
    def alive_members(self) -> int:
        return sum(self._alive)

    @property
    def active_streams(self) -> int:
        """Members currently dealt new blocks (alive and not quiesced)."""
        active = sum(
            1 for index in range(len(self.links))
            if self._alive[index] and not self._quiesced[index]
        )
        if active:
            return active
        return self.alive_members  # all quiesced: survivability fallback

    def set_active_streams(self, n: int) -> None:
        """Grow or shrink live membership without tearing anything down.

        Shrinking *quiesces* members (their links stay open and their
        pending blocks drain normally; they just stop being dealt new
        blocks) so growth is instant and free — no re-establishment.
        The count is clamped to ``[1, alive_members]``; dead members can
        never be reactivated.
        """
        n = max(1, min(int(n), len(self.links)))
        before = self.active_streams
        # Activate lowest-indexed alive members first, quiesce the rest.
        remaining = n
        for index in range(len(self.links)):
            if not self._alive[index]:
                continue
            if remaining > 0:
                self._quiesced[index] = False
                remaining -= 1
            else:
                self._quiesced[index] = True
        after = self.active_streams
        if after != before:
            reg = obs.metrics()
            reg.counter("parallel.retunes_total").inc()
            reg.gauge(
                "driver.streams", driver=self.name, backend="sim"
            ).set(after)
            obs.event("parallel.streams_retuned", before=before, after=after)

    # -- sending -----------------------------------------------------------------
    def _ensure_writers(self) -> list[_StreamWriter]:
        if self._writers is None:
            sim = self.links[0].sim
            self._writers = [
                _StreamWriter(
                    sim,
                    link,
                    self._queue_limit,
                    on_error=lambda exc, i=i: self._writer_died(i),
                )
                for i, link in enumerate(self.links)
            ]
        return self._writers

    def send_block(self, block: bytes) -> Generator:
        if self._closed:
            raise DriverError("driver closed")
        if self._fatal is not None:
            raise DriverError("all parallel members dead") from self._fatal
        self._ensure_writers()
        self._prune_pending()
        if self.host is not None:
            yield charge(self.host, "serialize", len(block))
        seq = self._send_seq
        self._send_seq += 1
        frame = _REBAL_HDR.pack(seq, len(block)) + block
        yield from self._put_frame([(seq, frame)])
        self.blocks_sent += 1
        reg = obs.metrics()
        reg.counter(
            "driver.bytes_total", driver=self.name, direction="tx", backend="sim"
        ).inc(len(block))
        reg.histogram(
            "driver.block_bytes", driver=self.name, direction="tx", backend="sim"
        ).observe(len(block))

    def _put_frame(self, backlog: list[tuple[int, bytes]]) -> Generator:
        """Place frames on alive members, absorbing member deaths."""
        writers = self._ensure_writers()
        while backlog:
            seq, frame = backlog.pop(0)
            while True:
                index = self._next_alive()
                writer = writers[index]
                try:
                    yield from writer.put(frame)
                except Exception:
                    backlog.extend(self._member_died(index))
                    continue
                self._put_bytes[index] += len(frame)
                self._pending[index][seq] = (self._put_bytes[index], frame)
                break

    def _next_alive(self) -> int:
        n = len(self.links)
        fallback = None
        for _ in range(n):
            index = self._rr % n
            self._rr += 1
            if not self._alive[index]:
                continue
            if not self._quiesced[index]:
                return index
            if fallback is None:
                fallback = index
        if fallback is not None:
            # every alive member is quiesced — survivability trumps tuning
            return fallback
        self._fatal = self._fatal or DriverError("all parallel members dead")
        raise DriverError("all parallel members dead")

    def _prune_pending(self) -> None:
        writers = self._writers or []
        for index, writer in enumerate(writers):
            if not self._alive[index] or not self._pending[index]:
                continue
            threshold = getattr(self.links[index], "acked_tx", None)
            if threshold is None:
                threshold = writer.written
            pending = self._pending[index]
            for seq in [s for s, (end, _) in pending.items() if end <= threshold]:
                del pending[seq]

    def _member_died(self, index: int) -> list[tuple[int, bytes]]:
        """Mark a member dead; returns its pending frames for requeueing."""
        if not self._alive[index]:
            return []
        self._alive[index] = False
        orphans = sorted(
            (seq, frame) for seq, (_end, frame) in self._pending[index].items()
        )
        self._pending[index].clear()
        self.rebalanced_blocks += len(orphans)
        reg = obs.metrics()
        reg.counter("parallel.member_deaths_total").inc()
        reg.counter("parallel.rebalanced_blocks_total").inc(len(orphans))
        obs.event(
            "parallel.member_dead",
            member=index,
            survivors=self.alive_members,
            rebalanced=len(orphans),
        )
        return orphans

    def _writer_died(self, index: int) -> None:
        """Async death (writer process, not a ``put`` call): rebalance in
        the background so tail blocks are recovered even when the sender
        never touches this member again."""
        if not self._alive[index]:
            return
        orphans = self._member_died(index)
        if not orphans:
            return

        def requeue() -> Generator:
            try:
                yield from self._put_frame(orphans)
            except DriverError:
                pass  # no survivors; send_block reports via self._fatal

        self.links[index].sim.process(requeue(), name="stripe-rebalance")

    # -- receiving ---------------------------------------------------------------
    def _ensure_readers(self) -> list[_StreamReader]:
        if self._readers is None:
            sim = self.links[0].sim
            self._readers = [
                _StreamReader(sim, link, self._queue_limit) for link in self.links
            ]
            for reader in self._readers:
                sim.process(self._parse(reader), name="stripe-parser")
        return self._readers

    def _parse(self, reader: _StreamReader) -> Generator:
        """Per-stream frame parser feeding the shared reorder map."""
        try:
            while True:
                head = yield from reader.take(_REBAL_HDR.size)
                seq, length = _REBAL_HDR.unpack(head)
                if length > _REBAL_MAX:
                    raise DriverError(f"bad rebalance frame length {length}")
                payload = yield from reader.take(length)
                if seq >= self._deliver_seq and seq not in self._reorder:
                    self._reorder[seq] = payload
                    self._wake_rx()
        except BaseException as exc:
            self._dead_rx += 1
            if not isinstance(exc, EOFError):
                self._rx_error = exc
            self._wake_rx()

    def _wake_rx(self) -> None:
        waiters, self._rx_waiters = self._rx_waiters, []
        for ev in waiters:
            ev.succeed()

    def recv_block(self) -> Generator:
        readers = self._ensure_readers()
        sim = self.links[0].sim
        while True:
            if self._deliver_seq in self._reorder:
                block = self._reorder.pop(self._deliver_seq)
                self._deliver_seq += 1
                if self.host is not None:
                    yield charge(self.host, "serialize", len(block))
                self.blocks_received += 1
                reg = obs.metrics()
                reg.counter(
                    "driver.bytes_total",
                    driver=self.name,
                    direction="rx",
                    backend="sim",
                ).inc(len(block))
                reg.histogram(
                    "driver.block_bytes",
                    driver=self.name,
                    direction="rx",
                    backend="sim",
                ).observe(len(block))
                return block
            if self._dead_rx >= len(readers):
                if self._reorder:
                    raise DriverError(
                        f"{len(self._reorder)} blocks lost with all "
                        f"members dead (next seq {self._deliver_seq})"
                    ) from self._rx_error
                if self._rx_error is not None:
                    raise self._rx_error
                raise EOFError("all parallel members closed")
            ev = sim.event()
            self._rx_waiters.append(ev)
            yield ev

    # -- teardown ----------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._writers is None:
            for link in self.links:
                link.close()
            return
        # Unlike deterministic striping, close must linger: a member death
        # after the last send_block requeues orphaned frames onto the
        # survivors, and closing the survivors' writers too early would
        # trap those frames behind the close marker.
        self.links[0].sim.process(self._graceful_close(), name="stripe-close")

    def _graceful_close(self) -> Generator:
        writers = self._writers or []
        sim = self.links[0].sim
        while self._fatal is None:
            busy = any(
                self._alive[index]
                and (writer._queue or writer.written < self._put_bytes[index])
                for index, writer in enumerate(writers)
            )
            if not busy:
                break
            yield sim.timeout(0.05)
        for index, writer in enumerate(writers):
            if self._alive[index] and not writer.closed:
                writer.close()  # links close after their queues drain
            elif not self._alive[index]:
                try:
                    self.links[index].abort()
                except Exception:
                    pass

    def abort(self) -> None:
        self._closed = True
        for link in self.links:
            link.abort()
