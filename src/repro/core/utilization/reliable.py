"""``rel``: a reliability layer over UDP datagrams.

NetIbis shipped UDP networking drivers with their own reliability filter
(the IPL guarantees FIFO-ordered channels regardless of the transport,
Figure 5 lists UDP among the substrates).  This driver implements a
classic go-back-N protocol over :mod:`repro.simnet.udp`:

* DATA datagrams carry a 32-bit sequence number and a slice of the block
  stream (blocks are length-prefixed in the byte stream);
* the receiver accepts only in-order datagrams and acknowledges
  cumulatively; out-of-order arrivals trigger a duplicate ACK;
* the sender keeps a fixed window of unacknowledged datagrams and
  retransmits the whole window on timeout (go-back-N);
* an EOF marker (retransmitted like data) closes the stream.

Both directions are multiplexed on one UDP socket pair, so a
:class:`~repro.core.utilization.stream.BlockChannel` over this driver is
full-duplex like the TCP-based drivers.
"""

from __future__ import annotations

import struct
from typing import Generator, Optional

from ...simnet.engine import Event
from ...simnet.tcp import _Timer
from ...simnet.udp import MAX_DATAGRAM, UdpSocket
from ..wire import WireError
from .base import Driver, DriverError

__all__ = ["ReliableUdpDriver"]

T_DATA = 0
T_ACK = 1
T_EOF = 2

HEADER = 5  # u8 type + u32 seq
MAX_PAYLOAD = MAX_DATAGRAM - HEADER


class ReliableUdpDriver(Driver):
    """Reliable FIFO block transport over a UDP socket pair."""

    name = "rel_udp"

    def __init__(
        self,
        sock: UdpSocket,
        peer: tuple,
        window: int = 32,
        rto: float = 0.25,
        max_retries: int = 40,
        payload_size: int = MAX_PAYLOAD,
    ):
        if payload_size > MAX_PAYLOAD:
            raise DriverError(f"payload_size > {MAX_PAYLOAD}")
        self.sock = sock
        self.peer = peer
        self.sim = sock.sim
        self.window = window
        self.rto = rto
        self.max_retries = max_retries
        self.payload_size = payload_size

        # Sender state (go-back-N).
        self._next_seq = 0
        self._base = 0
        self._unacked: dict[int, bytes] = {}  # seq -> raw datagram
        self._window_waiters: list[Event] = []
        self._retries = 0
        self._rexmit = _Timer(self.sim, self._on_timeout)
        self._eof_sent = False
        self.retransmissions = 0
        self.eof_drops = 0  # EOF markers given up on after the peer closed

        # Receiver state.
        self._expected = 0
        self._in_stream = bytearray()
        self._blocks: list[bytes] = []
        self._block_waiters: list[Event] = []
        self._peer_eof = False
        self._error: Optional[Exception] = None

        self._recv_proc = self.sim.process(self._recv_loop(), name="rel-udp-recv")
        self._closed = False

    # -- sending -----------------------------------------------------------
    def send_block(self, block: bytes) -> Generator:
        if self._closed or self._eof_sent:
            raise DriverError("driver closed")
        stream = struct.pack("!I", len(block)) + block
        for offset in range(0, len(stream), self.payload_size):
            chunk = stream[offset : offset + self.payload_size]
            yield from self._send_datagram(T_DATA, chunk)

    def _send_datagram(self, kind: int, payload: bytes) -> Generator:
        while len(self._unacked) >= self.window:
            if self._error is not None:
                raise self._error
            ev = self.sim.event()
            self._window_waiters.append(ev)
            yield ev
        if self._error is not None:
            raise self._error
        seq = self._next_seq
        self._next_seq += 1
        raw = struct.pack("!BI", kind, seq) + payload
        self._unacked[seq] = raw
        self.sock.sendto(raw, self.peer)
        if not self._rexmit.running:
            self._rexmit.start(self.rto)

    def _on_timeout(self) -> None:
        if not self._unacked or self._closed:
            return
        self._retries += 1
        if self._retries > self.max_retries:
            if all(raw[0] == T_EOF for raw in self._unacked.values()):
                # Only the EOF marker is outstanding: the peer took every
                # data byte (EOF is sent last and acks are cumulative) and
                # has almost certainly closed its socket already, so the
                # ack will never arrive.  Half-closed UDP has no FIN to
                # tell us apart from loss — treat the stream as delivered
                # and count the drop rather than failing a completed
                # transfer.
                self.eof_drops += 1
                self._unacked.clear()
                self._rexmit.cancel()
                waiters, self._window_waiters = self._window_waiters, []
                for ev in waiters:
                    ev.succeed()
                return
            self._fail(DriverError("reliable UDP peer unreachable"))
            return
        # Go-back-N: resend everything outstanding, in order.  This runs
        # from a timer callback, so a socket torn down between schedule
        # and fire must not raise into the engine.
        for seq in sorted(self._unacked):
            try:
                self.sock.sendto(self._unacked[seq], self.peer)
            except Exception:
                return
            self.retransmissions += 1
        self._rexmit.start(self.rto * min(4, 1 + self._retries / 4))

    def _on_ack(self, ack: int) -> None:
        if ack <= self._base:
            return  # duplicate
        for seq in range(self._base, ack):
            self._unacked.pop(seq, None)
        self._base = ack
        self._retries = 0
        if self._unacked:
            self._rexmit.start(self.rto)
        else:
            self._rexmit.cancel()
        waiters, self._window_waiters = self._window_waiters, []
        for ev in waiters:
            ev.succeed()

    # -- receiving ------------------------------------------------------------
    def _recv_loop(self) -> Generator:
        while True:
            try:
                data, _src = yield self.sock.recvfrom()
            except Exception:
                return
            if len(data) < HEADER:
                continue
            kind, seq = struct.unpack("!BI", data[:HEADER])
            payload = data[HEADER:]
            if kind == T_ACK:
                self._on_ack(seq)
            elif kind in (T_DATA, T_EOF):
                self._on_data(kind, seq, payload)

    def _ack_now(self) -> None:
        self.sock.sendto(struct.pack("!BI", T_ACK, self._expected), self.peer)

    def _on_data(self, kind: int, seq: int, payload: bytes) -> None:
        if seq != self._expected:
            self._ack_now()  # duplicate/ooo: re-assert the cumulative ack
            return
        self._expected += 1
        if kind == T_EOF:
            self._peer_eof = True
        else:
            self._in_stream.extend(payload)
            self._parse_blocks()
        self._ack_now()
        self._wake_block_waiters()

    def _parse_blocks(self) -> None:
        while True:
            if len(self._in_stream) < 4:
                return
            length = struct.unpack("!I", self._in_stream[:4])[0]
            if length > 1 << 26:
                self._fail(WireError(f"oversized rel_udp block: {length}"))
                return
            if len(self._in_stream) < 4 + length:
                return
            block = bytes(self._in_stream[4 : 4 + length])
            del self._in_stream[: 4 + length]
            self._blocks.append(block)

    def _wake_block_waiters(self) -> None:
        while self._block_waiters and (self._blocks or self._peer_eof or self._error):
            ev = self._block_waiters.pop(0)
            if self._blocks:
                ev.succeed(self._blocks.pop(0))
            elif self._error is not None:
                ev.fail(self._error)
            else:
                ev.fail(EOFError("rel_udp stream ended"))
                ev.defused = True

    def recv_block(self) -> Generator:
        ev = self.sim.event()
        self._block_waiters.append(ev)
        self._wake_block_waiters()
        block = yield ev
        return block

    # -- teardown -----------------------------------------------------------
    def _fail(self, exc: Exception) -> None:
        self._error = exc
        self._rexmit.cancel()
        for ev in self._window_waiters:
            ev.succeed()  # waiters re-check _error
        self._window_waiters.clear()
        self._wake_block_waiters()

    def close(self) -> None:
        """Send EOF (reliably) and release the socket once acknowledged."""
        if self._closed or self._eof_sent:
            return
        self._eof_sent = True

        def shutdown() -> Generator:
            try:
                yield from self._send_datagram(T_EOF, b"")
                # Linger until the EOF is acknowledged, given up on, or
                # retries exhaust on unacked data.
                while self._unacked and self._error is None and not self._closed:
                    yield self.sim.timeout(self.rto)
            except Exception:
                pass  # teardown is best-effort; _error already records why
            finally:
                self._closed = True
                self.sock.close()

        self.sim.process(shutdown(), name="rel-udp-close")

    def abort(self) -> None:
        self._closed = True
        self._rexmit.cancel()
        self.sock.close()
