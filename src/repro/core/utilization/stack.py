"""Driver-stack assembly (paper §5.1).

"NetIbis has been designed to make the communication paths between send
and receive ports completely configurable, either by configuration file or
by run-time properties."

Specs are :class:`~repro.core.utilization.spec.StackSpec` values (typed,
immutable, validated); the legacy string form, e.g.::

    "compress|parallel:4|tcp_block"
    "tls|tcp_block"
    "adaptive|parallel:8:fragment=8192|tcp_block"

is still accepted everywhere (it is what travels over the service link,
so "driver assembly consistency on both endpoints" holds — §5.2), but
user-facing entry points emit a :class:`DeprecationWarning` for it.  The
bottom layer must be a networking driver (``tcp_block`` or ``parallel``);
everything above is filtering.  :func:`links_required` tells the factory
how many data links to establish; :func:`build_stack` assembles the tree
on both endpoints.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ... import obs
from ..links import Link
from .adaptive import AdaptiveCompressionDriver
from .base import Driver, DriverError, FilterDriver
from .compression import CompressionDriver
from .parallel import DEFAULT_FRAGMENT, ParallelStreamsDriver
from .spec import FILTERING, NETWORKING, LayerSpec, StackSpec, StackSpecError, as_spec
from .tcp_block import TcpBlockDriver
from .tls import TlsDriver

__all__ = [
    "parse_stack",
    "links_required",
    "build_stack",
    "iter_drivers",
    "find_driver",
    "StackSpec",
    "LayerSpec",
    "StackSpecError",
    "as_spec",
    "NETWORKING",
    "FILTERING",
]

SpecLike = Union[str, StackSpec]


def parse_stack(spec: SpecLike) -> list[tuple[str, dict]]:
    """Parse a spec into the legacy ``[(layer_name, params), ...]`` form.

    Layer syntax of the string form: ``name[:positional][:key=value]...``
    — the positional argument is layer-specific (stream count for
    ``parallel``, zlib level for ``compress``/``adaptive``).
    """
    parsed = as_spec(spec, warn=False)
    return [(layer.name, layer.params) for layer in parsed.layers]


def links_required(spec: SpecLike) -> int:
    """How many established data links the spec's bottom layer needs."""
    return as_spec(spec, warn=False).links_required


def build_stack(
    spec: SpecLike,
    links: Sequence[Link],
    host=None,
) -> Driver:
    """Assemble the driver tree over established ``links``.

    TLS layers are created un-handshaken; retrieve them with
    :func:`find_driver` and run ``handshake_client``/``handshake_server``
    before moving data.
    """
    parsed = as_spec(spec, warn=False)
    bottom = parsed.bottom
    if bottom.name == "tcp_block":
        if len(links) != 1:
            raise StackSpecError(f"tcp_block needs exactly 1 link, got {len(links)}")
        driver: Driver = TcpBlockDriver(links[0])
    else:
        streams = int(bottom.get("streams", 2))
        if len(links) != streams:
            raise StackSpecError(f"parallel:{streams} needs {streams} links, got {len(links)}")
        driver = ParallelStreamsDriver(
            links, host=host, fragment=int(bottom.get("fragment", DEFAULT_FRAGMENT))
        )
    for layer in reversed(parsed.layers[:-1]):
        if layer.name == "compress":
            driver = CompressionDriver(driver, host=host, level=int(layer.get("level", 1)))
        elif layer.name == "adaptive":
            driver = AdaptiveCompressionDriver(
                driver,
                host,
                level=int(layer.get("level", 1)),
                probe_every=int(layer.get("probe", 16)),
            )
        elif layer.name == "tls":
            driver = TlsDriver(driver, host=host)
    obs.event(
        "stack.built",
        spec=str(parsed),
        links=len(links),
        backend="sim",
        drivers=",".join(type(d).__name__ for d in iter_drivers(driver)),
    )
    return driver


def iter_drivers(stack: Driver):
    """Top-down iteration over a driver tree."""
    node = stack
    while True:
        yield node
        if isinstance(node, FilterDriver):
            node = node.child
        else:
            return


def find_driver(stack: Driver, cls) -> Optional[Driver]:
    """First driver of type ``cls`` in the tree, or None."""
    for node in iter_drivers(stack):
        if isinstance(node, cls):
            return node
    return None
