"""Driver-stack assembly (paper §5.1).

"NetIbis has been designed to make the communication paths between send
and receive ports completely configurable, either by configuration file or
by run-time properties."

Specs are :class:`~repro.core.utilization.spec.StackSpec` values (typed,
immutable, validated).  The string form, e.g.::

    "compress|parallel:4|tcp_block"
    "tls|tcp_block"
    "adaptive|parallel:8:fragment=8192|tcp_block|session"

is only a *wire format*: it is what travels over the service link (so
"driver assembly consistency on both endpoints" holds — §5.2) and is
parsed explicitly with :meth:`StackSpec.parse` at the receiving end.
Exactly one layer is a networking driver (``tcp_block`` or ``parallel``);
everything above is filtering; an optional ``session`` layer below it is
handled at establishment time (the factory wraps the links in
:class:`~repro.core.session.SessionLink` before assembly, so
:func:`build_stack` sees it only as part of the spec).
:func:`links_required` tells the factory how many data links to
establish; :func:`build_stack` assembles the tree on both endpoints.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ... import obs
from ..links import Link
from .adaptive import AdaptiveCompressionDriver
from .base import Driver, DriverError, FilterDriver
from .compression import CompressionDriver
from .parallel import (
    DEFAULT_FRAGMENT,
    ParallelStreamsDriver,
    RebalancingParallelDriver,
)
from .spec import FILTERING, NETWORKING, SESSION, LayerSpec, StackSpec, StackSpecError
from .tcp_block import TcpBlockDriver
from .tls import TlsDriver

__all__ = [
    "parse_stack",
    "links_required",
    "build_stack",
    "iter_drivers",
    "find_driver",
    "StackSpec",
    "LayerSpec",
    "StackSpecError",
    "NETWORKING",
    "FILTERING",
    "SESSION",
]


def _typed(spec: StackSpec) -> StackSpec:
    if not isinstance(spec, StackSpec):
        raise TypeError(
            f"expected StackSpec, got {type(spec).__name__}; the string form "
            f"is wire-only — use StackSpec.parse(...) or the typed builders"
        )
    return spec


def parse_stack(spec: StackSpec) -> list[tuple[str, dict]]:
    """Flatten a spec into the ``[(layer_name, params), ...]`` form."""
    return [(layer.name, layer.params) for layer in _typed(spec).layers]


def links_required(spec: StackSpec) -> int:
    """How many established data links the spec's networking layer needs."""
    return _typed(spec).links_required


def build_stack(
    spec: StackSpec,
    links: Sequence[Link],
    host=None,
) -> Driver:
    """Assemble the driver tree over established ``links``.

    TLS layers are created un-handshaken; retrieve them with
    :func:`find_driver` and run ``handshake_client``/``handshake_server``
    before moving data.
    """
    parsed = _typed(spec)
    bottom = parsed.bottom
    if bottom.name == "tcp_block":
        if len(links) != 1:
            raise StackSpecError(f"tcp_block needs exactly 1 link, got {len(links)}")
        driver: Driver = TcpBlockDriver(links[0])
    else:
        streams = int(bottom.get("streams", 2))
        if len(links) != streams:
            raise StackSpecError(f"parallel:{streams} needs {streams} links, got {len(links)}")
        cls = (
            RebalancingParallelDriver
            if int(bottom.get("rebalance", 0))
            else ParallelStreamsDriver
        )
        driver = cls(
            links, host=host, fragment=int(bottom.get("fragment", DEFAULT_FRAGMENT))
        )
    for layer in reversed(parsed.filters):
        if layer.name == "compress":
            driver = CompressionDriver(driver, host=host, level=int(layer.get("level", 1)))
        elif layer.name == "adaptive":
            driver = AdaptiveCompressionDriver(
                driver,
                host,
                level=int(layer.get("level", 1)),
                probe_every=int(layer.get("probe", 16)),
            )
        elif layer.name == "tls":
            driver = TlsDriver(driver, host=host)
    obs.event(
        "stack.built",
        spec=str(parsed),
        links=len(links),
        backend="sim",
        drivers=",".join(type(d).__name__ for d in iter_drivers(driver)),
    )
    return driver


def iter_drivers(stack: Driver):
    """Top-down iteration over a driver tree."""
    node = stack
    while True:
        yield node
        if isinstance(node, FilterDriver):
            node = node.child
        else:
            return


def find_driver(stack: Driver, cls) -> Optional[Driver]:
    """First driver of type ``cls`` in the tree, or None."""
    for node in iter_drivers(stack):
        if isinstance(node, cls):
            return node
    return None
