"""Driver-stack specification and assembly (paper §5.1).

"NetIbis has been designed to make the communication paths between send
and receive ports completely configurable, either by configuration file or
by run-time properties."

A stack spec is a string of layers, top to bottom, e.g.::

    "compress|parallel:4|tcp_block"
    "tls|tcp_block"
    "adaptive|parallel:8:fragment=8192|tcp_block"

The bottom layer must be a networking driver (``tcp_block`` or
``parallel``); everything above is filtering.  :func:`links_required`
tells the factory how many data links to establish;
:func:`build_stack` assembles the tree on both endpoints — the service
link carries the spec string so "driver assembly consistency on both
endpoints" holds (§5.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..links import Link
from .adaptive import AdaptiveCompressionDriver
from .base import Driver, DriverError, FilterDriver
from .compression import CompressionDriver
from .parallel import DEFAULT_FRAGMENT, ParallelStreamsDriver
from .tcp_block import TcpBlockDriver
from .tls import TlsDriver

__all__ = [
    "parse_stack",
    "links_required",
    "build_stack",
    "iter_drivers",
    "find_driver",
    "StackSpecError",
]

NETWORKING = {"tcp_block", "parallel"}
FILTERING = {"compress", "adaptive", "tls"}


class StackSpecError(DriverError):
    """Invalid stack specification."""


def parse_stack(spec: str) -> list[tuple[str, dict]]:
    """Parse a spec string into ``[(layer_name, params), ...]``.

    Layer syntax: ``name[:positional][:key=value]...`` — the positional
    argument is layer-specific (stream count for ``parallel``, zlib level
    for ``compress``/``adaptive``).
    """
    layers: list[tuple[str, dict]] = []
    if not spec.strip():
        raise StackSpecError("empty stack spec")
    for part in spec.split("|"):
        fields = part.strip().split(":")
        name = fields[0]
        if name not in NETWORKING | FILTERING:
            raise StackSpecError(f"unknown layer {name!r}")
        params: dict = {}
        for fld in fields[1:]:
            if "=" in fld:
                key, value = fld.split("=", 1)
                params[key] = int(value) if value.isdigit() else value
            elif fld:
                if name == "parallel":
                    params["streams"] = int(fld)
                elif name in ("compress", "adaptive"):
                    params["level"] = int(fld)
                else:
                    raise StackSpecError(f"{name} takes no positional argument")
        layers.append((name, params))
    for name, _params in layers[:-1]:
        if name in NETWORKING:
            raise StackSpecError(f"networking layer {name!r} must be last")
    bottom = layers[-1][0]
    if bottom not in NETWORKING:
        raise StackSpecError(f"bottom layer {bottom!r} is not a networking driver")
    return layers


def links_required(spec: str) -> int:
    """How many established data links the spec's bottom layer needs."""
    layers = parse_stack(spec)
    name, params = layers[-1]
    if name == "tcp_block":
        return 1
    return int(params.get("streams", 2))


def build_stack(
    spec: str,
    links: Sequence[Link],
    host=None,
) -> Driver:
    """Assemble the driver tree over established ``links``.

    TLS layers are created un-handshaken; retrieve them with
    :func:`find_driver` and run ``handshake_client``/``handshake_server``
    before moving data.
    """
    layers = parse_stack(spec)
    name, params = layers[-1]
    if name == "tcp_block":
        if len(links) != 1:
            raise StackSpecError(f"tcp_block needs exactly 1 link, got {len(links)}")
        driver: Driver = TcpBlockDriver(links[0])
    else:
        streams = int(params.get("streams", 2))
        if len(links) != streams:
            raise StackSpecError(f"parallel:{streams} needs {streams} links, got {len(links)}")
        driver = ParallelStreamsDriver(
            links, host=host, fragment=int(params.get("fragment", DEFAULT_FRAGMENT))
        )
    for name, params in reversed(layers[:-1]):
        if name == "compress":
            driver = CompressionDriver(driver, host=host, level=int(params.get("level", 1)))
        elif name == "adaptive":
            driver = AdaptiveCompressionDriver(
                driver,
                host,
                level=int(params.get("level", 1)),
                probe_every=int(params.get("probe", 16)),
            )
        elif name == "tls":
            driver = TlsDriver(driver, host=host)
    return driver


def iter_drivers(stack: Driver):
    """Top-down iteration over a driver tree."""
    node = stack
    while True:
        yield node
        if isinstance(node, FilterDriver):
            node = node.child
        else:
            return


def find_driver(stack: Driver, cls) -> Optional[Driver]:
    """First driver of type ``cls`` in the tree, or None."""
    for node in iter_drivers(stack):
        if isinstance(node, cls):
            return node
    return None
