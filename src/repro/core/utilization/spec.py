"""Typed driver-stack specifications.

The stack spec used to travel the codebase as a bare string
(``"compress|parallel:4|tcp_block"``).  :class:`StackSpec` is the typed
form: an immutable, validated sequence of :class:`LayerSpec` layers with
builder methods, equal signatures on the simulated and live backends,
and a canonical string rendering that is byte-compatible with the old
wire format (the service link still carries ``str(spec)``, so "driver
assembly consistency on both endpoints" — §5.2 — is unchanged).

The string form is now *only* a wire/axis-label format: code that
receives a spec string from the service link (or uses one as an
experiment axis) parses it explicitly with :meth:`StackSpec.parse`.
The ``as_spec`` deprecation shim that silently coerced strings is gone.

Layer categories:

* **filtering** (``compress``, ``adaptive``, ``tls``) — any number, on top;
* **networking** (``tcp_block``, ``parallel``) — exactly one;
* **session** — optional, *below* the networking layer: the established
  links are wrapped in :class:`~repro.core.session.SessionLink` before the
  drivers are assembled, so the whole stack survives mid-stream link
  failure via reconnect + offset negotiation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .base import DriverError

__all__ = [
    "LayerSpec",
    "StackSpec",
    "StackSpecError",
    "NETWORKING",
    "FILTERING",
    "SESSION",
    "MUX",
]

NETWORKING = {"tcp_block", "parallel"}
FILTERING = {"compress", "adaptive", "tls"}
SESSION = {"session"}
MUX = {"mux"}

_ALL_LAYERS = NETWORKING | FILTERING | SESSION | MUX

#: layer-specific meaning of the positional argument in the string form
_POSITIONAL = {
    "parallel": "streams",
    "compress": "level",
    "adaptive": "level",
    "mux": "win",
}


class StackSpecError(DriverError):
    """Invalid stack specification."""


def _parse_value(value: str):
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


class LayerSpec:
    """One driver layer: a name plus its parameters (immutable)."""

    __slots__ = ("name", "_params")

    def __init__(self, name: str, params: Optional[dict] = None):
        if name not in _ALL_LAYERS:
            raise StackSpecError(f"unknown layer {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_params", tuple(sorted((params or {}).items())))

    def __setattr__(self, *_args):  # pragma: no cover - defensive
        raise AttributeError("LayerSpec is immutable")

    @property
    def params(self) -> dict:
        return dict(self._params)

    @property
    def is_networking(self) -> bool:
        return self.name in NETWORKING

    @property
    def is_session(self) -> bool:
        return self.name in SESSION

    @property
    def is_mux(self) -> bool:
        return self.name in MUX

    def get(self, key: str, default=None):
        return dict(self._params).get(key, default)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LayerSpec)
            and self.name == other.name
            and self._params == other._params
        )

    def __hash__(self) -> int:
        return hash((self.name, self._params))

    def render(self) -> str:
        """The string-form fragment for this layer."""
        params = dict(self._params)
        fields = [self.name]
        positional = _POSITIONAL.get(self.name)
        if positional is not None and positional in params:
            fields.append(str(params.pop(positional)))
        fields.extend(f"{key}={value}" for key, value in sorted(params.items()))
        return ":".join(fields)

    def __repr__(self) -> str:
        return f"LayerSpec({self.name!r}, {dict(self._params)!r})"


def _parse_text(text: str) -> list:
    """Parse the string form into ``[(layer_name, params_dict), ...]``."""
    if not text.strip():
        raise StackSpecError("empty stack spec")
    layers: list[tuple[str, dict]] = []
    for part in text.split("|"):
        fields = part.strip().split(":")
        name = fields[0]
        if name not in _ALL_LAYERS:
            raise StackSpecError(f"unknown layer {name!r}")
        params: dict = {}
        for fld in fields[1:]:
            if "=" in fld:
                key, value = fld.split("=", 1)
                params[key] = _parse_value(value)
            elif fld:
                positional = _POSITIONAL.get(name)
                if positional is None:
                    raise StackSpecError(f"{name} takes no positional argument")
                params[positional] = int(fld)
        layers.append((name, params))
    return layers


class StackSpec:
    """A validated driver stack, top to bottom.

    Build one from the typed constructors::

        StackSpec.tcp()                                # plain TCP_Block
        StackSpec.parallel(4).with_compression()       # zlib over 4 streams
        StackSpec.tcp().with_tls()                     # TLS over TCP_Block
        StackSpec.tcp().with_session()                 # survivable stream

    or parse the wire string form with :meth:`parse`.  Exactly one layer
    must be a networking driver; everything above it is filtering; below
    it an optional ``session`` layer wraps each established link in a
    survivable :class:`~repro.core.session.SessionLink`.

    ``label`` is a free-form experiment-axis tag (e.g. what
    :func:`~repro.core.monitor.select_spec` decided and why); it is not
    part of the wire form and does not affect equality.

    ``fidelity`` names the simulation tier the stack is meant to run on
    (``"packet"`` — the default per-segment TCP model — or ``"flow"``,
    the fluid fast path for fleet-scale runs; see
    :data:`repro.simnet.backend.FIDELITIES`).  Like ``label`` it is an
    execution hint, not part of the protocol: it never travels the
    service link and does not affect equality, so both endpoints of a
    brokered connection can assemble the same stack at different
    fidelities.
    """

    __slots__ = ("layers", "label", "fidelity")

    def __init__(
        self,
        layers: Sequence[LayerSpec],
        label: Optional[str] = None,
        fidelity: str = "packet",
    ):
        layers = tuple(
            layer if isinstance(layer, LayerSpec) else LayerSpec(layer[0], layer[1])
            for layer in layers
        )
        if not layers:
            raise StackSpecError("empty stack spec")
        networking = [i for i, layer in enumerate(layers) if layer.is_networking]
        if len(networking) != 1:
            raise StackSpecError(
                f"stack needs exactly one networking layer, got {len(networking)}"
            )
        nl = networking[0]
        for layer in layers[:nl]:
            if layer.name not in FILTERING:
                raise StackSpecError(
                    f"layer {layer.name!r} cannot sit above the networking layer"
                )
        below = [layer.name for layer in layers[nl + 1 :]]
        if below not in ([], ["session"], ["mux"], ["session", "mux"]):
            raise StackSpecError(
                "below the networking layer only an optional session layer "
                "followed by an optional mux layer may appear"
            )
        if fidelity not in ("packet", "flow"):
            raise StackSpecError(
                f"unknown fidelity {fidelity!r}; expected 'packet' or 'flow'"
            )
        object.__setattr__(self, "layers", layers)
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "fidelity", fidelity)

    def __setattr__(self, *_args):  # pragma: no cover - defensive
        raise AttributeError("StackSpec is immutable")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "StackSpec":
        """Parse the wire string form (``"compress|parallel:4|tcp_block"``)."""
        return cls([LayerSpec(name, params) for name, params in _parse_text(text)])

    @classmethod
    def tcp(cls) -> "StackSpec":
        """A plain ``TCP_Block`` stack (one link, no filtering)."""
        return cls([LayerSpec("tcp_block")])

    # kept as the string-form name too, for discoverability
    tcp_block = tcp

    @classmethod
    def parallel(cls, streams: int, fragment: Optional[int] = None) -> "StackSpec":
        """A parallel-streams bottom layer (``streams`` established links)."""
        if streams < 1:
            raise StackSpecError("parallel needs at least one stream")
        params: dict = {"streams": streams}
        if fragment is not None:
            params["fragment"] = fragment
        return cls([LayerSpec("parallel", params)])

    # -- composition ----------------------------------------------------------
    def _pushed(self, layer: LayerSpec) -> "StackSpec":
        return StackSpec((layer,) + self.layers, label=self.label, fidelity=self.fidelity)

    def with_compression(self, level: int = 1) -> "StackSpec":
        """Static zlib compression above the current stack."""
        return self._pushed(LayerSpec("compress", {"level": level}))

    def with_adaptive(
        self, level: int = 1, probe_every: Optional[int] = None
    ) -> "StackSpec":
        """AdOC-style adaptive compression above the current stack."""
        params: dict = {"level": level}
        if probe_every is not None:
            params["probe"] = probe_every
        return self._pushed(LayerSpec("adaptive", params))

    def with_tls(self) -> "StackSpec":
        """The TLS-like security layer above the current stack."""
        return self._pushed(LayerSpec("tls"))

    def with_session(
        self,
        ack_every: Optional[int] = None,
        max_buffer: Optional[int] = None,
        heartbeat: Optional[float] = None,
    ) -> "StackSpec":
        """Wrap every established link in a survivable session (below the
        networking layer): replay buffer + cumulative acks + transparent
        re-establishment with offset negotiation on transport failure.
        """
        if self.session is not None:
            raise StackSpecError("stack already has a session layer")
        params: dict = {}
        if ack_every is not None:
            params["ack"] = int(ack_every)
        if max_buffer is not None:
            params["buf"] = int(max_buffer)
        if heartbeat is not None:
            params["hb"] = heartbeat
        # the session layer sits between the networking layer and any mux
        above = tuple(l for l in self.layers if not l.is_mux)
        mux = tuple(l for l in self.layers if l.is_mux)
        return StackSpec(
            above + (LayerSpec("session", params),) + mux,
            label=self.label,
            fidelity=self.fidelity,
        )

    def with_mux(
        self,
        window: Optional[int] = None,
        scheduler: Optional[str] = None,
    ) -> "StackSpec":
        """Multiplex every data channel of this stack over **one**
        established link (below any session layer): the factory brokers a
        single physical connection, wraps it in a
        :class:`~repro.mux.MuxEndpoint`, and opens one credit-controlled
        channel per link the networking layer needs.

        ``window`` is the per-channel credit window in bytes (``win`` in
        the wire form); ``scheduler`` picks the transmission policy
        (``"rr"`` round robin — the default — or ``"drr"`` weighted
        deficit round robin).
        """
        if self.mux is not None:
            raise StackSpecError("stack already has a mux layer")
        params: dict = {}
        if window is not None:
            params["win"] = int(window)
        if scheduler is not None:
            params["sched"] = scheduler
        return StackSpec(
            self.layers + (LayerSpec("mux", params),),
            label=self.label,
            fidelity=self.fidelity,
        )

    def without_mux(self) -> "StackSpec":
        """The same stack minus any mux layer."""
        if self.mux is None:
            return self
        return StackSpec(
            tuple(l for l in self.layers if not l.is_mux),
            label=self.label,
            fidelity=self.fidelity,
        )

    def with_label(self, label: Optional[str]) -> "StackSpec":
        """The same stack tagged with an experiment-axis label."""
        return StackSpec(self.layers, label=label, fidelity=self.fidelity)

    def with_fidelity(self, fidelity: str) -> "StackSpec":
        """The same stack pinned to a simulation fidelity tier.

        ``"packet"`` (default) assembles real drivers over the
        per-segment TCP model; ``"flow"`` marks the stack for the fluid
        fast path, where transfers become
        :class:`~repro.simnet.flow.FluidFlow` rate processes.
        """
        return StackSpec(self.layers, label=self.label, fidelity=fidelity)

    def without_session(self) -> "StackSpec":
        """The same stack minus any session layer."""
        if self.session is None:
            return self
        return StackSpec(
            tuple(l for l in self.layers if not l.is_session),
            label=self.label,
            fidelity=self.fidelity,
        )

    # -- inspection ------------------------------------------------------------
    @property
    def bottom(self) -> LayerSpec:
        """The networking layer."""
        for layer in self.layers:
            if layer.is_networking:
                return layer
        raise StackSpecError("stack has no networking layer")  # pragma: no cover

    @property
    def filters(self) -> tuple:
        """The filtering layers, top to bottom."""
        return tuple(layer for layer in self.layers if layer.name in FILTERING)

    @property
    def session(self) -> Optional[LayerSpec]:
        """The session layer, or None."""
        for layer in self.layers:
            if layer.is_session:
                return layer
        return None

    @property
    def mux(self) -> Optional[LayerSpec]:
        """The mux layer, or None."""
        for layer in self.layers:
            if layer.is_mux:
                return layer
        return None

    @property
    def links_required(self) -> int:
        """How many established data links the networking layer needs."""
        if self.bottom.name == "tcp_block":
            return 1
        return int(self.bottom.get("streams", 2))

    def layer(self, name: str) -> Optional[LayerSpec]:
        """The first layer with the given name, or None."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        return None

    def __contains__(self, name: str) -> bool:
        return self.layer(name) is not None

    def __iter__(self) -> Iterable[LayerSpec]:
        return iter(self.layers)

    def __eq__(self, other) -> bool:
        if isinstance(other, StackSpec):
            return self.layers == other.layers
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.layers)

    def __str__(self) -> str:
        return "|".join(layer.render() for layer in self.layers)

    def __repr__(self) -> str:
        text = f"StackSpec.parse({str(self)!r})"
        if self.label is not None:
            text += f".with_label({self.label!r})"
        if self.fidelity != "packet":
            text += f".with_fidelity({self.fidelity!r})"
        return text
