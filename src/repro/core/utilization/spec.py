"""Typed driver-stack specifications.

The stack spec used to travel the codebase as a bare string
(``"compress|parallel:4|tcp_block"``).  :class:`StackSpec` is the typed
form: an immutable, validated sequence of :class:`LayerSpec` layers with
builder methods, equal signatures on the simulated and live backends,
and a canonical string rendering that is byte-compatible with the old
wire format (the service link still carries ``str(spec)``, so "driver
assembly consistency on both endpoints" — §5.2 — is unchanged).

The string form remains accepted everywhere through :func:`as_spec`,
which parses it and emits a :class:`DeprecationWarning`; internal code
that *receives* a spec string from the wire parses it silently with
:meth:`StackSpec.parse`.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Optional, Sequence, Union

from .base import DriverError

__all__ = [
    "LayerSpec",
    "StackSpec",
    "StackSpecError",
    "as_spec",
    "NETWORKING",
    "FILTERING",
]

NETWORKING = {"tcp_block", "parallel"}
FILTERING = {"compress", "adaptive", "tls"}

#: layer-specific meaning of the positional argument in the string form
_POSITIONAL = {"parallel": "streams", "compress": "level", "adaptive": "level"}


class StackSpecError(DriverError):
    """Invalid stack specification."""


class LayerSpec:
    """One driver layer: a name plus its parameters (immutable)."""

    __slots__ = ("name", "_params")

    def __init__(self, name: str, params: Optional[dict] = None):
        if name not in NETWORKING | FILTERING:
            raise StackSpecError(f"unknown layer {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_params", tuple(sorted((params or {}).items())))

    def __setattr__(self, *_args):  # pragma: no cover - defensive
        raise AttributeError("LayerSpec is immutable")

    @property
    def params(self) -> dict:
        return dict(self._params)

    @property
    def is_networking(self) -> bool:
        return self.name in NETWORKING

    def get(self, key: str, default=None):
        return dict(self._params).get(key, default)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LayerSpec)
            and self.name == other.name
            and self._params == other._params
        )

    def __hash__(self) -> int:
        return hash((self.name, self._params))

    def render(self) -> str:
        """The string-form fragment for this layer."""
        params = dict(self._params)
        fields = [self.name]
        positional = _POSITIONAL.get(self.name)
        if positional is not None and positional in params:
            fields.append(str(params.pop(positional)))
        fields.extend(f"{key}={value}" for key, value in sorted(params.items()))
        return ":".join(fields)

    def __repr__(self) -> str:
        return f"LayerSpec({self.name!r}, {dict(self._params)!r})"


def _parse_text(text: str) -> list:
    """Parse the string form into ``[(layer_name, params_dict), ...]``."""
    if not text.strip():
        raise StackSpecError("empty stack spec")
    layers: list[tuple[str, dict]] = []
    for part in text.split("|"):
        fields = part.strip().split(":")
        name = fields[0]
        if name not in NETWORKING | FILTERING:
            raise StackSpecError(f"unknown layer {name!r}")
        params: dict = {}
        for fld in fields[1:]:
            if "=" in fld:
                key, value = fld.split("=", 1)
                params[key] = int(value) if value.isdigit() else value
            elif fld:
                positional = _POSITIONAL.get(name)
                if positional is None:
                    raise StackSpecError(f"{name} takes no positional argument")
                params[positional] = int(fld)
        layers.append((name, params))
    return layers


class StackSpec:
    """A validated driver stack, top to bottom.

    Build one from the typed constructors::

        StackSpec.tcp()                                # plain TCP_Block
        StackSpec.parallel(4).with_compression()       # zlib over 4 streams
        StackSpec.tcp().with_tls()                     # TLS over TCP_Block

    or parse the legacy string form with :meth:`parse`.  The bottom layer
    must be a networking driver; everything above is filtering — the
    same invariants the string parser always enforced.
    """

    __slots__ = ("layers",)

    def __init__(self, layers: Sequence[LayerSpec]):
        layers = tuple(
            layer if isinstance(layer, LayerSpec) else LayerSpec(layer[0], layer[1])
            for layer in layers
        )
        if not layers:
            raise StackSpecError("empty stack spec")
        for layer in layers[:-1]:
            if layer.is_networking:
                raise StackSpecError(
                    f"networking layer {layer.name!r} must be last"
                )
        if not layers[-1].is_networking:
            raise StackSpecError(
                f"bottom layer {layers[-1].name!r} is not a networking driver"
            )
        object.__setattr__(self, "layers", layers)

    def __setattr__(self, *_args):  # pragma: no cover - defensive
        raise AttributeError("StackSpec is immutable")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "StackSpec":
        """Parse the legacy ``"compress|parallel:4|tcp_block"`` form."""
        return cls([LayerSpec(name, params) for name, params in _parse_text(text)])

    @classmethod
    def tcp(cls) -> "StackSpec":
        """A plain ``TCP_Block`` stack (one link, no filtering)."""
        return cls([LayerSpec("tcp_block")])

    # kept as the string-form name too, for discoverability
    tcp_block = tcp

    @classmethod
    def parallel(cls, streams: int, fragment: Optional[int] = None) -> "StackSpec":
        """A parallel-streams bottom layer (``streams`` established links)."""
        if streams < 1:
            raise StackSpecError("parallel needs at least one stream")
        params: dict = {"streams": streams}
        if fragment is not None:
            params["fragment"] = fragment
        return cls([LayerSpec("parallel", params)])

    # -- composition ----------------------------------------------------------
    def _pushed(self, layer: LayerSpec) -> "StackSpec":
        return StackSpec((layer,) + self.layers)

    def with_compression(self, level: int = 1) -> "StackSpec":
        """Static zlib compression above the current stack."""
        return self._pushed(LayerSpec("compress", {"level": level}))

    def with_adaptive(
        self, level: int = 1, probe_every: Optional[int] = None
    ) -> "StackSpec":
        """AdOC-style adaptive compression above the current stack."""
        params: dict = {"level": level}
        if probe_every is not None:
            params["probe"] = probe_every
        return self._pushed(LayerSpec("adaptive", params))

    def with_tls(self) -> "StackSpec":
        """The TLS-like security layer above the current stack."""
        return self._pushed(LayerSpec("tls"))

    # -- inspection ------------------------------------------------------------
    @property
    def bottom(self) -> LayerSpec:
        """The networking layer."""
        return self.layers[-1]

    @property
    def links_required(self) -> int:
        """How many established data links the bottom layer needs."""
        if self.bottom.name == "tcp_block":
            return 1
        return int(self.bottom.get("streams", 2))

    def layer(self, name: str) -> Optional[LayerSpec]:
        """The first layer with the given name, or None."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        return None

    def __contains__(self, name: str) -> bool:
        return self.layer(name) is not None

    def __iter__(self) -> Iterable[LayerSpec]:
        return iter(self.layers)

    def __eq__(self, other) -> bool:
        if isinstance(other, StackSpec):
            return self.layers == other.layers
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.layers)

    def __str__(self) -> str:
        return "|".join(layer.render() for layer in self.layers)

    def __repr__(self) -> str:
        return f"StackSpec.parse({str(self)!r})"


def as_spec(
    spec: Union[str, StackSpec], warn: bool = True, stacklevel: int = 3
) -> StackSpec:
    """Coerce a user-supplied spec to :class:`StackSpec`.

    Strings still work, but are the deprecated surface: they parse through
    the legacy grammar and (by default) emit a :class:`DeprecationWarning`
    pointing at the typed constructors.
    """
    if isinstance(spec, StackSpec):
        return spec
    if isinstance(spec, str):
        parsed = StackSpec.parse(spec)
        if warn:
            warnings.warn(
                f"string driver specs are deprecated; use "
                f"StackSpec.parse({spec!r}) or the typed StackSpec "
                f"constructors",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
        return parsed
    raise TypeError(f"expected StackSpec or str, got {type(spec).__name__}")
