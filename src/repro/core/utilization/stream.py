"""Application-facing channel over a driver stack (paper §4.1).

"Data is aggregated in buffers.  A buffer is sent off due to overflow or
due to an explicit flush by the user."  :class:`BlockChannel` implements
exactly that — buffered writes, explicit flush — plus a framed message API
on top (used by the IPL's Write/Read messages).
"""

from __future__ import annotations

import struct
from typing import Generator, Optional

from ... import obs
from ...obs import TraceContext
from .base import Driver

__all__ = ["BlockChannel", "DEFAULT_BLOCK"]

DEFAULT_BLOCK = 65536

#: message frame header: flags (bit 0 = trace context follows) + length
_MSG_HDR = struct.Struct("!BI")
_F_CTX = 1


class BlockChannel:
    """Buffered byte/message channel over a block driver stack."""

    def __init__(self, driver: Driver, block_size: int = DEFAULT_BLOCK):
        if block_size <= 0:
            raise ValueError("block size must be positive")
        self.driver = driver
        self.block_size = block_size
        self._out = bytearray()
        self._in = bytearray()
        self._eof = False
        self.bytes_written = 0
        self.bytes_read = 0
        #: trace context carried by the most recently received message
        self.last_ctx: Optional[TraceContext] = None

    # -- writing ------------------------------------------------------------
    def write(self, data: bytes) -> Generator:
        """Buffer ``data``; full blocks are sent as they complete."""
        self.bytes_written += len(data)
        self._out.extend(data)
        while len(self._out) >= self.block_size:
            block = bytes(self._out[: self.block_size])
            del self._out[: self.block_size]
            yield from self.driver.send_block(block)

    def flush(self) -> Generator:
        """Send any buffered partial block (the explicit flush of §4.1)."""
        if self._out:
            block = bytes(self._out)
            self._out.clear()
            yield from self.driver.send_block(block)

    # -- reading --------------------------------------------------------------
    def read(self, maxbytes: int) -> Generator:
        """Read up to ``maxbytes``; returns b"" at end of stream."""
        while not self._in and not self._eof:
            try:
                block = yield from self.driver.recv_block()
            except EOFError:
                self._eof = True
                break
            self._in.extend(block)
        take = bytes(self._in[:maxbytes])
        del self._in[: len(take)]
        self.bytes_read += len(take)
        return take

    def read_exactly(self, n: int) -> Generator:
        parts = []
        remaining = n
        while remaining > 0:
            data = yield from self.read(remaining)
            if not data:
                raise EOFError(f"channel ended with {remaining}/{n} bytes missing")
            parts.append(data)
            remaining -= len(data)
        return b"".join(parts)

    # -- message framing ------------------------------------------------------
    def send_message(
        self, payload: bytes, ctx: Optional[TraceContext] = None
    ) -> Generator:
        """One framed message: flags + length prefix (+ trace context) +
        payload + flush.  ``ctx`` rides the header so the receiving node's
        records join the sender's trace."""
        ctx = ctx or obs.current()
        flags = _F_CTX if ctx is not None else 0
        yield from self.write(_MSG_HDR.pack(flags, len(payload)))
        if ctx is not None:
            yield from self.write(ctx.encode())
        yield from self.write(payload)
        yield from self.flush()
        obs.event("channel.message", ctx=ctx, direction="tx", bytes=len(payload))

    def recv_message(self) -> Generator:
        header = yield from self.read_exactly(_MSG_HDR.size)
        flags, length = _MSG_HDR.unpack(header)
        ctx = None
        if flags & _F_CTX:
            blob = yield from self.read_exactly(TraceContext.WIRE_SIZE)
            try:
                ctx = TraceContext.decode(blob)
            except ValueError:
                ctx = None
        self.last_ctx = ctx
        payload = yield from self.read_exactly(length)
        obs.event("channel.message", ctx=ctx, direction="rx", bytes=len(payload))
        return payload

    def close(self) -> None:
        self.driver.close()

    def abort(self) -> None:
        self.driver.abort()
