"""Connection factories (paper §5.2).

"Resolving the WAN connection and communication issues ... can be
simplified significantly by employing a framework that explicitly supports
the separation of connection establishment and link utilization ... using
socket factories for connection establishment, and networking and
filtering drivers for link utilization."

* The **bootstrap** path is the relay/service-link machinery in
  :class:`~repro.core.node.GridNode` (no pre-existing connection needed).
* The **brokered** factory here negotiates a driver-stack spec over the
  service link ("driver assembly consistency on both endpoints"),
  establishes as many data links as the stack's networking layer needs —
  each via the Figure 4 decision tree with fall-back — and assembles the
  stack into an application-ready :class:`BlockChannel`.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from .. import obs
from ..util.framing import ByteReader, ByteWriter
from .addressing import EndpointInfo
from .links import Link
from .node import GridNode
from .utilization.spec import StackSpec, as_spec
from .utilization.stack import build_stack
from .utilization.stream import DEFAULT_BLOCK, BlockChannel
from .utilization.tls import TlsDriver
from .utilization.stack import find_driver
from .wire import recv_frame, send_frame

__all__ = ["BrokeredConnectionFactory", "TlsConfig"]


class TlsConfig:
    """Credentials for stacks containing a ``tls`` layer."""

    def __init__(
        self,
        trust_anchors,
        identity=None,
        expected_peer: Optional[str] = None,
        require_client_auth: bool = False,
    ):
        self.trust_anchors = list(trust_anchors)
        self.identity = identity
        self.expected_peer = expected_peer
        self.require_client_auth = require_client_auth


class BrokeredConnectionFactory:
    """Builds fully configured data channels between two grid nodes."""

    def __init__(self, node: GridNode, tls_config: Optional[TlsConfig] = None):
        self.node = node
        self.tls_config = tls_config

    # -- initiator ----------------------------------------------------------
    def connect(
        self,
        service_link: Link,
        peer_info: EndpointInfo,
        spec: Union[str, StackSpec, None] = None,
        block_size: int = DEFAULT_BLOCK,
    ) -> Generator:
        """Negotiate ``spec`` with the peer and build the channel.

        ``spec`` is a :class:`StackSpec` (default: plain ``TCP_Block``);
        the legacy string form still works but is deprecated.
        """
        parsed = StackSpec.tcp() if spec is None else as_spec(spec)
        n = parsed.links_required
        yield from send_frame(
            service_link, ByteWriter().lp_str(str(parsed)).u32(block_size).getvalue()
        )
        links = []
        try:
            for _ in range(n):
                link = yield from self.node.broker.initiate(service_link, peer_info)
                links.append(link)
        except BaseException:
            for link in links:
                link.abort()
            raise
        with obs.span(
            "stack.assemble", spec=str(parsed), role="initiator", links=n
        ):
            stack = build_stack(parsed, links, host=self.node.host)
            yield from self._maybe_tls(stack, client=True)
        return BlockChannel(stack, block_size=block_size)

    # -- responder -----------------------------------------------------------
    def accept(self, service_link: Link) -> Generator:
        """Serve one channel negotiation on ``service_link``."""
        frame = yield from recv_frame(service_link)
        reader = ByteReader(frame)
        # The spec string is the wire format (§5.2): parse it silently.
        parsed = StackSpec.parse(reader.lp_str())
        block_size = reader.u32()
        n = parsed.links_required
        links = []
        try:
            for _ in range(n):
                link = yield from self.node.broker.respond(service_link)
                links.append(link)
        except BaseException:
            for link in links:
                link.abort()
            raise
        with obs.span(
            "stack.assemble", spec=str(parsed), role="responder", links=n
        ):
            stack = build_stack(parsed, links, host=self.node.host)
            yield from self._maybe_tls(stack, client=False)
        return BlockChannel(stack, block_size=block_size)

    # -- helpers --------------------------------------------------------------
    def _maybe_tls(self, stack, client: bool) -> Generator:
        tls = find_driver(stack, TlsDriver)
        if tls is None:
            return
        if self.tls_config is None:
            raise ValueError("stack contains a tls layer but no TlsConfig given")
        cfg = self.tls_config
        now = self.node.sim.now
        if client:
            yield from tls.handshake_client(
                trust_anchors=cfg.trust_anchors,
                identity=cfg.identity,
                expected_server=cfg.expected_peer,
                now=now,
            )
        else:
            if cfg.identity is None:
                raise ValueError("TLS server side needs an identity")
            yield from tls.handshake_server(
                identity=cfg.identity,
                trust_anchors=cfg.trust_anchors,
                require_client_auth=cfg.require_client_auth,
                now=now,
            )
