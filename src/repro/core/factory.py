"""Connection factories (paper §5.2).

"Resolving the WAN connection and communication issues ... can be
simplified significantly by employing a framework that explicitly supports
the separation of connection establishment and link utilization ... using
socket factories for connection establishment, and networking and
filtering drivers for link utilization."

* The **bootstrap** path is the relay/service-link machinery in
  :class:`~repro.core.node.GridNode` (no pre-existing connection needed).
* The **brokered** factory here negotiates a driver-stack spec over the
  service link ("driver assembly consistency on both endpoints"),
  establishes as many data links as the stack's networking layer needs —
  each via the Figure 4 decision tree with fall-back — and assembles the
  stack into an application-ready :class:`BlockChannel`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Generator, Optional

from .. import obs
from ..mux import DEFAULT_WINDOW, MuxEndpoint
from ..mux.scheduler import make_scheduler
from ..obs import TraceContext
from ..simnet.tcp import TcpError
from ..util.framing import ByteReader, ByteWriter, FrameError
from .addressing import EndpointInfo
from .establishment.base import EstablishmentError
from .links import Link
from .node import GridNode
from .relay import RelayError
from .retry import RetryPolicy, retrying
from .session import SessionConfig, SessionLink
from .utilization.spec import StackSpec, StackSpecError
from .utilization.stack import build_stack
from .utilization.stream import DEFAULT_BLOCK, BlockChannel
from .utilization.tls import TlsDriver
from .utilization.stack import find_driver
from .wire import WireError, recv_frame, send_frame

__all__ = [
    "BrokeredConnectionFactory",
    "TlsConfig",
    "TRANSIENT_ERRORS",
    "CONNECT_RETRY",
    "ACCEPT_RETRY",
]

#: failures that justify renegotiating on a fresh service link: anything
#: from "every method failed" to the service link itself dying under us
TRANSIENT_ERRORS = (
    EstablishmentError,  # includes BrokerError
    WireError,
    FrameError,
    EOFError,
    RelayError,
    TcpError,
    TimeoutError,
)

#: initiator-side default: backs off while the relay restarts or the WAN heals
CONNECT_RETRY = RetryPolicy(
    max_attempts=6, base_delay=0.5, multiplier=2.0, max_delay=8.0, jitter=0.25
)

#: responder-side default: redial immediately — accept_service_link blocks
#: until the initiator's next attempt arrives, so pacing is initiator-driven
ACCEPT_RETRY = RetryPolicy(
    max_attempts=10, base_delay=0.0, multiplier=1.0, max_delay=0.0, jitter=0.0
)

#: per-node replay-buffer budget shared by standalone (non-mux) sessions;
#: muxed sessions are bounded by the channel credit window instead
SESSION_BUFFER_BUDGET = 4 << 20

#: floor under the per-session share — a session must always be able to
#: keep at least one maximal chunk in flight, or it can't make progress
MIN_SESSION_WINDOW = 64 << 10


def _typed_spec(spec: Optional[StackSpec]) -> StackSpec:
    if spec is None:
        return StackSpec.tcp()
    if not isinstance(spec, StackSpec):
        raise TypeError(
            f"expected StackSpec, got {type(spec).__name__}; the string form "
            f"is wire-only — use StackSpec.parse(...) or the typed builders"
        )
    return spec


class TlsConfig:
    """Credentials for stacks containing a ``tls`` layer."""

    def __init__(
        self,
        trust_anchors,
        identity=None,
        expected_peer: Optional[str] = None,
        require_client_auth: bool = False,
    ):
        self.trust_anchors = list(trust_anchors)
        self.identity = identity
        self.expected_peer = expected_peer
        self.require_client_auth = require_client_auth


class BrokeredConnectionFactory:
    """Builds fully configured data channels between two grid nodes.

    ``fidelity`` pins the factory to a simulation tier (default
    ``"packet"``).  Driver stacks are assembled from real driver objects
    over per-segment TCP, so only the packet tier can run them; a
    factory (or a spec) pinned to ``"flow"`` fails fast with a pointer
    to the fluid path (:meth:`~repro.simnet.flow.FlowNetwork.start_flow`
    parameterized via :func:`~repro.simnet.flow.spec_flow_params`)
    instead of silently assembling at the wrong tier.
    """

    def __init__(
        self,
        node: GridNode,
        tls_config: Optional[TlsConfig] = None,
        fidelity: str = "packet",
    ):
        from ..simnet.backend import FIDELITIES

        if fidelity not in FIDELITIES:
            raise StackSpecError(
                f"unknown fidelity {fidelity!r}; have {FIDELITIES}"
            )
        self.node = node
        self.tls_config = tls_config
        self.fidelity = fidelity
        # Shared mux endpoints, one per peer pair: the first muxed connect
        # to a peer establishes the carrier link, later connects open more
        # channels over it instead of re-running establishment.  Initiator
        # side is keyed by peer node id; responder side by (peer, eid)
        # where the endpoint id travels in the agreement frame.
        self._shared_mux: dict[str, tuple[int, MuxEndpoint]] = {}
        self._shared_mux_resp: dict[tuple[str, int], MuxEndpoint] = {}

    # -- initiator ----------------------------------------------------------
    def connect(
        self,
        service_link: Link,
        peer_info: EndpointInfo,
        spec: Optional[StackSpec] = None,
        block_size: int = DEFAULT_BLOCK,
        methods: Optional[list] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Negotiate ``spec`` with the peer and build the channel.

        ``spec`` is a :class:`StackSpec` (default: plain ``TCP_Block``).
        ``methods`` restricts the establishment methods attempted for the
        data links (and for session re-establishment after a fault).

        When the spec carries a ``session`` layer, this side generates one
        session id per data link, sends them along with the spec, and
        wraps each established link in a
        :class:`~repro.core.session.SessionLink` before stack assembly —
        so the whole driver stack survives mid-stream link failure.
        """
        ctx = ctx or obs.current() or TraceContext.new()
        parsed = _typed_spec(spec)
        self._check_fidelity(parsed)
        n = parsed.links_required
        sids = [self.node.next_session_id() for _ in range(n)] if parsed.session else []
        cached = None
        eid = 0
        if parsed.mux is not None:
            cached = self._shared_mux.get(peer_info.node_id)
            if cached is not None and not cached[1].alive:
                self._shared_mux.pop(peer_info.node_id, None)
                cached = None
            eid = cached[0] if cached is not None else self.node.next_session_id()
        frame = ByteWriter().lp_str(str(parsed)).u32(block_size)
        for sid in sids:
            frame.u64(sid)
        window = 0
        if parsed.session and parsed.mux is None:
            # Standalone sessions negotiate the replay window: this side
            # offers its budget share, the responder clamps to the min of
            # the offer and its own share, so neither end over-retains
            # under many concurrent sessions.
            window = self._standalone_window(parsed)
            frame.u32(window)
        nonce = 0
        if parsed.mux is not None:
            # the nonce tags this conversation's channels so concurrent
            # connects over a shared endpoint can't claim each other's
            nonce = self.node.next_session_id()
            frame.u8(1 if cached is not None else 0).u64(eid).u64(nonce)
        yield from send_frame(service_link, frame.getvalue())
        links = []
        endpoint = None
        try:
            if parsed.mux is not None:
                if cached is not None:
                    # the peer pair already shares a carrier link — just
                    # open more channels over it (no establishment at all)
                    endpoint = cached[1]
                    obs.event(
                        "mux.endpoint_reused",
                        ctx=ctx,
                        node=self.node.node_id,
                        peer=peer_info.node_id,
                        eid=f"{eid:016x}",
                    )
                else:
                    # one expensively-established physical link carries
                    # every channel the networking layer needs (ISSUE:
                    # reuse, don't re-establish per conversation)
                    raw = yield from self.node.broker.initiate(
                        service_link, peer_info, methods, ctx=ctx
                    )
                    endpoint = yield from self._mux_endpoint(
                        raw, parsed, MuxEndpoint.INITIATOR, ctx=ctx
                    )
                    self._shared_mux[peer_info.node_id] = (eid, endpoint)
                tag = nonce.to_bytes(8, "big")
                for _ in range(n):
                    channel = yield from endpoint.open_channel(tag, ctx=ctx)
                    links.append(channel)
            else:
                for _ in range(n):
                    link = yield from self.node.broker.initiate(
                        service_link, peer_info, methods, ctx=ctx
                    )
                    links.append(link)
        except BaseException:
            if endpoint is not None and cached is None:
                endpoint.close()
                self._shared_mux.pop(peer_info.node_id, None)
            for link in links:
                link.abort()
            raise
        links = self._wrap_sessions(
            parsed, links, sids, SessionLink.INITIATOR, peer_info, methods,
            window=window, ctx=ctx,
        )
        try:
            with obs.span(
                "stack.assemble",
                ctx=ctx.child(),
                node=self.node.node_id,
                spec=str(parsed),
                role="initiator",
                links=n,
            ):
                stack = build_stack(parsed, links, host=self.node.host)
                yield from self._maybe_tls(stack, client=True)
        except BaseException:
            for link in links:
                link.abort()
            raise
        return BlockChannel(stack, block_size=block_size)

    def connect_retrying(
        self,
        peer_id: str,
        peer_info: EndpointInfo,
        spec: Optional[StackSpec] = None,
        block_size: int = DEFAULT_BLOCK,
        policy: RetryPolicy = CONNECT_RETRY,
        connect_timeout: float = 15.0,
        methods: Optional[list] = None,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Like :meth:`connect`, but owns the whole bootstrap and survives
        transient failures.

        Each attempt waits for a live relay registration, opens a fresh
        service link to ``peer_id`` and negotiates the channel; on any
        :data:`TRANSIENT_ERRORS` failure the service link is closed (which
        unblocks a responder still parked on it) and the attempt is
        retried under ``policy`` with backoff.  This is what lets a
        brokered connection ride out a relay crash/restart or a dropped
        negotiation peer instead of hanging (ISSUE: fall back, don't hang).
        """
        node = self.node

        def attempt(_i: int) -> Generator:
            yield from node.relay_client.wait_connected(timeout=connect_timeout)
            service = yield from node.open_service_link(peer_id)
            try:
                channel = yield from self.connect(
                    service,
                    peer_info,
                    spec=spec,
                    block_size=block_size,
                    methods=methods,
                    ctx=ctx,
                )
            except BaseException:
                # Closing tells a responder blocked on this link to give
                # up on it and accept our next, fresh service link.
                service.close()
                raise
            service.close()
            return channel

        return (
            yield from retrying(
                node.sim,
                attempt,
                policy,
                retry_on=TRANSIENT_ERRORS,
                key=f"{node.node_id}->{peer_id}",
                name="broker.connect",
            )
        )

    # -- responder -----------------------------------------------------------
    def accept(self, service_link: Link) -> Generator:
        """Serve one channel negotiation on ``service_link``."""
        frame = yield from recv_frame(service_link)
        reader = ByteReader(frame)
        # The spec string is the wire format (§5.2): parse it silently.
        # Fidelity never travels the wire — the local factory's tier
        # applies, which is what lets the two endpoints differ.
        parsed = StackSpec.parse(reader.lp_str())
        self._check_fidelity(parsed)
        block_size = reader.u32()
        n = parsed.links_required
        sids = [reader.u64() for _ in range(n)] if parsed.session else []
        window = 0
        if parsed.session and parsed.mux is None:
            # min(peer's offer, our own budget share): both replay
            # buffers stay inside whichever end is more constrained
            window = min(reader.u32(), self._standalone_window(parsed))
        peer_id = getattr(service_link, "peer", "")
        reuse = False
        eid = nonce = 0
        if parsed.mux is not None:
            reuse = bool(reader.u8())
            eid = reader.u64()
            nonce = reader.u64()
        links = []
        endpoint = None
        created = False
        try:
            if parsed.mux is not None:
                if reuse:
                    endpoint = self._shared_mux_resp.get((peer_id, eid))
                    if endpoint is None or not endpoint.alive:
                        self._shared_mux_resp.pop((peer_id, eid), None)
                        raise EstablishmentError(
                            f"peer asked to reuse unknown mux endpoint "
                            f"{eid:016x}"
                        )
                else:
                    raw = yield from self.node.broker.respond(service_link)
                    endpoint = yield from self._mux_endpoint(
                        raw, parsed, MuxEndpoint.RESPONDER,
                        ctx=getattr(raw, "ctx", None),
                    )
                    self._shared_mux_resp[(peer_id, eid)] = endpoint
                    created = True
                tag = nonce.to_bytes(8, "big")
                for _ in range(n):
                    channel = yield from endpoint.accept_channel(tag)
                    links.append(channel)
            else:
                for _ in range(n):
                    link = yield from self.node.broker.respond(service_link)
                    links.append(link)
        except BaseException:
            if endpoint is not None and created:
                endpoint.close()
                self._shared_mux_resp.pop((peer_id, eid), None)
            for link in links:
                link.abort()
            raise
        links = self._wrap_sessions(
            parsed, links, sids, SessionLink.RESPONDER, None, None,
            peer_id=peer_id, window=window,
        )
        # On this side the causal identity arrives per-link inside the
        # brokering ATTEMPT frames; the assembly span is stamped with the
        # first data link's context so it joins the initiator's trace.
        rctx = next((l.ctx for l in links if getattr(l, "ctx", None)), None)
        try:
            with obs.span(
                "stack.assemble",
                ctx=rctx.child() if rctx is not None else None,
                node=self.node.node_id,
                spec=str(parsed),
                role="responder",
                links=n,
            ):
                stack = build_stack(parsed, links, host=self.node.host)
                yield from self._maybe_tls(stack, client=False)
        except BaseException:
            for link in links:
                link.abort()
            raise
        return BlockChannel(stack, block_size=block_size)

    def accept_retrying(
        self,
        policy: RetryPolicy = ACCEPT_RETRY,
    ) -> Generator:
        """Like :meth:`accept`, but serves negotiations until one succeeds.

        A failed or abandoned negotiation (the initiator gave up and closed
        its service link, the relay restarted, ...) just loops back to
        waiting for the initiator's next service link.
        """
        node = self.node

        def attempt(_i: int) -> Generator:
            _peer, service = yield from node.accept_service_link()
            try:
                channel = yield from self.accept(service)
            except BaseException:
                service.close()
                raise
            service.close()
            return channel

        return (
            yield from retrying(
                node.sim,
                attempt,
                policy,
                retry_on=TRANSIENT_ERRORS,
                key=f"{node.node_id}:accept",
                name="broker.accept",
            )
        )

    # -- helpers --------------------------------------------------------------
    def shared_endpoint(self, peer_id: str) -> Optional[MuxEndpoint]:
        """The live shared mux endpoint to ``peer_id``, whichever role
        established it — or ``None``.

        Mux channels open from either end of the carrier link, so a
        caller holding an endpoint this node *responded* on can still
        initiate new channels over it (the IPL fast-open path).
        """
        cached = self._shared_mux.get(peer_id)
        if cached is not None and cached[1].alive:
            return cached[1]
        for (pid, _eid), endpoint in self._shared_mux_resp.items():
            if pid == peer_id and endpoint.alive:
                return endpoint
        return None

    def _check_fidelity(self, parsed: StackSpec) -> None:
        """Fail fast when a stack is pinned to a tier this factory isn't.

        Real driver assembly only exists on the packet tier; flow-tier
        transfers are :class:`~repro.simnet.flow.FluidFlow` rate
        processes parameterized from the same spec (see
        :func:`~repro.simnet.flow.spec_flow_params`).
        """
        if self.fidelity != "packet":
            raise StackSpecError(
                f"factory pinned to fidelity {self.fidelity!r} cannot "
                "assemble driver stacks; flow-tier transfers are started "
                "with FlowNetwork.start_flow(**spec_flow_params(spec))"
            )
        if parsed.fidelity != self.fidelity:
            raise StackSpecError(
                f"spec {parsed!r} is pinned to fidelity "
                f"{parsed.fidelity!r} but this factory assembles "
                f"{self.fidelity!r} stacks"
            )

    def _mux_endpoint(
        self,
        raw: Link,
        parsed: StackSpec,
        role: str,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Wrap the single brokered link in a running mux endpoint.

        ``close_when_idle`` ties the endpoint's (and the physical link's)
        lifetime to its channels: when both sides have closed every
        channel, the carrier link is torn down too, mirroring what
        closing a dedicated per-conversation link used to do.
        """
        layer = parsed.mux
        window = int(layer.get("win", DEFAULT_WINDOW))
        endpoint = yield from MuxEndpoint.establish(
            raw,
            role,
            window=window,
            scheduler=make_scheduler(str(layer.get("sched", "rr"))),
            node=self.node.node_id,
            flight=getattr(self.node, "flight", None),
            ctx=ctx,
        )
        endpoint.close_when_idle = True
        return endpoint

    def _standalone_window(self, parsed: StackSpec) -> int:
        """This node's replay-window offer for one new standalone session.

        The node-wide :data:`SESSION_BUFFER_BUDGET` is divided across the
        sessions that would hold replay buffers once this negotiation
        lands, floored at :data:`MIN_SESSION_WINDOW`, and never above the
        spec's own ``buf=`` cap — so the first session on an idle node
        still gets its full configured window, while the N-th concurrent
        one gets a 1/(N+1) share instead of over-retaining.
        """
        config = SessionConfig.from_layer(parsed.session)
        live = sum(
            1
            for session in self.node.sessions
            if session.state not in ("finished", "failed")
        )
        share = SESSION_BUFFER_BUDGET // (live + parsed.links_required)
        return min(config.max_buffer, max(MIN_SESSION_WINDOW, share))

    def _wrap_sessions(
        self,
        parsed: StackSpec,
        links: list,
        sids: list,
        role: str,
        peer_info: Optional[EndpointInfo],
        methods: Optional[list],
        peer_id: str = "",
        window: int = 0,
        ctx: Optional[TraceContext] = None,
    ) -> list:
        layer = parsed.session
        if layer is None:
            return links
        config = SessionConfig.from_layer(layer)
        if parsed.mux is not None:
            # Session-under-mux: the replay buffer may never outgrow the
            # channel credit window, so per-session memory is bounded by
            # the receiver's grant even under many concurrent sessions
            # (the ROADMAP per-session flow-control item).
            window = int(parsed.mux.get("win", DEFAULT_WINDOW))
            config = replace(config, max_buffer=min(config.max_buffer, window))
        elif window:
            # Standalone: the window negotiated on the service link (the
            # min of both budget shares) bounds the replay buffer.
            config = replace(config, max_buffer=min(config.max_buffer, window))
            obs.metrics().gauge(
                "session.negotiated_window", node=self.node.node_id
            ).set(config.max_buffer)
        wrapped = []
        for link, sid in zip(links, sids):
            reconnect = None
            if role == SessionLink.INITIATOR:
                peer_id = peer_info.node_id
                reconnect = self._session_reconnect(peer_info, methods)
            session = SessionLink(
                link,
                sid,
                role,
                config=config,
                reconnect=reconnect,
                peer=peer_id,
                ctx=ctx or getattr(link, "ctx", None),
                node=self.node.node_id,
                flight=getattr(self.node, "flight", None),
            )
            self.node.sessions.add(session)
            wrapped.append(session)
        return wrapped

    def _session_reconnect(
        self, peer_info: EndpointInfo, methods: Optional[list]
    ) -> callable:
        """The re-establishment closure a session runs after a fault: wait
        for a live relay registration, open a ``sessres:<sid>``-tagged
        service link, and re-run the Figure 4 decision tree to the same
        peer (restricted to the same ``methods`` as the original link)."""
        node = self.node

        def reconnect(session: SessionLink) -> Generator:
            yield from node.relay_client.wait_connected(timeout=12.0)
            service = yield from node.open_resume_link(peer_info.node_id, session.sid)
            try:
                # re-establishment inherits the recovery's trace context, so
                # its establish.attempt spans nest under the resume span
                link = yield from node.broker.initiate(
                    service, peer_info, methods, ctx=session._resume_ctx
                )
            except BaseException:
                service.close()
                raise
            service.close()
            return link

        return reconnect

    def _maybe_tls(self, stack, client: bool) -> Generator:
        tls = find_driver(stack, TlsDriver)
        if tls is None:
            return
        if self.tls_config is None:
            raise ValueError("stack contains a tls layer but no TlsConfig given")
        cfg = self.tls_config
        now = self.node.sim.now
        if client:
            yield from tls.handshake_client(
                trust_anchors=cfg.trust_anchors,
                identity=cfg.identity,
                expected_server=cfg.expected_peer,
                now=now,
            )
        else:
            if cfg.identity is None:
                raise ValueError("TLS server side needs an identity")
            yield from tls.handshake_server(
                identity=cfg.identity,
                trust_anchors=cfg.trust_anchors,
                require_client_auth=cfg.require_client_auth,
                now=now,
            )
