"""GridNode: one node's complete connectivity machinery.

Bundles what every participating process needs (paper §5.2): a relay
registration (bootstrap + service links), a routed-link dispatcher, an
address-reflector handle, and a :class:`~repro.core.brokering.Broker` for
data-link negotiation.  The IPL runtime builds on this; core-level tests
and examples use it directly.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from .. import obs
from ..obs.flight import FlightRecorder
from ..simnet.packet import Addr
from .addressing import EndpointInfo
from .brokering import Broker
from .dispatch import SERVICE_TAG, RoutedDispatcher, resume_tag
from .links import Link
from .relay import RelayClient
from .session import SessionRegistry

__all__ = ["GridNode"]


class GridNode:
    """A node wired into the grid's connectivity fabric.

    Parameters
    ----------
    host:
        The simulated host.
    info:
        This node's :class:`EndpointInfo` (``info.node_id`` is the identity
        under which the node registers with the relay).
    relay_addr:
        The relay server's address (bootstrap rendezvous) — or, for a
        relay *mesh*, a mapping of relay id -> address: the node then
        registers with every relay through a
        :class:`~repro.mesh.client.MeshRelayClient` and routed links are
        route-table picked (with mid-stream failover).
    reflector_addr:
        The address reflector (defaults to the relay host, port 3478).
    connector:
        Optional custom connector for reaching the relay (e.g. via SOCKS on
        severely firewalled sites).
    """

    def __init__(
        self,
        host,
        info: EndpointInfo,
        relay_addr,
        reflector_addr: Optional[Addr] = None,
        connector: Optional[Callable] = None,
        auto_reconnect: bool = False,
        mesh_seed=0,
        mesh_config=None,
    ):
        self.host = host
        self.sim = host.sim
        self.info = info
        self.relay_addr = relay_addr
        if isinstance(relay_addr, dict):
            primary = relay_addr[min(relay_addr)]
            self.reflector_addr = reflector_addr or (primary[0], 3478)
            from ..mesh.client import MeshRelayClient

            self.relay_client = MeshRelayClient(
                host,
                info.node_id,
                relay_addr,
                connector=connector,
                seed=mesh_seed,
                config=mesh_config,
            )
        else:
            self.reflector_addr = reflector_addr or (relay_addr[0], 3478)
            self.relay_client = RelayClient(
                host,
                info.node_id,
                relay_addr,
                connector=connector,
                auto_reconnect=auto_reconnect,
            )
        self.dispatcher: Optional[RoutedDispatcher] = None
        self.broker: Optional[Broker] = None
        #: always-on black box: last ~512 lifecycle notes, dumped into
        #: postmortem bundles when a chaos invariant fails
        self.flight = FlightRecorder(info.node_id, clock=lambda: host.sim.now)
        #: live survivable sessions (responder side serves re-attachment)
        self.sessions = SessionRegistry(self)
        self._sid_seq = 0

    @property
    def node_id(self) -> str:
        return self.info.node_id

    def start(self) -> Generator:
        """Register with the relay; wire the dispatcher and broker."""
        yield from self.relay_client.connect()
        obs.metrics().gauge("node.up", node=self.info.node_id).set(1)
        self.dispatcher = RoutedDispatcher(self.relay_client)
        self.broker = Broker(
            self.host,
            self.info,
            relay_client=self.relay_client,
            dispatcher=self.dispatcher,
            reflector=self.reflector_addr,
            flight=self.flight,
        )
        return self

    # -- service links ------------------------------------------------------
    def open_service_link(self, peer_id: str) -> Generator:
        """Open a service link to ``peer_id`` (routed via the relay).

        Routed messages are the bootstrap-capable method (Table 1), so the
        service link always goes through the relay — "In the presence of
        firewalls, NetIbis chooses routed messages for service links."
        """
        link = yield from self.relay_client.open_link(peer_id, payload=SERVICE_TAG)
        return link

    def accept_service_link(self) -> Generator:
        """Wait for a peer-initiated service link; returns (peer_id, link)."""
        link = yield from self.dispatcher.accept_service()
        return link.peer, link

    # -- survivable sessions -------------------------------------------------
    def next_session_id(self) -> int:
        """A deterministic 64-bit session id unique to this node."""
        self._sid_seq += 1
        base = int.from_bytes(self.node_id.encode()[:6].ljust(6, b"\0"), "big")
        return (base << 16) | (self._sid_seq & 0xFFFF)

    def open_resume_link(self, peer_id: str, sid: int) -> Generator:
        """Open the service link a session uses to re-establish itself."""
        link = yield from self.relay_client.open_link(peer_id, payload=resume_tag(sid))
        return link

    # -- data links ------------------------------------------------------------
    def connect_data(
        self,
        service_link: Link,
        peer_info: EndpointInfo,
        methods: Optional[list[str]] = None,
    ) -> Generator:
        """Initiate a brokered data link over an existing service link."""
        link = yield from self.broker.initiate(service_link, peer_info, methods)
        return link

    def accept_data(self, service_link: Link) -> Generator:
        """Serve one data-link negotiation on ``service_link``."""
        link = yield from self.broker.respond(service_link)
        return link

    def stop(self) -> None:
        obs.metrics().gauge("node.up", node=self.info.node_id).set(0)
        self.sessions.close()
        self.relay_client.close()
