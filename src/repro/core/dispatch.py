"""Routed-link dispatching: separates service channels from brokered data
channels arriving at a node's relay client.

Every routed channel is opened with a purpose tag (see
:meth:`~repro.core.relay.RelayClient.open_link`):

* ``b"service"`` — a peer establishing its service link to us.
* ``b"data:<nonce>"`` — a brokered data-link attempt falling back to
  routed messages; matched to the negotiation that expects it.
* ``b"sessres:<sid>"`` — a session initiator re-establishing a broken
  data link (see :mod:`~repro.core.session`); handed to the node's
  :class:`~repro.core.session.SessionRegistry`.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simnet.engine import Event
from .relay import RelayClient, RoutedLink

__all__ = ["RoutedDispatcher", "SERVICE_TAG", "RESUME_PREFIX", "data_tag", "resume_tag"]

SERVICE_TAG = b"service"
RESUME_PREFIX = b"sessres:"


def data_tag(nonce: int) -> bytes:
    return b"data:%016x" % nonce


def resume_tag(sid: int) -> bytes:
    return RESUME_PREFIX + b"%016x" % sid


class RoutedDispatcher:
    """Accept-loop over a relay client, routing channels by purpose tag."""

    def __init__(self, client: RelayClient):
        self.client = client
        self.sim = client.sim
        self._service_queue: list[RoutedLink] = []
        self._service_waiters: list[Event] = []
        self._resume_queue: list[RoutedLink] = []
        self._resume_waiters: list[Event] = []
        self._data_waiters: dict[bytes, Event] = {}
        self._early_data: dict[bytes, RoutedLink] = {}
        self._proc = self.sim.process(self._loop(), name=f"dispatch-{client.node_id}")

    def _loop(self) -> Generator:
        while True:
            link = yield from self.client.accept_link()
            tag = link.open_payload
            if tag.startswith(b"data:"):
                waiter = self._data_waiters.pop(tag, None)
                if waiter is not None:
                    waiter.succeed(link)
                else:
                    self._early_data[tag] = link
            elif tag.startswith(RESUME_PREFIX):
                if self._resume_waiters:
                    self._resume_waiters.pop(0).succeed(link)
                else:
                    self._resume_queue.append(link)
            else:
                # Default: a service channel.
                if self._service_waiters:
                    self._service_waiters.pop(0).succeed(link)
                else:
                    self._service_queue.append(link)

    def accept_service(self) -> Generator:
        """Wait for a peer-initiated service channel."""
        ev = self.sim.event()
        if self._service_queue:
            ev.succeed(self._service_queue.pop(0))
        else:
            self._service_waiters.append(ev)
        link = yield ev
        return link

    def accept_resume(self) -> Generator:
        """Wait for a peer re-establishing a broken session link."""
        ev = self.sim.event()
        if self._resume_queue:
            ev.succeed(self._resume_queue.pop(0))
        else:
            self._resume_waiters.append(ev)
        link = yield ev
        return link

    def await_data(self, nonce: int, timeout: float = 30.0) -> Generator:
        """Wait for the routed data channel of negotiation ``nonce``."""
        tag = data_tag(nonce)
        early = self._early_data.pop(tag, None)
        if early is not None:
            return early
        ev = self.sim.event()
        self._data_waiters[tag] = ev
        expiry = self.sim.timeout(timeout)
        from ..simnet.engine import any_of

        result = yield any_of(self.sim, [ev, expiry])
        if ev in result:
            return result[ev]
        self._data_waiters.pop(tag, None)
        raise TimeoutError(f"routed data channel for nonce {nonce} never arrived")
