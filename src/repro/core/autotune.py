"""Parameter auto-tuning (paper §8 future work).

"Also, parameter adaptation, like selection of the optimal number of
parallel TCP streams or the dynamic enabling or disabling of compression
will then become possible."  Adaptive compression lives in
:mod:`~repro.core.utilization.adaptive`; this module derives the parallel
stream count from link characteristics.

The rule: a single stream's throughput is capped at ``rcvbuf / RTT``
(§4.2), so filling a pipe of a given bandwidth-delay product needs
``ceil(BDP / rcvbuf)`` streams; a headroom factor covers the average
window being below its peak (congestion avoidance sawtooth) and loss
recovery.
"""

from __future__ import annotations

import math

__all__ = ["recommend_streams", "estimate_bdp"]

#: sawtooth/recovery headroom: the long-run average congestion window sits
#: around 3/4 of its peak, so over-provision by the inverse
HEADROOM = 4.0 / 3.0


def estimate_bdp(capacity: float, rtt: float) -> float:
    """Bandwidth-delay product in bytes."""
    if capacity <= 0 or rtt <= 0:
        raise ValueError("capacity and rtt must be positive")
    return capacity * rtt


def recommend_streams(
    capacity: float,
    rtt: float,
    rcvbuf: int = 65536,
    max_streams: int = 16,
) -> int:
    """Number of parallel TCP streams to fill the given path.

    ``capacity`` in bytes/s, ``rtt`` in seconds, ``rcvbuf`` the per-stream
    OS socket buffer limit.
    """
    if rcvbuf <= 0:
        raise ValueError("rcvbuf must be positive")
    bdp = estimate_bdp(capacity, rtt)
    streams = math.ceil(bdp * HEADROOM / rcvbuf)
    return max(1, min(streams, max_streams))
