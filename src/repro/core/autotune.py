"""Deprecated: parameter auto-tuning moved to :mod:`repro.tune.planner`.

The one-shot formulas (``estimate_bdp``, ``recommend_streams``,
``HEADROOM``) were absorbed by the closed-loop tuner's planner, which
extends ``recommend_streams`` with a per-path loss-derived headroom.
This shim keeps the old import path alive; new code should import from
:mod:`repro.tune` directly.
"""

from __future__ import annotations

import warnings

__all__ = ["recommend_streams", "estimate_bdp", "HEADROOM"]

_MOVED = {"recommend_streams", "estimate_bdp", "HEADROOM", "loss_headroom"}


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.core.autotune.{name} moved to repro.tune.planner; "
            "update imports (this shim will be removed)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..tune import planner

        return getattr(planner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
