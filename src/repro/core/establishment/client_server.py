"""Standard TCP client/server establishment (paper §3.1, Figure 1 left).

The preferred method whenever the responder can accept unsolicited inbound
connections: native TCP, no brokering beyond learning the listener address,
no relay in the path.
"""

from __future__ import annotations

from typing import Generator, Optional

from ... import obs
from ...obs import TraceContext
from ...simnet.packet import Addr
from ...simnet.sockets import connect, listen
from ...simnet.tcp import TcpConfig
from ..links import TcpLink
from .base import CLIENT_SERVER
from .verify import verify_initiator, verify_responder

__all__ = ["open_listener", "connect_and_verify", "accept_and_verify"]


def open_listener(host, port: int = 0):
    """Responder side: open an ephemeral listener; returns it (addr known)."""
    return listen(host, port, backlog=4)


def connect_and_verify(
    host,
    addr: Addr,
    nonce: int,
    config: Optional[TcpConfig] = None,
    ctx: Optional[TraceContext] = None,
) -> Generator:
    """Initiator side: dial the listener, run the cookie exchange."""
    sock = yield from connect(host, addr, config=config)
    link = TcpLink(sock, CLIENT_SERVER)
    try:
        yield from verify_initiator(link, nonce)
    except Exception:
        link.abort()
        raise
    obs.event(
        "establish.link", ctx=ctx, method=CLIENT_SERVER, role="initiator"
    )
    return link


def accept_and_verify(
    listener, nonce: int, ctx: Optional[TraceContext] = None
) -> Generator:
    """Responder side: accept one connection, run the cookie exchange."""
    sock = yield from listener.accept()
    link = TcpLink(sock, CLIENT_SERVER)
    try:
        yield from verify_responder(link, nonce)
    except Exception:
        link.abort()
        raise
    obs.event(
        "establish.link", ctx=ctx, method=CLIENT_SERVER, role="responder"
    )
    return link
