"""The Figure 4 decision tree.

"To choose a communication establishment method, the first criterion is
connectivity. ... The second criterion is performance. ... Finally, methods
without brokering are preferable.  When combining these criteria, we get
the following precedence list: client/server TCP, TCP splicing, TCP proxy,
routed messages.  The best connection establishment method is the first
possible (according to firewalls, NAT and bootstrap) from this list."

:func:`feasible_methods` returns the full ordered candidate list (the
brokering layer walks it, falling back when an attempt fails — e.g. a
standards-noncompliant NAT that kills splicing); :func:`choose_method`
returns just the head of that list, which is the Figure 4 answer.
"""

from __future__ import annotations

from typing import Optional

from ..addressing import EndpointInfo
from .base import (
    ALL_METHODS,
    CLIENT_SERVER,
    PRECEDENCE,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    EstablishmentError,
)

__all__ = ["feasible_methods", "choose_method", "table1_matrix"]


def _client_server_possible(
    initiator: EndpointInfo, responder: EndpointInfo, bootstrap: bool
) -> bool:
    # The responder must accept unsolicited inbound connections: no NAT, and
    # no firewall (unless the target port range is explicitly opened).
    if responder.behind_nat:
        return False
    if responder.behind_firewall and not responder.open_ports:
        return False
    return True


def _splicing_possible(
    initiator: EndpointInfo, responder: EndpointInfo, bootstrap: bool
) -> bool:
    if bootstrap:
        return False  # needs brokering, hence a pre-existing service link
    return initiator.can_splice and responder.can_splice


def _proxy_possible(
    initiator: EndpointInfo, responder: EndpointInfo, bootstrap: bool
) -> bool:
    if bootstrap:
        return False  # server-behind-proxy needs an information exchange
    # A proxy on either side suffices: CONNECT toward an accepting peer, or
    # BIND on the responder's proxy for a NATted/firewalled responder.
    if responder.accepts_inbound and initiator.socks_proxy is not None:
        return True
    if responder.socks_proxy is not None:
        return True
    return False


def _routed_possible(
    initiator: EndpointInfo, responder: EndpointInfo, bootstrap: bool
) -> bool:
    return True  # every node that could register with the relay is reachable


_FEASIBILITY = {
    CLIENT_SERVER: _client_server_possible,
    SPLICING: _splicing_possible,
    SOCKS_PROXY: _proxy_possible,
    ROUTED: _routed_possible,
}


def feasible_methods(
    initiator: EndpointInfo, responder: EndpointInfo, bootstrap: bool = False
) -> list[str]:
    """All feasible methods, best first (the Figure 4 precedence order)."""
    return [
        name
        for name in PRECEDENCE
        if _FEASIBILITY[name](initiator, responder, bootstrap)
    ]


def choose_method(
    initiator: EndpointInfo, responder: EndpointInfo, bootstrap: bool = False
) -> str:
    """The single best method (head of the precedence list) — Figure 4."""
    methods = feasible_methods(initiator, responder, bootstrap)
    if not methods:
        raise EstablishmentError(
            f"no establishment method possible between {initiator.node_id} "
            f"and {responder.node_id}"
        )
    return methods[0]


def table1_matrix() -> dict[str, dict[str, object]]:
    """Regenerate Table 1 from the method declarations.

    Returns ``{method: {property: value}}`` in the paper's row order.
    """
    matrix = {}
    for name in PRECEDENCE:
        props = ALL_METHODS[name]
        matrix[name] = {
            "crosses_firewalls": props.crosses_firewalls,
            "nat_support": props.nat_support,
            "for_bootstrap": props.for_bootstrap,
            "native_tcp": props.native_tcp,
            "relayed": props.relayed,
            "needs_brokering": props.needs_brokering,
        }
    return matrix
