"""SOCKS-proxied establishment (paper §3.3).

Two shapes, both producing a native-TCP (but relayed) link:

* **CONNECT** — the initiator's site proxy dials an accepting responder
  ("a SOCKS proxy allows an outgoing connection to cross a firewall; it
  also allows hosts with private IP addresses ... to connect to the
  outside").
* **BIND** — the responder is itself behind the proxy: it asks its proxy
  for a dynamically allocated inbound port and sends that address to the
  initiator over the service link ("clients have to connect to a
  dynamically-allocated port number on the proxy itself, which requires
  some information exchange").
"""

from __future__ import annotations

from typing import Generator, Optional

from ... import obs
from ...obs import TraceContext
from ...simnet.packet import Addr
from ...simnet.sockets import SimSocket, connect
from ...simnet.socks import socks_accept_bound, socks_bind, socks_connect
from ..links import TcpLink
from .base import SOCKS_PROXY
from .verify import verify_initiator, verify_responder

__all__ = [
    "connect_direct_and_verify",
    "connect_via_proxy_and_verify",
    "bind_via_proxy",
    "await_bound_and_verify",
]


def connect_via_proxy_and_verify(
    host, proxy: Addr, target: Addr, nonce: int,
    ctx: Optional[TraceContext] = None,
) -> Generator:
    """Initiator: CONNECT through ``proxy`` to ``target`` and verify."""
    sock = yield from socks_connect(host, proxy, target, ctx=ctx)
    link = TcpLink(sock, SOCKS_PROXY, relayed=True)
    try:
        yield from verify_initiator(link, nonce)
    except Exception:
        link.abort()
        raise
    obs.event("establish.link", ctx=ctx, method=SOCKS_PROXY, role="initiator")
    return link


def connect_direct_and_verify(
    host, target: Addr, nonce: int, ctx: Optional[TraceContext] = None
) -> Generator:
    """Initiator without a proxy dialing a proxy-bound address directly."""
    sock = yield from connect(host, target)
    link = TcpLink(sock, SOCKS_PROXY, relayed=True)
    try:
        yield from verify_initiator(link, nonce)
    except Exception:
        link.abort()
        raise
    obs.event("establish.link", ctx=ctx, method=SOCKS_PROXY, role="initiator")
    return link


def bind_via_proxy(host, proxy: Addr) -> Generator:
    """Responder: BIND on its proxy; returns (control_sock, bound_addr)."""
    sock, bound = yield from socks_bind(host, proxy)
    return sock, bound


def await_bound_and_verify(
    sock: SimSocket, nonce: int, ctx: Optional[TraceContext] = None
) -> Generator:
    """Responder: wait for the initiator on the bound port and verify."""
    yield from socks_accept_bound(sock)
    link = TcpLink(sock, SOCKS_PROXY, relayed=True)
    try:
        yield from verify_responder(link, nonce)
    except Exception:
        link.abort()
        raise
    obs.event("establish.link", ctx=ctx, method=SOCKS_PROXY, role="responder")
    return link
