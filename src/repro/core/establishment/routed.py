"""Routed-messages establishment: the last-resort fallback (paper §3.3).

A data path through the relay always works for any node that managed to
register, but it is message-based (not native TCP) and every byte crosses
the relay, so "routed messages are not supposed to be used for data,
except in extreme cases when there is no other connection method
possible."
"""

from __future__ import annotations

from typing import Generator, Optional

from ... import obs
from ...obs import TraceContext
from ..relay import RelayClient, RoutedLink
from .base import ROUTED
from .verify import verify_initiator, verify_responder

__all__ = ["open_routed_and_verify", "accept_routed_and_verify"]


def open_routed_and_verify(
    client: RelayClient, peer_id: str, nonce: int,
    ctx: Optional[TraceContext] = None,
) -> Generator:
    """Initiator: open a routed channel to ``peer_id`` and verify."""
    link = yield from client.open_link(peer_id, ctx=ctx)
    try:
        yield from verify_initiator(link, nonce)
    except Exception:
        link.close()
        raise
    obs.event("establish.link", ctx=ctx, method=ROUTED, role="initiator")
    return link


def accept_routed_and_verify(
    link: RoutedLink, nonce: int, ctx: Optional[TraceContext] = None
) -> Generator:
    """Responder: verify an incoming routed channel."""
    try:
        yield from verify_responder(link, nonce)
    except Exception:
        link.close()
        raise
    obs.event("establish.link", ctx=ctx, method=ROUTED, role="responder")
    return link
