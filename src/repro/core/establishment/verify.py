"""Post-establishment verification.

After a brokered attempt produces a raw connection, both ends exchange
cookies derived from the negotiation nonce.  This confirms that (a) the
connection reached the intended peer (not a stale or colliding socket) and
(b) *both* directions work — a half-open spliced connect through a
standards-noncompliant NAT (one side established, the other reset) fails
here and triggers fall-back, matching the paper's observed behaviour (§6).
"""

from __future__ import annotations

import hashlib
from typing import Generator

__all__ = ["initiator_cookie", "responder_cookie", "verify_initiator", "verify_responder", "VerifyError", "COOKIE_LEN"]

COOKIE_LEN = 16


class VerifyError(Exception):
    """The peer did not present the expected cookie."""


def initiator_cookie(nonce: int) -> bytes:
    return hashlib.sha256(b"init" + nonce.to_bytes(8, "big")).digest()[:COOKIE_LEN]


def responder_cookie(nonce: int) -> bytes:
    return hashlib.sha256(b"resp" + nonce.to_bytes(8, "big")).digest()[:COOKIE_LEN]


def verify_initiator(stream, nonce: int) -> Generator:
    """Initiator half of the cookie exchange (send, then expect)."""
    yield from stream.send_all(initiator_cookie(nonce))
    got = yield from stream.recv_exactly(COOKIE_LEN)
    if got != responder_cookie(nonce):
        raise VerifyError("responder cookie mismatch")


def verify_responder(stream, nonce: int) -> Generator:
    """Responder half of the cookie exchange (expect, then send)."""
    got = yield from stream.recv_exactly(COOKIE_LEN)
    if got != initiator_cookie(nonce):
        raise VerifyError("initiator cookie mismatch")
    yield from stream.send_all(responder_cookie(nonce))
