"""TCP splicing: brokered simultaneous open (paper §3.2, Figures 1/2).

Both endpoints invoke ``connect`` at (roughly) the same time toward each
other's externally visible (ip, port) pair.  Stateful firewalls on both
sides record the outgoing SYN and therefore admit the peer's crossing SYN.
SYN retransmission absorbs the skew between the two sides' start times, so
no tight clock synchronization is required.

NAT traversal: an endpoint behind a *predictable* (endpoint-independent)
NAT first probes its external mapping for the chosen local port against an
address reflector — the probe connection is kept open so the mapping stays
alive — and advertises the observed external address to the peer via the
service link.  Symmetric NATs make the advertised mapping wrong and broken
NATs reset the crossing SYN; both surface as a failed or unverifiable
connect, and the brokering layer falls back (§6).
"""

from __future__ import annotations

from typing import Generator, Optional

from ... import obs
from ...obs import TraceContext
from ...simnet.packet import Addr
from ...simnet.sockets import SimSocket, connect, connect_simultaneous
from ...simnet.tcp import TcpConfig
from ..links import TcpLink
from ..retry import RetryExhausted, RetryPolicy, retrying
from .base import SPLICING
from .verify import verify_initiator, verify_responder

__all__ = ["SPLICE_CONFIG", "SPLICE_RETRY", "prepare_endpoint", "splice_and_verify"]

#: connect settings for spliced attempts: give up reasonably fast so a
#: failed attempt falls back without stalling establishment for long
SPLICE_CONFIG = TcpConfig(syn_rto=0.4, syn_retries=4)

#: retry policy for a refused/reset spliced connect: the crossing-SYN
#: window only needs to be hit once, so retry quickly, without jitter —
#: both sides must keep their start times roughly aligned (§3.2)
SPLICE_RETRY = RetryPolicy(
    max_attempts=3, base_delay=0.35, multiplier=1.0, max_delay=0.35, jitter=0.0
)


def prepare_endpoint(
    host,
    behind_nat: bool,
    reflector: Optional[Addr],
) -> Generator:
    """Pick a local data port and learn its external address.

    Returns ``(lport, external_addr, probe_sock_or_None)``.  The caller
    must keep ``probe_sock`` open until splicing finishes (it pins the NAT
    mapping) and close it afterwards.
    """
    lport = host.tcp.allocate_port()
    # allocate_port marks it bound; we will connect with reuse=True.
    if not behind_nat:
        return lport, (host.ip, lport), None
    if reflector is None:
        raise ValueError("NAT traversal needs an address reflector")
    probe = yield from connect(host, reflector, lport=lport, reuse=True)
    raw = yield from probe.recv_exactly(32)
    ip, port = raw.decode().strip().split(":")
    return lport, (ip, int(port)), probe


def splice_and_verify(
    host,
    peer_addr: Addr,
    lport: int,
    nonce: int,
    initiator: bool,
    config: Optional[TcpConfig] = None,
    probe: Optional[SimSocket] = None,
    policy: RetryPolicy = SPLICE_RETRY,
    ctx: Optional[TraceContext] = None,
) -> Generator:
    """Run one side of the simultaneous open + cookie verification.

    A refused connect (the peer's RST because its socket isn't bound yet,
    or a middlebox reset) is retried under ``policy``: the crossing-SYN
    window only needs to be hit once.
    """
    from ...simnet.tcp import ConnectRefused, ConnectionReset

    class _RetrySplice(Exception):
        pass

    def attempt(_i: int) -> Generator:
        try:
            sock = yield from connect_simultaneous(
                host, peer_addr, lport, config=config or SPLICE_CONFIG, reuse=True
            )
        except (ConnectRefused, ConnectionReset) as exc:
            raise _RetrySplice(exc) from exc
        link = TcpLink(sock, SPLICING)
        try:
            if initiator:
                yield from verify_initiator(link, nonce)
            else:
                yield from verify_responder(link, nonce)
        except (EOFError, ConnectionReset) as exc:
            # Half-open connection torn down under us (e.g. a broken
            # NAT resetting the peer): retry, then give up.
            link.abort()
            raise _RetrySplice(exc) from exc
        except Exception:
            link.abort()
            raise
        obs.event(
            "establish.link", ctx=ctx, method=SPLICING,
            role="initiator" if initiator else "responder",
        )
        return link

    try:
        return (
            yield from retrying(
                host.sim,
                attempt,
                policy,
                retry_on=(_RetrySplice,),
                key=f"{host.ip}:{lport}->{peer_addr[0]}:{peer_addr[1]}",
                name="splice",
            )
        )
    except RetryExhausted as exc:
        cause = exc.last.__cause__ if exc.last is not None else None
        raise cause if cause is not None else ConnectRefused("splice failed")
    finally:
        if probe is not None:
            probe.close()
