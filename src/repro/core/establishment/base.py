"""Establishment method metadata — the rows of Table 1.

Each establishment method declares its properties; the decision tree
(:mod:`repro.core.establishment.decision`) consumes them, and the Table 1
benchmark regenerates the paper's summary matrix from these declarations
plus behavioural probes in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MethodProperties",
    "CLIENT_SERVER",
    "SPLICING",
    "SOCKS_PROXY",
    "ROUTED",
    "ALL_METHODS",
    "PRECEDENCE",
    "EstablishmentError",
]

CLIENT_SERVER = "client_server"
SPLICING = "splicing"
SOCKS_PROXY = "socks_proxy"
ROUTED = "routed"


class EstablishmentError(Exception):
    """No method succeeded in establishing the connection."""


@dataclass(frozen=True)
class MethodProperties:
    """One row of Table 1."""

    name: str
    #: may the connection cross firewalls blocking inbound requests?
    crosses_firewalls: bool
    #: NAT support: "no", "client" (only the client side may NAT),
    #: "partial" (predictable-mapping NATs only), or "yes"
    nat_support: str
    #: usable without any pre-existing connection between the hosts?
    for_bootstrap: bool
    #: does the method produce a native TCP socket?
    native_tcp: bool
    #: is the data forwarded by an application-level relay?
    relayed: bool
    #: does establishment require brokering/negotiation?
    needs_brokering: bool


#: Table 1, verbatim from the paper.
ALL_METHODS: dict[str, MethodProperties] = {
    CLIENT_SERVER: MethodProperties(
        name=CLIENT_SERVER,
        crosses_firewalls=False,
        nat_support="client",
        for_bootstrap=True,
        native_tcp=True,
        relayed=False,
        needs_brokering=False,
    ),
    SPLICING: MethodProperties(
        name=SPLICING,
        crosses_firewalls=True,
        nat_support="partial",
        for_bootstrap=False,
        native_tcp=True,
        relayed=False,
        needs_brokering=True,
    ),
    SOCKS_PROXY: MethodProperties(
        name=SOCKS_PROXY,
        crosses_firewalls=True,
        nat_support="yes",
        for_bootstrap=False,
        native_tcp=True,
        relayed=True,
        needs_brokering=True,
    ),
    ROUTED: MethodProperties(
        name=ROUTED,
        crosses_firewalls=True,
        nat_support="yes",
        for_bootstrap=True,
        native_tcp=False,
        relayed=True,
        needs_brokering=False,
    ),
}

#: "we get the following precedence list: client/server TCP, TCP splicing,
#: TCP proxy, routed messages" (paper §3.4)
PRECEDENCE = (CLIENT_SERVER, SPLICING, SOCKS_PROXY, ROUTED)
