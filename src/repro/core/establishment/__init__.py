"""Connection establishment methods (paper §3).

* :mod:`~repro.core.establishment.client_server` — standard handshake.
* :mod:`~repro.core.establishment.splicing` — simultaneous open.
* :mod:`~repro.core.establishment.proxy` — SOCKS CONNECT/BIND.
* :mod:`~repro.core.establishment.routed` — relay-routed messages.
* :mod:`~repro.core.establishment.decision` — the Figure 4 decision tree.
* :mod:`~repro.core.establishment.base` — Table 1 property declarations.
"""

from .base import (
    ALL_METHODS,
    CLIENT_SERVER,
    PRECEDENCE,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    EstablishmentError,
    MethodProperties,
)
from .decision import choose_method, feasible_methods, table1_matrix

__all__ = [
    "ALL_METHODS",
    "PRECEDENCE",
    "CLIENT_SERVER",
    "SPLICING",
    "SOCKS_PROXY",
    "ROUTED",
    "MethodProperties",
    "EstablishmentError",
    "choose_method",
    "feasible_methods",
    "table1_matrix",
]
