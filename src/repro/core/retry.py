"""Shared retry/backoff policy on the simulated clock.

The paper's establishment machinery has to survive transient wide-area
failures — a relay rebooting, a firewall dropping conntrack state, a peer
whose socket is not bound yet when our SYN lands (§3.2, §6).  Before this
module each call site grew its own ad-hoc loop with hard-coded constants;
now they all share one :class:`RetryPolicy` with jittered exponential
backoff.

Determinism: the jitter stream is drawn from ``random.Random`` seeded with
``f"{policy.seed}:{key}"``, the same convention the link model uses, so a
given (policy, key) pair always produces the same delay sequence and chaos
runs stay bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generator, Iterator, Optional, Tuple, Type

from .. import obs

__all__ = ["RetryPolicy", "RetryExhausted", "retrying"]


class RetryExhausted(Exception):
    """Every attempt allowed by the policy failed.

    ``last`` carries the exception of the final attempt.
    """

    def __init__(self, message: str, last: Optional[BaseException] = None):
        super().__init__(message)
        self.last = last


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff: delay_i = min(base * mult^i, cap) ± jitter.

    ``jitter`` is a fraction of the nominal delay; the actual delay for
    attempt ``i`` is drawn uniformly from ``[d * (1-jitter), d * (1+jitter)]``.
    ``max_attempts`` counts attempts, not retries (1 means "no retry").
    """

    max_attempts: int = 4
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.2
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def delays(self, key: str = "") -> Iterator[float]:
        """The deterministic backoff sequence for ``key`` (len: attempts-1)."""
        rng = random.Random(f"{self.seed}:{key}")
        nominal = self.base_delay
        for _ in range(self.max_attempts - 1):
            d = min(nominal, self.max_delay)
            if self.jitter:
                d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield d
            nominal *= self.multiplier


def retrying(
    sim,
    attempt: Callable[[int], Generator],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...],
    key: str = "",
    name: str = "retry",
) -> Generator:
    """Run ``attempt(i)`` under ``policy``, backing off between failures.

    ``attempt`` is called with the zero-based attempt index and must return
    a generator to drive.  Exceptions in ``retry_on`` trigger backoff and a
    ``<name>.retry`` obs event; anything else propagates immediately.  When
    the policy is exhausted, :class:`RetryExhausted` is raised carrying the
    last failure.
    """
    delays = policy.delays(key)
    last: Optional[BaseException] = None
    for i in range(policy.max_attempts):
        try:
            result = yield from attempt(i)
            if i:
                obs.event(f"{name}.recovered", key=key, attempt=i + 1)
            return result
        except retry_on as exc:
            last = exc
            delay = next(delays, None)
            if delay is None:
                break
            obs.event(
                f"{name}.retry",
                key=key,
                attempt=i + 1,
                delay=round(delay, 6),
                error=f"{type(exc).__name__}: {exc}",
            )
            yield sim.timeout(delay)
    obs.event(
        f"{name}.exhausted",
        key=key,
        attempts=policy.max_attempts,
        error=f"{type(last).__name__}: {last}" if last else "",
    )
    raise RetryExhausted(
        f"{name} {key!r}: {policy.max_attempts} attempts failed "
        f"(last: {type(last).__name__}: {last})",
        last=last,
    )
