"""Path monitoring and automated method selection (paper §8).

"The following step in our work is to combine these mechanisms with grid
resource management and information systems.  This combination will allow
the automated selection of the proper communication methods for given WAN
settings."

The paper's Figure 5 reserves a "Grid Monitoring / NWS" slot; this module
fills it:

* :class:`PathMonitor` actively probes an established path the way NWS
  does — round-trip probes for latency, a bulk transfer for achievable
  single-stream bandwidth, and an escalation probe over several streams
  when the single stream looks window-limited.
* :func:`select_spec` turns a :class:`PathEstimate` into a driver-stack
  specification: stream count from the BDP rule, compression from the
  CPU-rate/payload-ratio trade-off (or the adaptive driver when those are
  unknown).

Probing runs over ordinary brokered data links, so it works across any
middlebox combination the decision tree can handle.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Generator, Optional

from .. import obs
from ..simnet.packet import Addr
from ..tune.planner import recommend_streams
from .links import Link
from .node import GridNode
from .utilization.spec import StackSpec
from .wire import recv_frame, send_frame

__all__ = ["PathEstimate", "PathMonitor", "select_spec"]

P_PING = 0
P_BULK = 1
P_DONE = 2
P_BYE = 3

PING_ROUNDS = 3
#: slow-start warm-up prefix, excluded from the measurement
WARMUP_BYTES = 262_144
#: steady-state bytes the bandwidth is computed over
BULK_BYTES = 786_432


@dataclass
class PathEstimate:
    """Measured characteristics of one WAN path."""

    rtt: float
    #: achievable single-TCP-stream bandwidth, bytes/s
    single_stream: float
    #: estimated path capacity, bytes/s (>= single_stream)
    capacity: float
    #: streams used by the escalation probe (1 if not escalated)
    probe_streams: int = 1

    @property
    def window_limited(self) -> bool:
        return self.capacity > 1.25 * self.single_stream


class PathMonitor:
    """Active path measurement between two grid nodes."""

    def __init__(self, node: GridNode, rcvbuf: int = 65536):
        self.node = node
        self.sim = node.sim
        self.rcvbuf = rcvbuf

    # -- initiator --------------------------------------------------------
    def estimate(self, service_link: Link, peer_info) -> Generator:
        """Probe the path to ``peer_info``; returns a :class:`PathEstimate`.

        The responder must be running :meth:`serve` on its side of the
        service link.  When the single stream is window-limited, the probe
        escalates (4, then 8 streams) until aggregate throughput stops
        scaling near-linearly — i.e. the pipe, not the windows, is the
        limit.
        """
        with obs.span("path.probe", peer=peer_info.node_id):
            rtt, single = yield from self._probe_once(service_link, peer_info, 1)
            window_cap = self.rcvbuf / rtt
            if single < 0.75 * window_cap:
                estimate = PathEstimate(
                    rtt=rtt, single_stream=single, capacity=single
                )
            else:
                capacity = single
                streams_used = 1
                for streams in (4, 8):
                    _r, multi = yield from self._probe_once(
                        service_link, peer_info, streams
                    )
                    capacity = max(capacity, multi)
                    streams_used = streams
                    if multi < 0.6 * streams * single:
                        break  # scaling flattened: we are seeing the pipe
                estimate = PathEstimate(
                    rtt=rtt,
                    single_stream=single,
                    capacity=capacity,
                    probe_streams=streams_used,
                )
        self._publish(peer_info.node_id, estimate)
        return estimate

    def _publish(self, peer: str, estimate: PathEstimate) -> None:
        """Publish the probe's results through the metrics registry."""
        reg = obs.metrics()
        reg.counter("path.probes_total", peer=peer).inc()
        reg.gauge("path.rtt_seconds", peer=peer).set(estimate.rtt)
        reg.gauge("path.single_stream_bps", peer=peer).set(estimate.single_stream)
        reg.gauge("path.capacity_bps", peer=peer).set(estimate.capacity)

    def _probe_once(self, service_link: Link, peer_info, streams: int) -> Generator:
        yield from send_frame(service_link, struct.pack("!BH", P_BULK, streams))
        links = []
        for _ in range(streams):
            link = yield from self.node.broker.initiate(service_link, peer_info)
            links.append(link)
        try:
            # RTT: ping-pong on the first link.
            rtts = []
            for _ in range(PING_ROUNDS):
                t0 = self.sim.now
                yield from links[0].send_all(struct.pack("!B", P_PING))
                yield from links[0].recv_exactly(1)
                rtts.append(self.sim.now - t0)
            rtt = min(rtts)

            # Bulk: warm-up prefix (absorbs slow start) then a measured
            # steady-state tail, each acknowledged with a marker byte.  The
            # marker's return delay (~rtt/2) is identical for both markers,
            # so it cancels out of the difference.
            payload = b"\x00" * (WARMUP_BYTES + BULK_BYTES)
            procs = [
                self.sim.process(self._pump(link, payload)) for link in links
            ]
            from ..simnet.engine import all_of

            warm = yield from links[0].recv_exactly(1)
            t1 = self.sim.now
            done = yield from links[0].recv_exactly(1)
            t2 = self.sim.now
            if warm != bytes([P_DONE]) or done != bytes([P_DONE]):
                raise RuntimeError("probe protocol violation")
            yield all_of(self.sim, procs)
            bandwidth = (BULK_BYTES * streams) / max(t2 - t1, 1e-9)
            return rtt, bandwidth
        finally:
            for link in links:
                link.close()

    @staticmethod
    def _pump(link: Link, payload: bytes) -> Generator:
        yield from link.send_all(payload)

    # -- responder ----------------------------------------------------------
    def serve(self, service_link: Link) -> Generator:
        """Answer probe requests on ``service_link`` until BYE/EOF."""
        while True:
            try:
                frame = yield from recv_frame(service_link)
            except EOFError:
                return
            if not frame or frame[0] == P_BYE:
                return
            kind, streams = struct.unpack("!BH", frame)
            if kind != P_BULK:
                raise RuntimeError(f"unexpected probe request {kind}")
            links = []
            for _ in range(streams):
                link = yield from self.node.broker.respond(service_link)
                links.append(link)
            yield from self._serve_probe(links)
            for link in links:
                link.close()

    def _serve_probe(self, links: list) -> Generator:
        from ..simnet.engine import all_of

        # Pings on the first link.
        for _ in range(PING_ROUNDS):
            yield from links[0].recv_exactly(1)
            yield from links[0].send_all(struct.pack("!B", P_PING))
        # Warm-up, marker, measured tail, marker.
        procs = [
            self.sim.process(self._drain(link, WARMUP_BYTES)) for link in links
        ]
        yield all_of(self.sim, procs)
        yield from links[0].send_all(bytes([P_DONE]))
        procs = [
            self.sim.process(self._drain(link, BULK_BYTES)) for link in links
        ]
        yield all_of(self.sim, procs)
        yield from links[0].send_all(bytes([P_DONE]))

    @staticmethod
    def _drain(link: Link, nbytes: int) -> Generator:
        yield from link.recv_exactly(nbytes)

    def finish(self, service_link: Link) -> Generator:
        """Tell the responder's :meth:`serve` loop to stop."""
        yield from send_frame(service_link, bytes([P_BYE, 0, 0]))


def select_spec(
    estimate: PathEstimate,
    rcvbuf: int = 65536,
    compress_rate: Optional[float] = None,
    payload_ratio: Optional[float] = None,
    max_streams: int = 16,
) -> "StackSpec":
    """The §8 goal: pick a driver stack for the measured WAN settings.

    * stream count — the BDP rule over the measured capacity;
    * compression — enabled statically when the CPU can out-compress the
      wire (``compress_rate`` and the workload's ``payload_ratio`` known),
      disabled when it clearly cannot, and left to the *adaptive* driver
      when unknown.

    Returns a :class:`~repro.core.utilization.spec.StackSpec` whose
    ``label`` records the decision (the canonical string plus the reason),
    ready to use as an experiment axis.
    """
    streams = recommend_streams(
        estimate.capacity, estimate.rtt, rcvbuf, max_streams=max_streams
    )
    bottom = StackSpec.parallel(streams) if streams > 1 else StackSpec.tcp()
    if compress_rate is not None and payload_ratio is not None:
        wire = min(estimate.capacity, streams * (rcvbuf / estimate.rtt))
        compressed_throughput = min(compress_rate, payload_ratio * wire)
        if compressed_throughput > 1.1 * wire:
            spec, reason = bottom.with_compression(), "cpu-beats-wire"
        else:
            spec, reason = bottom, "wire-beats-cpu"
    else:
        spec, reason = bottom.with_adaptive(), "compressibility-unknown"
    spec = spec.with_label(f"{spec}#{reason}")
    obs.metrics().counter("monitor.spec_selections_total", spec=str(spec)).inc()
    obs.event(
        "monitor.spec_selected", spec=str(spec), streams=streams, reason=reason
    )
    return spec
