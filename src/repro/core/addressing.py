"""Endpoint descriptors: what the decision tree needs to know about a node.

An :class:`EndpointInfo` captures a node's connectivity situation — private
or public address, firewall, NAT flavour, observed external address (via a
STUN-style probe against the relay host), available SOCKS proxy.  The
brokering protocol exchanges these over the service link before choosing an
establishment method (paper §3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simnet.packet import Addr
from ..util.framing import ByteReader, ByteWriter

__all__ = ["EndpointInfo"]


@dataclass
class EndpointInfo:
    """Connectivity facts about one endpoint."""

    node_id: str
    #: the address the node itself sees (may be RFC 1918 private)
    local_ip: str
    #: True when a firewall blocks unsolicited inbound connections
    behind_firewall: bool = False
    #: True when the node is behind network address translation
    behind_nat: bool = False
    #: True when the NAT mapping is endpoint-independent / predictable
    #: (Table 1: splicing "works with NAT only with NAT gateways based on a
    #: known and predictable port translation rule"); None = unknown
    nat_predictable: Optional[bool] = None
    #: SOCKS proxy usable by this node, if any
    socks_proxy: Optional[Addr] = None
    #: ports (if any) explicitly opened in the site firewall
    open_ports: tuple = ()
    #: True when even *outgoing* direct connections are blocked (the
    #: "severe firewall" of §3.3 that only permits traffic via a proxy)
    outbound_blocked: bool = False

    @property
    def accepts_inbound(self) -> bool:
        """Can a remote client simply connect to this node?"""
        return not self.behind_firewall and not self.behind_nat

    @property
    def can_splice(self) -> bool:
        """Can this endpoint take part in a spliced (simultaneous) open?"""
        if self.outbound_blocked:
            return False  # its SYN never leaves the site
        if self.behind_nat:
            # Unknown predictability is resolved optimistically; the
            # brokered attempt will fall back on failure (§6: "we were less
            # lucky with some of the NAT implementations").
            return self.nat_predictable is not False
        return True

    # -- wire encoding (exchanged during brokering) -----------------------------
    def encode(self) -> bytes:
        w = (
            ByteWriter()
            .lp_str(self.node_id)
            .lp_str(self.local_ip)
            .u8(1 if self.behind_firewall else 0)
            .u8(1 if self.behind_nat else 0)
            .u8({None: 0, True: 1, False: 2}[self.nat_predictable])
        )
        if self.socks_proxy is not None:
            w.u8(1).lp_str(self.socks_proxy[0]).u16(self.socks_proxy[1])
        else:
            w.u8(0)
        w.u16(len(self.open_ports))
        for port in self.open_ports:
            w.u16(port)
        w.u8(1 if self.outbound_blocked else 0)
        return w.getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "EndpointInfo":
        r = ByteReader(data)
        node_id = r.lp_str()
        local_ip = r.lp_str()
        behind_firewall = bool(r.u8())
        behind_nat = bool(r.u8())
        nat_predictable = {0: None, 1: True, 2: False}[r.u8()]
        proxy = None
        if r.u8():
            proxy = (r.lp_str(), r.u16())
        open_ports = tuple(r.u16() for _ in range(r.u16()))
        outbound_blocked = bool(r.u8())
        return cls(
            node_id=node_id,
            local_ip=local_ip,
            behind_firewall=behind_firewall,
            behind_nat=behind_nat,
            nat_predictable=nat_predictable,
            socks_proxy=proxy,
            open_ports=open_ports,
            outbound_blocked=outbound_blocked,
        )
