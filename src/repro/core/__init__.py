"""The paper's contribution: integrated WAN communication.

* establishment — client/server, TCP splicing, SOCKS proxy, routed
  messages, selected by the Figure 4 decision tree and negotiated by the
  :class:`~repro.core.brokering.Broker` over service links.
* utilization — composable driver stacks: ``TCP_Block`` aggregation,
  parallel streams, zlib compression, TLS — applied orthogonally to
  however the link was established (§4, §5.2).
* :class:`~repro.core.relay.RelayServer` / ``RelayClient`` — routed
  messages through a gateway relay (Figure 3).
"""

from .addressing import EndpointInfo
from .brokering import ATTEMPT_TIMEOUT, Broker, BrokerError
from .dispatch import RoutedDispatcher, SERVICE_TAG, data_tag
from .establishment import (
    ALL_METHODS,
    CLIENT_SERVER,
    PRECEDENCE,
    ROUTED,
    SOCKS_PROXY,
    SPLICING,
    EstablishmentError,
    MethodProperties,
    choose_method,
    feasible_methods,
    table1_matrix,
)
from ..tune.planner import estimate_bdp, recommend_streams
from .links import Link, TcpLink
from .monitor import PathEstimate, PathMonitor, select_spec
from .relay import MAX_MSG, RelayClient, RelayError, RelayServer, RoutedLink
from .wire import WireError, recv_frame, send_frame

__all__ = [
    "EndpointInfo",
    "Broker",
    "BrokerError",
    "ATTEMPT_TIMEOUT",
    "RoutedDispatcher",
    "SERVICE_TAG",
    "data_tag",
    "Link",
    "TcpLink",
    "PathMonitor",
    "PathEstimate",
    "select_spec",
    "recommend_streams",
    "estimate_bdp",
    "RelayServer",
    "RelayClient",
    "RoutedLink",
    "RelayError",
    "MAX_MSG",
    "choose_method",
    "feasible_methods",
    "table1_matrix",
    "ALL_METHODS",
    "PRECEDENCE",
    "CLIENT_SERVER",
    "SPLICING",
    "SOCKS_PROXY",
    "ROUTED",
    "MethodProperties",
    "EstablishmentError",
    "WireError",
    "send_frame",
    "recv_frame",
]
