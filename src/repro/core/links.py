"""The link abstraction: an established byte stream, however it was built.

"For clarity, we use the term link for an established connection" (paper
§2).  A link exposes the same stream interface whether it is a native TCP
connection (client/server or spliced), a SOCKS-proxied connection, or a
virtual stream routed through the relay — that uniformity is what lets the
utilization drivers compose with any establishment method.

Every link carries the metadata of Table 1 (native TCP? relayed? which
method built it?) so benchmarks and the decision logic can inspect it.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..simnet.packet import Addr
from ..simnet.sockets import SimSocket

__all__ = [
    "Link",
    "TcpLink",
    "LinkClosed",
    "TRANSPORT_ERRORS",
    "transport_errors",
    "LINK_KIND_DATA",
    "LINK_KIND_SERVICE",
    "LINK_KIND_BOOTSTRAP",
]

LINK_KIND_DATA = "data"
LINK_KIND_SERVICE = "service"
LINK_KIND_BOOTSTRAP = "bootstrap"


class LinkClosed(Exception):
    """Operation on a closed link."""


def transport_errors() -> tuple:
    """The exception classes that mean "the underlying transport died".

    Computed lazily to avoid an import cycle (``relay`` imports ``links``).
    Session-layer recovery treats exactly these — plus :class:`EOFError`
    from a mid-frame stream end — as survivable transport failures.
    """
    from ..simnet.tcp import TcpError
    from .relay import RelayError

    return (EOFError, LinkClosed, TcpError, RelayError)


#: resolved on first attribute access via __getattr__ below
TRANSPORT_ERRORS: tuple


def __getattr__(name: str):
    if name == "TRANSPORT_ERRORS":
        return transport_errors()
    raise AttributeError(name)


class Link:
    """Abstract established connection (paper §2).

    Subclasses provide the generator-based stream operations.  Metadata:

    * ``method`` — establishment method name ("client_server", "splicing",
      "socks_proxy", "routed").
    * ``native_tcp`` — True when the bytes ride a dedicated TCP connection
      end to end (Table 1: only such links compose with all utilization
      methods; routed links are message-based).
    * ``relayed`` — True when an application-level relay forwards the data.
    """

    method: str = "abstract"
    native_tcp: bool = False
    relayed: bool = False

    @property
    def sim(self):
        """The simulator this link lives in."""
        raise NotImplementedError

    def send_all(self, data: bytes) -> Generator:
        raise NotImplementedError

    def recv(self, maxbytes: int) -> Generator:
        raise NotImplementedError

    def recv_exactly(self, n: int) -> Generator:
        chunks = []
        remaining = n
        while remaining > 0:
            data = yield from self.recv(remaining)
            if not data:
                raise EOFError(f"link ended with {remaining}/{n} bytes missing")
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)

    def close(self) -> None:
        raise NotImplementedError

    def abort(self) -> None:
        self.close()


class TcpLink(Link):
    """A link over a native TCP connection (direct or via SOCKS pipe)."""

    native_tcp = True

    def __init__(self, sock: SimSocket, method: str, relayed: bool = False):
        self._sock = sock
        self.method = method
        self.relayed = relayed

    @property
    def laddr(self) -> Addr:
        return self._sock.laddr

    @property
    def raddr(self) -> Addr:
        return self._sock.raddr

    @property
    def socket(self) -> SimSocket:
        return self._sock

    @property
    def sim(self):
        return self._sock.sim

    def send_all(self, data: bytes) -> Generator:
        yield from self._sock.send_all(data)

    def recv(self, maxbytes: int) -> Generator:
        return (yield from self._sock.recv(maxbytes))

    def close(self) -> None:
        self._sock.close()

    def abort(self) -> None:
        self._sock.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TcpLink {self.method} {self._sock.laddr}->{self._sock.raddr}>"
