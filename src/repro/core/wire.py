"""Length-prefixed frame IO over any Link/stream (generator-based)."""

from __future__ import annotations

from typing import Generator

from ..util.framing import ByteWriter

__all__ = ["send_frame", "recv_frame", "WireError", "MAX_FRAME"]

MAX_FRAME = 1 << 22  # 4 MiB: largest block any driver stack produces


class WireError(Exception):
    """Malformed frame on a stream."""


def send_frame(stream, body: bytes) -> Generator:
    """Write one u32-length-prefixed frame."""
    yield from stream.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


def recv_frame(stream, max_frame: int = MAX_FRAME) -> Generator:
    """Read one u32-length-prefixed frame."""
    header = yield from stream.recv_exactly(4)
    length = int.from_bytes(header, "big")
    if length > max_frame:
        raise WireError(f"oversized frame: {length} > {max_frame}")
    body = yield from stream.recv_exactly(length)
    return body
