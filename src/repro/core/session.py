"""Survivable sessions: mid-stream link recovery with offset negotiation.

The paper separates connection *establishment* from link *utilization*
(§3–§4), but an established link still dies with the one physical
connection it started on: a NAT table flush, a relay crash or an abrupt
peer drop mid-transfer severs the stream and the bytes in flight are
gone.  GridFTP answers this with restart markers and MPWide with
reconnecting wide-area paths; this module is the reproduction's version
of that cure.

:class:`SessionLink` wraps any established data :class:`~repro.core.links.Link`
with

* a session id and per-direction delivered-byte counters,
* a bounded replay buffer of unacknowledged bytes, trimmed by periodic
  cumulative acks carried on the same stream (control frames interleave
  with data frames),
* transparent re-establishment on transport error: the initiator re-runs
  the decision-tree factory (through the shared
  :class:`~repro.core.retry.RetryPolicy` backoff), sends
  ``RESUME <sid, rx_off>``, the responder's :class:`SessionRegistry`
  re-attaches the surviving session state, both sides trim their replay
  buffers to the peer's delivered offset and retransmit the rest.

The logical stream above (a utilization driver stack, an IPL port
channel) never observes the fault — ``send_all``/``recv`` simply stall
during recovery and the byte stream resumes exactly where it broke, so
delivery stays byte-identical and FIFO.

Wire format (all integers big-endian, on the established link)::

    DATA      = u8(1) u32(len) bytes      # len <= MAX_CHUNK
    ACK       = u8(2) u64(rx_off)         # cumulative delivered bytes
    PING      = u8(3)
    PONG      = u8(4) u64(rx_off)
    FIN       = u8(5) u64(fin_off)        # sender finished at fin_off
    FINACK    = u8(6) u64(fin_off)
    RESUME    = u8(7) u64(sid) u64(rx_off) u8(fin?) u64(fin_off)
    RESUME_OK = u8(8) u64(rx_off) u8(fin?) u64(fin_off)
    RETUNE    = u8(9) u64(max_buffer)     # advisory replay-window resize

``RESUME``/``RESUME_OK`` only ever appear as the first frame in each
direction of a re-established link; everything else flows on an attached
link.  A silent stall (a firewall eating packets without erroring — TCP
retransmits forever in the simulator) is detected by the initiator-side
watchdog: no inbound frame for ``dead_after`` seconds breaks the link
deliberately and enters the same recovery path.

Both roles send ``PING`` when their receive side has been idle for the
heartbeat interval.  Beyond keeping the watchdog fed, the responder's
pings double as middlebox keepalives: after a conntrack flush or NAT
table expiry any *outbound* packet from inside the site re-creates the
state entry, so a heartbeat from the quiet end often heals the stall at
the transport level before the watchdog has to force a reconnect.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Callable, Generator, Optional

from .. import obs
from ..obs import TraceContext
from ..obs.flight import FlightRecorder
from ..simnet.engine import with_timeout
from .links import Link, transport_errors
from .retry import RetryPolicy, retrying

__all__ = [
    "SessionLink",
    "SessionError",
    "SessionConfig",
    "SessionRegistry",
    "ReplayBuffer",
    "RESUME_POLICY",
    "MAX_CHUNK",
]

F_DATA = 1
F_ACK = 2
F_PING = 3
F_PONG = 4
F_FIN = 5
F_FINACK = 6
F_RESUME = 7
F_RESUME_OK = 8
F_RETUNE = 9

_DATA_HDR = struct.Struct("!BI")
_OFF_HDR = struct.Struct("!BQ")
_RESUME_HDR = struct.Struct("!BQQBQ")
_RESUME_OK_HDR = struct.Struct("!BQBQ")

#: largest payload per DATA frame (also the replay-retransmit chunk size)
MAX_CHUNK = 32768

#: backoff for re-running establishment after a mid-stream fault; total
#: nominal delay ~15s so recovery outlives short outages but exhausts
#: well inside a chaos run's drain window
RESUME_POLICY = RetryPolicy(
    max_attempts=6, base_delay=0.5, multiplier=2.0, max_delay=8.0, jitter=0.25
)

ACTIVE = "active"
RECOVERING = "recovering"
FINISHED = "finished"
FAILED = "failed"


class SessionError(Exception):
    """Session protocol failure or unrecoverable session loss."""


class _StaleLink(SessionError):
    """Internal: the link generation changed while waiting to send."""


@dataclass(frozen=True)
class SessionConfig:
    """Tuning knobs, settable from the spec layer (``session:ack=..,buf=..,hb=..``)."""

    ack_every: int = 65536
    max_buffer: int = 1 << 20
    heartbeat: float = 2.0
    dead_factor: float = 3.0
    resume_timeout: float = 20.0

    @property
    def dead_after(self) -> float:
        return self.heartbeat * self.dead_factor

    @classmethod
    def from_layer(cls, layer) -> "SessionConfig":
        """Build from a ``session`` :class:`~repro.core.utilization.spec.LayerSpec`."""
        if layer is None:
            return cls()
        return cls(
            ack_every=int(layer.get("ack", cls.ack_every)),
            max_buffer=int(layer.get("buf", cls.max_buffer)),
            heartbeat=float(layer.get("hb", cls.heartbeat)),
        )


class ReplayBuffer:
    """Unacknowledged sent bytes: a byte window [start, end) over the stream.

    ``append`` extends the window as data is sent; ``ack(off)`` trims it
    up to a cumulative delivered offset.  Stale (non-monotone) acks are
    ignored; an ack beyond what was ever sent is a protocol violation.
    """

    def __init__(self) -> None:
        self.start = 0
        self._data = bytearray()

    @property
    def end(self) -> int:
        return self.start + len(self._data)

    @property
    def size(self) -> int:
        return len(self._data)

    def append(self, data: bytes) -> None:
        self._data.extend(data)

    def ack(self, off: int) -> int:
        """Trim to cumulative offset ``off``; returns bytes released."""
        if off < self.start:
            return 0
        if off > self.end:
            raise SessionError(f"ack beyond sent data: {off} > {self.end}")
        cut = off - self.start
        del self._data[:cut]
        self.start = off
        return cut

    def unacked(self) -> bytes:
        return bytes(self._data)


class _Mutex:
    """FIFO mutex for generator processes (serializes writes to the raw link)."""

    def __init__(self, sim) -> None:
        self._sim = sim
        self._locked = False
        self._waiters: list = []

    def acquire(self) -> Generator:
        while self._locked:
            ev = self._sim.event()
            self._waiters.append(ev)
            yield ev
        self._locked = True

    def release(self) -> None:
        self._locked = False
        if self._waiters:
            self._waiters.pop(0).succeed()


class SessionLink(Link):
    """A logical stream that survives the death of its physical link.

    ``reconnect`` (initiator only) is a generator ``reconnect(session) ->
    Link`` that re-runs establishment to the same peer; the responder
    side is passive and re-attached through its node's
    :class:`SessionRegistry`.
    """

    INITIATOR = "initiator"
    RESPONDER = "responder"

    def __init__(
        self,
        raw: Link,
        sid: int,
        role: str,
        config: Optional[SessionConfig] = None,
        reconnect: Optional[Callable[["SessionLink"], Generator]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        peer: str = "",
        ctx: Optional[TraceContext] = None,
        node: str = "",
        flight: Optional[FlightRecorder] = None,
    ):
        if role not in (self.INITIATOR, self.RESPONDER):
            raise ValueError(f"bad session role {role!r}")
        if role == self.INITIATOR and reconnect is None:
            raise ValueError("initiator sessions need a reconnect callable")
        self.sid = sid
        self.role = role
        self.peer = peer
        #: causal identity of the connect that created this session — resume
        #: spans are children of it, so a reconnect shows up in the same
        #: trace as the original transfer
        self.ctx = ctx
        self.node = node
        self.flight = flight
        self._resume_ctx: Optional[TraceContext] = None
        self.config = config or SessionConfig()
        #: the peer's last advertised replay bound (RETUNE; informational)
        self.peer_max_buffer = 0
        self.reconnects = 0
        self.replayed_bytes = 0
        self._reconnect = reconnect
        self._retry_policy = retry_policy or RESUME_POLICY
        self._sim = raw.sim
        self._raw = raw
        self._gen = 0
        self._state = ACTIVE
        self._failure: Optional[Exception] = None
        self._registry: Optional["SessionRegistry"] = None
        # tx side
        self._replay = ReplayBuffer()
        self._tx_off = 0
        self._tx_fin: Optional[int] = None
        self._tx_fin_acked = False
        self._mutex = _Mutex(self._sim)
        self._window_waiters: list = []
        # rx side
        self._rx = bytearray()
        self._rx_off = 0
        self._rx_fin: Optional[int] = None
        self._rx_finack_sent = False
        self._last_ack_sent = 0
        self._last_rx = self._sim.now
        self._rx_waiters: list = []
        # coordination
        self._cond_waiters: list = []
        self._flags = {"ack": False, "pong": False, "finack": False, "ping": False}
        self._control_ev = None
        self._transport = transport_errors()
        obs.event(
            "session.established",
            ctx=ctx,
            node=node or None,
            sid=f"{sid:016x}",
            role=role,
            peer=peer,
        )
        self._note("session.established", ctx, sid=f"{sid:016x}", role=role)
        self._start_pump()
        self._sim.process(self._control_loop(), name=f"session-ctl-{sid:x}-{role[0]}")
        self._sim.process(
            self._heartbeat_loop(), name=f"session-hb-{sid:x}-{role[0]}"
        )

    def _note(self, name: str, ctx: Optional[TraceContext], **attrs) -> None:
        if self.flight is not None:
            self.flight.note(name, ctx=ctx or self.ctx, **attrs)

    # -- metadata ----------------------------------------------------------------
    @property
    def sim(self):
        return self._sim

    @property
    def method(self) -> str:  # type: ignore[override]
        return self._raw.method

    @property
    def native_tcp(self) -> bool:  # type: ignore[override]
        return self._raw.native_tcp

    @property
    def relayed(self) -> bool:  # type: ignore[override]
        return self._raw.relayed

    @property
    def state(self) -> str:
        return self._state

    @property
    def raw(self) -> Link:
        """The current physical link (changes across recoveries)."""
        return self._raw

    @property
    def acked_tx(self) -> int:
        """Cumulative sent bytes the peer has acknowledged delivered.

        The authority a rebalancing parallel stack uses to decide which
        blocks are safely down and which must be retransmitted over
        surviving members when this session cannot be resumed.
        """
        return self._replay.start

    @property
    def replay_occupancy(self) -> float:
        """Replay-buffer fill fraction in [0, 1] (the tuner's signal)."""
        return min(1.0, self._replay.size / max(1, self.config.max_buffer))

    def set_max_buffer(self, max_buffer: int) -> None:
        """Retune the replay-buffer bound mid-stream (tuner-driven).

        Growth releases any senders blocked on the old bound at once.
        Shrink is graceful: already-buffered bytes are never dropped —
        the window simply stops admitting new chunks until acks drain it
        below the new bound.  An advisory RETUNE frame tells the peer
        (informational; each side's bound is locally enforced).
        """
        max_buffer = int(max_buffer)
        if max_buffer <= 0:
            raise ValueError(f"max_buffer must be positive: {max_buffer}")
        old = self.config.max_buffer
        if max_buffer == old:
            return
        self.config = replace(self.config, max_buffer=max_buffer)
        if max_buffer > old:
            self._wake_window()
        obs.metrics().counter(
            "session.retunes_total", role=self.role).inc()
        obs.event(
            "session.retuned",
            ctx=self.ctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            old=old,
            new=max_buffer,
        )
        if self._state == ACTIVE:
            self._sim.process(
                self._send_retune(max_buffer),
                name=f"session-retune-{self.sid:x}",
            )

    def _send_retune(self, max_buffer: int) -> Generator:
        gen = self._gen
        try:
            yield from self._locked_send(
                gen, _OFF_HDR.pack(F_RETUNE, max_buffer)
            )
        except _StaleLink:
            pass  # advisory only: not worth replaying across recovery
        except self._transport as exc:
            self._transport_broken(gen, exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SessionLink {self.sid:016x} {self.role} {self._state}"
            f" tx={self._tx_off} rx={self._rx_off} over {self._raw!r}>"
        )

    # -- Link interface ----------------------------------------------------------
    def send_all(self, data: bytes) -> Generator:
        if self._tx_fin is not None:
            raise SessionError("send on closed session")
        view = memoryview(bytes(data))
        offset = 0
        while offset < len(view):
            yield from self._await_active()
            if self._replay.size >= self.config.max_buffer:
                # backpressure: wait for acks to release replay space
                ev = self._sim.event()
                self._window_waiters.append(ev)
                yield ev
                continue
            chunk = bytes(view[offset : offset + MAX_CHUNK])
            # into the replay buffer *before* the write: if the link dies
            # mid-frame the bytes are retransmitted after resume
            self._replay.append(chunk)
            self._tx_off += len(chunk)
            offset += len(chunk)
            gen = self._gen
            try:
                yield from self._locked_send(gen, _DATA_HDR.pack(F_DATA, len(chunk)) + chunk)
            except _StaleLink:
                pass  # recovery replays the chunk
            except self._transport as exc:
                self._transport_broken(gen, exc)

    def recv(self, maxbytes: int) -> Generator:
        while True:
            if self._rx:
                take = bytes(self._rx[:maxbytes])
                del self._rx[: len(take)]
                return take
            if self._failure is not None:
                raise SessionError(f"session {self.sid:016x} failed") from self._failure
            if self._rx_fin is not None and self._rx_off >= self._rx_fin:
                return b""
            ev = self._sim.event()
            self._rx_waiters.append(ev)
            yield ev

    def close(self) -> None:
        """Graceful close: FIN at the current offset, then linger until the
        peer has everything (FINACK) and has finished its own direction."""
        if self._state in (FINISHED, FAILED) or self._tx_fin is not None:
            return
        self._tx_fin = self._tx_off
        self._sim.process(self._closer(), name=f"session-close-{self.sid:x}-{self.role[0]}")

    def abort(self) -> None:
        self._fail(SessionError("session aborted"))

    # -- send-side plumbing ------------------------------------------------------
    def _locked_send(self, gen: int, data: bytes) -> Generator:
        yield from self._mutex.acquire()
        try:
            if gen != self._gen:
                raise _StaleLink("link replaced while waiting to send")
            yield from self._raw.send_all(data)
        finally:
            self._mutex.release()

    def _await_active(self) -> Generator:
        while self._state == RECOVERING:
            ev = self._sim.event()
            self._cond_waiters.append(ev)
            yield ev
        if self._state == FAILED:
            raise SessionError(f"session {self.sid:016x} failed") from self._failure
        if self._state == FINISHED:
            raise SessionError("session closed")

    def _wake_window(self) -> None:
        waiters, self._window_waiters = self._window_waiters, []
        for ev in waiters:
            ev.succeed()

    def _wake_rx(self) -> None:
        waiters, self._rx_waiters = self._rx_waiters, []
        for ev in waiters:
            ev.succeed()

    def _notify(self) -> None:
        waiters, self._cond_waiters = self._cond_waiters, []
        for ev in waiters:
            ev.succeed()
        self._poke_control()

    def _wait(self, cond) -> Generator:
        while not cond():
            ev = self._sim.event()
            self._cond_waiters.append(ev)
            yield ev

    # -- control channel ---------------------------------------------------------
    def _poke_control(self) -> None:
        ev = self._control_ev
        if ev is not None and not ev.triggered:
            self._control_ev = None
            ev.succeed()

    def _flag(self, name: str) -> None:
        self._flags[name] = True
        self._poke_control()

    def _control_loop(self) -> Generator:
        while True:
            if self._state in (FINISHED, FAILED):
                return
            pending = self._state == ACTIVE and any(self._flags.values())
            if not pending:
                ev = self._sim.event()
                self._control_ev = ev
                yield ev
                continue
            frames = []
            if self._flags["pong"]:
                frames.append(_OFF_HDR.pack(F_PONG, self._rx_off))
                self._last_ack_sent = self._rx_off
                self._flags["pong"] = False
                self._flags["ack"] = False
            elif self._flags["ack"]:
                frames.append(_OFF_HDR.pack(F_ACK, self._rx_off))
                self._last_ack_sent = self._rx_off
                self._flags["ack"] = False
            if self._flags["ping"]:
                frames.append(struct.pack("!B", F_PING))
                self._flags["ping"] = False
            sent_finack = False
            if (
                self._flags["finack"]
                and self._rx_fin is not None
                and self._rx_off >= self._rx_fin
            ):
                frames.append(_OFF_HDR.pack(F_FINACK, self._rx_fin))
                self._flags["finack"] = False
                sent_finack = True
            if not frames:
                continue
            gen = self._gen
            try:
                yield from self._locked_send(gen, b"".join(frames))
            except _StaleLink:
                continue
            except self._transport as exc:
                self._transport_broken(gen, exc)
                continue
            if sent_finack and not self._rx_finack_sent:
                self._rx_finack_sent = True
                self._notify()

    def _heartbeat_loop(self) -> Generator:
        hb = self.config.heartbeat
        while True:
            if self._state in (FINISHED, FAILED):
                return
            yield self._sim.timeout(hb)
            if self._state in (FINISHED, FAILED):
                return
            if self._state != ACTIVE:
                continue  # recovery paces itself
            idle = self._sim.now - self._last_rx
            if idle >= self.config.dead_after and self.role == self.INITIATOR:
                # silent stall: the transport never errored but the peer
                # went quiet — break the link on purpose and recover
                gen = self._gen
                obs.event(
                    "session.watchdog",
                    sid=f"{self.sid:016x}",
                    idle=round(idle, 3),
                )
                self._transport_broken(
                    gen, SessionError(f"peer silent for {idle:.1f}s")
                )
            elif idle >= hb:
                self._flag("ping")

    # -- inbound pump ------------------------------------------------------------
    def _start_pump(self) -> None:
        self._sim.process(
            self._pump(self._raw, self._gen),
            name=f"session-pump-{self.sid:x}-{self.role[0]}-g{self._gen}",
        )

    def _pump(self, raw: Link, gen: int) -> Generator:
        try:
            while True:
                head = yield from raw.recv_exactly(1)
                kind = head[0]
                self._last_rx = self._sim.now
                if kind == F_DATA:
                    body = yield from raw.recv_exactly(_DATA_HDR.size - 1)
                    (length,) = struct.unpack("!I", body)
                    if length == 0 or length > MAX_CHUNK:
                        raise SessionError(f"bad DATA length {length}")
                    payload = yield from raw.recv_exactly(length)
                    if gen != self._gen:
                        return
                    self._on_data(payload)
                elif kind == F_RETUNE:
                    body = yield from raw.recv_exactly(_OFF_HDR.size - 1)
                    (peer_buf,) = struct.unpack("!Q", body)
                    if gen != self._gen:
                        return
                    self.peer_max_buffer = peer_buf
                elif kind in (F_ACK, F_PONG, F_FIN, F_FINACK):
                    body = yield from raw.recv_exactly(_OFF_HDR.size - 1)
                    (off,) = struct.unpack("!Q", body)
                    if gen != self._gen:
                        return
                    if kind == F_ACK or kind == F_PONG:
                        self._on_ack(off)
                    elif kind == F_FIN:
                        self._on_fin(off)
                    else:
                        self._on_finack(off)
                elif kind == F_PING:
                    if gen != self._gen:
                        return
                    self._flag("pong")
                else:
                    raise SessionError(f"unexpected frame type {kind}")
        except SessionError as exc:
            if gen == self._gen and self._state not in (FINISHED, FAILED):
                self._fail(exc)  # protocol violation: not survivable
        except self._transport as exc:
            if gen != self._gen or self._state in (FINISHED, FAILED):
                return
            if (
                isinstance(exc, EOFError)
                and self._tx_fin is not None
                and self._tx_fin_acked
                and self._rx_fin is not None
                and self._rx_off >= self._rx_fin
            ):
                return  # normal teardown: the peer closed first
            self._transport_broken(gen, exc)

    def _on_data(self, payload: bytes) -> None:
        self._rx_off += len(payload)
        if self._rx_fin is not None and self._rx_off > self._rx_fin:
            raise SessionError("data past the peer's FIN offset")
        self._rx.extend(payload)
        self._wake_rx()
        if self._rx_fin is not None and self._rx_off >= self._rx_fin:
            self._flag("finack")
        if self._rx_off - self._last_ack_sent >= self.config.ack_every:
            self._flag("ack")

    def _on_ack(self, off: int) -> None:
        if self._replay.ack(off):
            self._wake_window()

    def _on_fin(self, off: int) -> None:
        if off < self._rx_off:
            raise SessionError(
                f"peer FIN at {off} below delivered offset {self._rx_off}"
            )
        self._rx_fin = off
        self._wake_rx()
        if self._rx_off >= off:
            self._flag("finack")
        self._notify()

    def _on_finack(self, off: int) -> None:
        if self._tx_fin is not None and off == self._tx_fin:
            self._replay.ack(off)
            self._wake_window()
            self._tx_fin_acked = True
            self._notify()

    # -- failure & recovery ------------------------------------------------------
    def _transport_broken(self, gen: int, exc: BaseException) -> None:
        if gen != self._gen or self._state != ACTIVE:
            return
        self._state = RECOVERING
        self._gen += 1
        obs.event(
            "session.broken",
            ctx=self.ctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            role=self.role,
            at_tx=self._tx_off,
            at_rx=self._rx_off,
            error=f"{type(exc).__name__}: {exc}",
        )
        self._note(
            "session.broken",
            None,
            sid=f"{self.sid:016x}",
            error=type(exc).__name__,
        )
        try:
            self._raw.abort()
        except Exception:
            pass
        if self.role == self.INITIATOR:
            self._sim.process(self._recovery(), name=f"session-recover-{self.sid:x}")
        self._notify()

    def _fail(self, exc: Exception) -> None:
        if self._state in (FINISHED, FAILED):
            return
        self._state = FAILED
        self._failure = exc
        self._gen += 1
        try:
            self._raw.abort()
        except Exception:
            pass
        if self._registry is not None:
            self._registry.remove(self.sid)
        obs.event(
            "session.failed",
            ctx=self.ctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            role=self.role,
            error=f"{type(exc).__name__}: {exc}",
        )
        self._note(
            "session.failed", None, sid=f"{self.sid:016x}", error=type(exc).__name__
        )
        self._wake_rx()
        self._wake_window()
        self._notify()

    def _recovery(self) -> Generator:
        started = self._sim.now
        # Each recovery is one child span of the session's originating
        # trace; the same ctx rides the re-establishment handshake and the
        # RESUME frame so relay/responder records join the tree.
        resume_ctx = self.ctx.child() if self.ctx is not None else None
        self._resume_ctx = resume_ctx
        with obs.span(
            "session.resume",
            ctx=resume_ctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            role=self.role,
        ) as span:
            retry_on = self._transport + (
                TimeoutError,
                SessionError,
                _establishment_errors(),
            )

            def attempt(_i: int) -> Generator:
                if self._state != RECOVERING:
                    raise _ResumeAborted("session no longer recovering")
                raw = yield from self._reconnect(self)
                try:
                    yield from with_timeout(
                        self._sim,
                        self._resume_initiator(raw),
                        self.config.resume_timeout,
                    )
                except BaseException:
                    try:
                        raw.abort()
                    except Exception:
                        pass
                    raise
                return None

            try:
                yield from retrying(
                    self._sim,
                    attempt,
                    self._retry_policy,
                    retry_on=retry_on,
                    key=f"session:{self.sid:x}",
                    name="session.reconnect",
                )
            except _ResumeAborted:
                span.set(outcome="aborted")
                return
            except Exception as exc:
                span.set(outcome="failed")
                self._fail(
                    SessionError(f"session {self.sid:016x} could not be resumed")
                )
                obs.event(
                    "session.resume_exhausted",
                    sid=f"{self.sid:016x}",
                    error=f"{type(exc).__name__}: {exc}",
                )
                return
            span.set(outcome="ok")
        self.reconnects += 1
        reg = obs.metrics()
        reg.counter("session.reconnects_total", role=self.role).inc()
        reg.histogram("session.resume_seconds").observe(self._sim.now - started)
        obs.event(
            "session.resumed",
            ctx=resume_ctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            role=self.role,
            after=round(self._sim.now - started, 6),
            reconnects=self.reconnects,
        )
        self._note(
            "session.resumed", resume_ctx,
            sid=f"{self.sid:016x}", reconnects=self.reconnects,
        )

    def _resume_initiator(self, raw: Link) -> Generator:
        fin = self._tx_fin
        # RESUME carries the recovery's trace context as a fixed 24-byte
        # trailer (all-zero = untraced) so the responder's records land in
        # the same span tree as the initiator's resume span.
        ctx = self._resume_ctx
        yield from raw.send_all(
            _RESUME_HDR.pack(
                F_RESUME, self.sid, self._rx_off, 1 if fin is not None else 0, fin or 0
            )
            + (ctx.encode() if ctx is not None else b"\0" * TraceContext.WIRE_SIZE)
        )
        buf = yield from raw.recv_exactly(_RESUME_OK_HDR.size)
        kind, peer_rx, fin_flag, fin_off = _RESUME_OK_HDR.unpack(buf)
        if kind != F_RESUME_OK:
            raise SessionError(f"expected RESUME_OK, got frame type {kind}")
        self._note_peer_fin(fin_flag, fin_off)
        yield from self._complete_resume(raw, peer_rx)

    def _resume_responder(self, raw: Link) -> Generator:
        buf = yield from raw.recv_exactly(_RESUME_HDR.size)
        kind, sid, peer_rx, fin_flag, fin_off = _RESUME_HDR.unpack(buf)
        if kind != F_RESUME or sid != self.sid:
            raise SessionError(f"bad RESUME (type {kind}, sid {sid:016x})")
        blob = yield from raw.recv_exactly(TraceContext.WIRE_SIZE)
        rctx: Optional[TraceContext] = None
        if any(blob):
            try:
                rctx = TraceContext.decode(blob).child()
            except ValueError:
                rctx = None
        self._note_peer_fin(fin_flag, fin_off)
        fin = self._tx_fin
        yield from raw.send_all(
            _RESUME_OK_HDR.pack(
                F_RESUME_OK, self._rx_off, 1 if fin is not None else 0, fin or 0
            )
        )
        yield from self._complete_resume(raw, peer_rx)
        self.reconnects += 1
        obs.metrics().counter("session.reconnects_total", role=self.role).inc()
        # events only on this side: the invariant layer counts every ok
        # ``session.resume`` *span* against the initiator reconnect counter
        obs.event(
            "session.resumed",
            ctx=rctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            role=self.role,
            reconnects=self.reconnects,
        )
        self._note(
            "session.resumed", rctx,
            sid=f"{self.sid:016x}", reconnects=self.reconnects,
        )

    def _note_peer_fin(self, fin_flag: int, fin_off: int) -> None:
        if not fin_flag:
            return
        if fin_off < self._rx_off:
            raise SessionError(
                f"peer FIN at {fin_off} below delivered offset {self._rx_off}"
            )
        self._rx_fin = fin_off

    def _complete_resume(self, raw: Link, peer_rx: int) -> Generator:
        """Trim the replay window to the peer's delivered offset, retransmit
        the rest (plus FIN, if we were closing) on the fresh link, then
        attach it.  Runs before anyone else can write to ``raw``, so
        replayed bytes keep their stream position."""
        if self._replay.ack(peer_rx):
            self._wake_window()
        pending = self._replay.unacked()
        for i in range(0, len(pending), MAX_CHUNK):
            chunk = pending[i : i + MAX_CHUNK]
            yield from raw.send_all(_DATA_HDR.pack(F_DATA, len(chunk)) + chunk)
        if self._tx_fin is not None:
            yield from raw.send_all(_OFF_HDR.pack(F_FIN, self._tx_fin))
        if pending:
            self.replayed_bytes += len(pending)
            obs.metrics().counter(
                "session.replayed_bytes_total", role=self.role
            ).inc(len(pending))
        self._attach(raw)
        # let the peer trim its replay window even if no data flows soon
        self._flag("ack")
        if self._rx_fin is not None and self._rx_off >= self._rx_fin:
            self._flag("finack")

    def _attach(self, raw: Link) -> None:
        self._raw = raw
        self._gen += 1
        self._state = ACTIVE
        self._last_rx = self._sim.now
        self._start_pump()
        self._wake_window()
        self._notify()

    def _reattach(self, raw: Link) -> Generator:
        """Responder side: adopt a re-established link (from the registry).

        Tolerates a session that never noticed the fault (silent stall):
        the surviving link is deliberately broken first.
        """
        if self._state in (FINISHED, FAILED):
            raise SessionError(f"session {self.sid:016x} is {self._state}")
        if self._state == ACTIVE:
            self._transport_broken(self._gen, SessionError("peer re-established"))
        try:
            yield from with_timeout(
                self._sim, self._resume_responder(raw), self.config.resume_timeout
            )
        except BaseException as exc:
            try:
                raw.abort()
            except Exception:
                pass
            obs.event(
                "session.reattach_failed",
                sid=f"{self.sid:016x}",
                error=f"{type(exc).__name__}: {exc}",
            )
            # stay in RECOVERING: the initiator retries

    # -- teardown ----------------------------------------------------------------
    def _closer(self) -> Generator:
        # send FIN on whatever link is current (recovery re-sends it)
        while True:
            try:
                yield from self._await_active()
            except SessionError:
                return  # failed (or finished by a concurrent path)
            gen = self._gen
            try:
                yield from self._locked_send(gen, _OFF_HDR.pack(F_FIN, self._tx_fin))
                break
            except _StaleLink:
                continue
            except self._transport as exc:
                self._transport_broken(gen, exc)
                continue
        yield from self._wait(
            lambda: self._state == FAILED
            or (
                self._tx_fin_acked
                and self._rx_fin is not None
                and self._rx_finack_sent
            )
        )
        if self._state == FAILED:
            return
        self._finish()

    def _finish(self) -> None:
        if self._state in (FINISHED, FAILED):
            return
        self._state = FINISHED
        if self._registry is not None:
            self._registry.remove(self.sid)
        obs.event(
            "session.finished",
            ctx=self.ctx,
            node=self.node or None,
            sid=f"{self.sid:016x}",
            role=self.role,
            tx=self._tx_off,
            rx=self._rx_off,
            reconnects=self.reconnects,
        )
        self._note(
            "session.finished",
            None,
            sid=f"{self.sid:016x}",
            reconnects=self.reconnects,
        )
        try:
            self._raw.close()
        except Exception:
            pass
        self._wake_rx()
        self._notify()


class _ResumeAborted(Exception):
    """Internal: recovery loop noticed the session is no longer recovering."""


def _establishment_errors():
    from .brokering import EstablishmentError

    return EstablishmentError


class SessionRegistry:
    """Per-node session table: tracks live sessions and serves re-attachment.

    The initiator of a broken session opens a routed link tagged
    ``sessres:<sid>`` to the responder's node; the registry's accept loop
    runs the establishment responder over it and hands the resulting raw
    link back to the surviving :class:`SessionLink`.
    """

    def __init__(self, node) -> None:
        self.node = node
        self.sim = node.sim
        self._sessions: dict[int, SessionLink] = {}
        self._acceptor = None
        self._closed = False

    def add(self, session: SessionLink) -> None:
        self._sessions[session.sid] = session
        session._registry = self
        if session.role == SessionLink.RESPONDER:
            self.ensure_acceptor()

    def get(self, sid: int) -> Optional[SessionLink]:
        return self._sessions.get(sid)

    def remove(self, sid: int) -> None:
        self._sessions.pop(sid, None)

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self):
        return iter(list(self._sessions.values()))

    def ensure_acceptor(self) -> None:
        if self._acceptor is None and not self._closed:
            self._acceptor = self.sim.process(
                self._accept_loop(), name=f"session-acceptor-{self.node.node_id}"
            )

    def close(self) -> None:
        """Node shutdown: abort whatever is still alive."""
        self._closed = True
        for session in list(self._sessions.values()):
            session.abort()
        self._sessions.clear()

    def _accept_loop(self) -> Generator:
        from .dispatch import RESUME_PREFIX

        while not self._closed:
            service = yield from self.node.dispatcher.accept_resume()
            try:
                sid = int(service.open_payload[len(RESUME_PREFIX) :], 16)
            except ValueError:
                service.close()
                continue
            self.sim.process(
                self._serve(sid, service), name=f"session-reattach-{sid:x}"
            )

    def _serve(self, sid: int, service) -> Generator:
        session = self._sessions.get(sid)
        if session is None or session.state in (FINISHED, FAILED):
            obs.event("session.resume_unknown", sid=f"{sid:016x}")
            service.close()
            return
        try:
            raw = yield from self.node.broker.respond(service)
        except Exception as exc:
            obs.event(
                "session.reattach_failed",
                sid=f"{sid:016x}",
                error=f"{type(exc).__name__}: {exc}",
            )
            service.close()
            return
        service.close()
        yield from session._reattach(raw)
