"""Routed messages through a relay on a gateway host (paper §3.3, Figure 3).

"When a node is started, it connects to the relay.  When a node wants to
establish a connection to another node, it sends a request to the relay,
which forwards the request to its final recipient."

* :class:`RelayServer` runs on a host visible from the Internet (a gateway
  machine or a public host).  It keeps one TCP connection per registered
  node and forwards frames between them.
* :class:`RelayClient` maintains a node's connection to the relay and
  multiplexes any number of :class:`RoutedLink` virtual streams over it.

Routed links satisfy the full :class:`~repro.core.links.Link` interface but
are *not* native TCP (Table 1), and every byte crosses the relay — which is
why they are meant for bootstrap/service traffic, "not supposed to be used
for data, except in extreme cases".
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Generator, Optional

from .. import obs
from ..obs import TraceContext
from ..obs.flight import FlightRecorder
from ..simnet.engine import Event, Simulator, any_of
from ..simnet.packet import Addr
from ..simnet.sockets import SimSocket, connect, listen
from ..simnet.tcp import TcpError
from ..util.framing import ByteReader, ByteWriter, FrameError
from .links import Link

__all__ = ["RelayServer", "RelayClient", "RoutedLink", "RelayError", "MAX_MSG"]

T_REGISTER = 1
T_REGISTER_OK = 2
T_OPEN = 3
T_MSG = 4
T_CLOSE = 5
T_ERROR = 6
T_PING = 7
#: relay<->relay anti-entropy exchange (mesh mode)
T_GOSSIP = 8
#: relay->client mesh view push (mesh mode)
T_MESH = 9
#: relay<->relay trunk hello: subsequent frames are forwarded routed bodies
T_TRUNK = 10

#: maximum payload per routed message
MAX_MSG = 32768


class RelayError(Exception):
    """Relay protocol failure (unknown peer, malformed frame, ...)."""


def _write_frame(sock, body: bytes) -> Generator:
    yield from sock.send_all(ByteWriter().u32(len(body)).raw(body).getvalue())


def _read_frame(sock) -> Generator:
    header = yield from sock.recv_exactly(4)
    length = int.from_bytes(header, "big")
    if length > MAX_MSG + 1024:
        raise RelayError(f"oversized frame ({length} bytes)")
    body = yield from sock.recv_exactly(length)
    return body


def _routed_body(
    kind: int,
    src: str,
    dst: str,
    channel: int,
    payload: bytes = b"",
    sender_owns_channel: bool = True,
    ctx: Optional[TraceContext] = None,
) -> bytes:
    """Channel ids are allocated by the endpoint that opened the channel,
    so every frame carries whose numbering ``channel`` belongs to —
    otherwise two nodes opening channels to each other would collide on
    (peer, channel).

    OPEN frames may carry a trailing 24-byte causal trace context; the
    relay and the accepting peer parent their spans on it, which is what
    stitches a routed path's three processes into one trace.
    """
    w = (
        ByteWriter()
        .u8(kind)
        .u8(1 if sender_owns_channel else 0)
        .lp_str(src)
        .lp_str(dst)
        .u64(channel)
        .lp_bytes(payload)
    )
    if ctx is not None:
        w.raw(ctx.encode())
    return w.getvalue()


class RelayServer:
    """The relay process: registration plus frame forwarding.

    In **mesh mode** (:meth:`enable_mesh`) the relay additionally runs
    seeded anti-entropy gossip rounds with its peer relays, declares
    silent peers dead through a deadline/phi detector, pushes its
    converged view to registered clients (``T_MESH``), and forwards
    frames whose destination is registered at *another* relay over a
    point-to-point trunk connection (``T_TRUNK``).  Trunk-delivered
    frames are only ever delivered locally — never re-forwarded — so the
    overlay cannot loop.
    """

    def __init__(self, host, port: int = 4000, name: str = "relay"):
        self.host = host
        self.port = port
        self.name = name
        self.sessions: dict[str, SimSocket] = {}
        self.forwarded_messages = 0
        self.forwarded_bytes = 0
        self._listener = None
        #: always-on black box: recent registrations/routes/errors
        self.flight = FlightRecorder(name, clock=lambda: host.sim.now)
        # open routed channels, keyed (opener, acceptor, channel):
        # [open time, opener's trace context (or None), forwarded bytes]
        self._routes: dict[tuple[str, str, int], list] = {}
        # -- mesh mode (all inert until enable_mesh) --
        self.relay_id: Optional[str] = None
        self.mesh = None  # MeshState once enabled
        self._mesh_config = None
        self._mesh_peers: dict[str, Addr] = {}
        self._mesh_rng: Optional[random.Random] = None
        self._incarnation = 0
        self._gossip_token: Optional[object] = None
        #: peer relay ids this relay refuses to gossip/trunk with (fault)
        self._partitioned: set[str] = set()
        #: outgoing trunk connections, keyed by peer relay id
        self._trunks: dict[str, SimSocket] = {}
        #: accepted (incoming) trunk connections, closed on stop()
        self._trunks_in: set = set()
        #: transient sockets in flight (gossip exchanges, accepted
        #: connections awaiting classification, trunk dials mid-hello),
        #: aborted on stop() so a mid-exchange crash/teardown leaks nothing
        self._inflight_socks: set = set()
        #: frames handed to / received from trunks (debug surface)
        self.trunk_tx = 0
        self.trunk_rx = 0

    @property
    def addr(self) -> Addr:
        return (self.host.ip, self.port)

    def start(self) -> None:
        self._listener = listen(self.host, self.port, backlog=64)
        self.host.sim.process(self._accept_loop(), name="relay-accept")
        if self.mesh is not None:
            # Restart after a crash: a fresh incarnation must dominate
            # stale rumours of the previous life, and silence accumulated
            # while we were down is not evidence of anyone's death.
            self._incarnation += 1
            self.mesh.restarted(self.host.sim.now)
            self._start_gossip()

    def stop(self) -> None:
        """Crash/stop the relay: drop every session and stop accepting."""
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        self._gossip_token = None
        for rid in list(self._trunks):
            self._drop_trunk(rid)
        for sock in list(self._trunks_in):
            sock.abort()
        self._trunks_in.clear()
        for sock in list(self._inflight_socks):
            sock.abort()
        self._inflight_socks.clear()
        self.flight.note("relay.stop", sessions=len(self.sessions))
        for key in list(self._routes):
            self._finish_route(key, "error", reason="relay stopped")
        for sock in list(self.sessions.values()):
            sock.abort()
        self.sessions.clear()

    # -- mesh mode -----------------------------------------------------------
    def enable_mesh(
        self,
        relay_id: str,
        peers: dict[str, Addr],
        seed,
        config=None,
    ) -> None:
        """Join the relay mesh as ``relay_id``.

        ``peers`` are the seed contacts (relay id -> address); the gossip
        partner set self-extends to any relay learned through merges, so
        a chain topology still converges end to end.
        """
        from ..mesh.config import DEFAULT_MESH_CONFIG
        from ..mesh.state import MeshState

        self.relay_id = relay_id
        self._mesh_config = config or DEFAULT_MESH_CONFIG
        self.mesh = MeshState(relay_id, self._mesh_config)
        self._mesh_peers = {
            rid: addr for rid, addr in peers.items() if rid != relay_id
        }
        self._mesh_rng = random.Random(f"{seed}:mesh:{relay_id}")
        self._incarnation += 1
        if self._listener is not None:
            self._start_gossip()

    def partition(self, peer_ids) -> None:
        """Fault hook: refuse gossip/trunks with these peer relays."""
        for rid in peer_ids:
            self._partitioned.add(rid)
            self._drop_trunk(rid)
        self.flight.note("mesh.partition", peers=sorted(self._partitioned))

    def heal_partition(self, peer_ids=None) -> None:
        healed = set(peer_ids) if peer_ids is not None else set(self._partitioned)
        self._partitioned -= healed
        self.flight.note("mesh.partition.healed", peers=sorted(healed))

    def _start_gossip(self) -> None:
        token = object()
        self._gossip_token = token
        self.host.sim.process(
            self._gossip_loop(token), name=f"mesh-gossip-{self.relay_id}"
        )

    def _gossip_loop(self, token: object) -> Generator:
        from ..mesh.state import decode_entries, encode_entries

        cfg = self._mesh_config
        reg = obs.metrics()
        while self._gossip_token is token and self._listener is not None:
            now = self.host.sim.now
            self.mesh.refresh_self(
                now,
                self.addr,
                load=len(self.sessions),
                nodes=self.sessions.keys(),
                incarnation=self._incarnation,
            )
            newly_dead = self.mesh.sweep(now)
            changed = bool(newly_dead)
            for rid in newly_dead:
                self.flight.note("mesh.dead", relay_id=rid)
                obs.event("mesh.relay_dead", node=self.name, relay=rid)
                self._drop_trunk(rid)
            partner = self._pick_partner()
            if partner is not None:
                partner_id, partner_addr = partner
                t0 = self.host.sim.now
                ok = True
                advanced: list[str] = []
                try:
                    sock = yield from connect(self.host, partner_addr)
                    self._inflight_socks.add(sock)
                    try:
                        yield from _write_frame(
                            sock,
                            ByteWriter()
                            .u8(T_GOSSIP)
                            .lp_str(self.relay_id)
                            .lp_bytes(encode_entries(self.mesh.entries.values()))
                            .getvalue(),
                        )
                        reply = yield from _read_frame(sock)
                        r = ByteReader(reply)
                        if r.u8() == T_GOSSIP:
                            r.lp_str()  # sender id
                            advanced = self.mesh.merge(
                                decode_entries(r.lp_bytes()), self.host.sim.now
                            )
                    finally:
                        self._inflight_socks.discard(sock)
                        sock.close()
                except (TcpError, EOFError, RelayError, FrameError):
                    ok = False
                reg.counter("mesh.gossip_rounds_total", relay=self.relay_id).inc()
                if advanced or not ok:
                    # Only state-changing (or failed) rounds become trace
                    # spans; steady-state rounds would drown the trace.
                    obs.record_span(
                        "mesh.gossip",
                        t0,
                        self.host.sim.now,
                        node=self.name,
                        peer=partner_id,
                        outcome="ok" if ok else "unreachable",
                        advanced=len(advanced),
                    )
                changed = changed or bool(advanced)
            reg.gauge("mesh.relays_alive", relay=self.relay_id).set(
                len(self.mesh.alive())
            )
            if changed:
                yield from self._push_mesh_views()
            jitter = (
                cfg.gossip_jitter
                * cfg.gossip_interval
                * (2.0 * self._mesh_rng.random() - 1.0)
            )
            yield self.host.sim.timeout(max(cfg.gossip_interval + jitter, 0.05))

    def _pick_partner(self) -> Optional[tuple[str, Addr]]:
        """A seeded-random live gossip partner (seeds + learned relays)."""
        candidates: dict[str, Addr] = dict(self._mesh_peers)
        for entry in self.mesh.alive():
            candidates.setdefault(entry.relay_id, entry.addr)
        eligible = sorted(
            rid
            for rid in candidates
            if rid != self.relay_id
            and rid not in self.mesh.dead
            and rid not in self._partitioned
        )
        if not eligible:
            return None
        rid = self._mesh_rng.choice(eligible)
        return rid, candidates[rid]

    def _mesh_view_frame(self) -> bytes:
        from ..mesh.state import encode_entries

        dead = sorted(self.mesh.dead)
        w = (
            ByteWriter()
            .u8(T_MESH)
            .lp_bytes(encode_entries(self.mesh.alive()))
            .u32(len(dead))
        )
        for rid in dead:
            w.lp_str(rid)
        return w.getvalue()

    def _push_mesh_views(self) -> Generator:
        """Best-effort view push to every registered client."""
        frame = self._mesh_view_frame()
        for sock in list(self.sessions.values()):
            try:
                yield from _write_frame(sock, frame)
            except (EOFError, TcpError):
                continue  # the session loop notices and unregisters

    def _serve_gossip(self, sock: SimSocket, reader: ByteReader) -> Generator:
        """Answer one incoming anti-entropy exchange (push-pull)."""
        from ..mesh.state import decode_entries, encode_entries

        sender = reader.lp_str()
        body = reader.lp_bytes()
        if self.mesh is None or sender in self._partitioned:
            sock.close()
            return
        self._inflight_socks.add(sock)
        try:
            advanced = self.mesh.merge(decode_entries(body), self.host.sim.now)
            yield from _write_frame(
                sock,
                ByteWriter()
                .u8(T_GOSSIP)
                .lp_str(self.relay_id)
                .lp_bytes(encode_entries(self.mesh.entries.values()))
                .getvalue(),
            )
            if advanced:
                yield from self._push_mesh_views()
            try:
                yield from _read_frame(sock)  # wait for the initiator's close
            except (EOFError, TcpError, RelayError, FrameError):
                pass
        finally:
            self._inflight_socks.discard(sock)
            sock.close()

    def _serve_trunk(self, sock: SimSocket, reader: ByteReader) -> Generator:
        """Serve an incoming trunk: deliver forwarded bodies locally."""
        peer_relay = reader.lp_str()
        if self.mesh is None or peer_relay in self._partitioned:
            sock.close()
            return
        self.flight.note("mesh.trunk.accept", peer=peer_relay)
        self._trunks_in.add(sock)
        try:
            while True:
                body = yield from _read_frame(sock)
                yield from self._deliver_trunk(body, sock)
        except (EOFError, RelayError, FrameError, TcpError):
            pass
        finally:
            self._trunks_in.discard(sock)
        sock.close()

    def _deliver_trunk(self, body: bytes, trunk_sock: SimSocket) -> Generator:
        """Deliver a trunk-forwarded routed body to a *local* session.

        Trunk frames are never re-forwarded to another relay — that is
        the loop-prevention rule of the overlay.  An unreachable local
        destination turns into a routed ``T_ERROR`` sent back over the
        same trunk, which the origin relay delivers to the opener.
        """
        reader = ByteReader(body)
        kind = reader.u8()
        if kind not in (T_OPEN, T_MSG, T_CLOSE, T_ERROR):
            raise RelayError(f"unexpected trunk frame type {kind}")
        reader.u8()  # ownership flag, forwarded untouched
        src = reader.lp_str()
        dst = reader.lp_str()
        channel = reader.u64()
        payload = reader.lp_bytes()
        self.trunk_rx += 1
        dest_sock = self.sessions.get(dst)
        if dest_sock is None:
            if kind != T_ERROR:  # errors about errors stop here
                yield from _write_frame(
                    trunk_sock,
                    _routed_body(
                        T_ERROR, dst, src, channel, b"unknown destination",
                        sender_owns_channel=False,
                    ),
                )
            return
        self.forwarded_messages += 1
        self.forwarded_bytes += len(payload)
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="sim").inc()
        reg.counter("relay.forwarded_bytes_total", backend="sim").inc(len(payload))
        try:
            yield from _write_frame(dest_sock, body)
        except (EOFError, TcpError):
            if self.sessions.get(dst) is dest_sock:
                del self.sessions[dst]
            dest_sock.abort()
            if kind != T_ERROR:
                yield from _write_frame(
                    trunk_sock,
                    _routed_body(
                        T_ERROR, dst, src, channel, b"unknown destination",
                        sender_owns_channel=False,
                    ),
                )

    def _get_trunk(self, relay_id: str, addr: Addr) -> Generator:
        """A live outgoing trunk to ``relay_id`` (dial on first use)."""
        sock = self._trunks.get(relay_id)
        if sock is not None:
            return sock
        try:
            sock = yield from connect(self.host, addr)
            self._inflight_socks.add(sock)
            try:
                yield from _write_frame(
                    sock,
                    ByteWriter().u8(T_TRUNK).lp_str(self.relay_id).getvalue(),
                )
            finally:
                self._inflight_socks.discard(sock)
        except (TcpError, EOFError):
            return None
        existing = self._trunks.get(relay_id)
        if existing is not None:
            # A concurrent forward dialed the same peer while we were
            # establishing; keep the winner, don't orphan our socket.
            sock.close()
            return existing
        self._trunks[relay_id] = sock
        self.flight.note("mesh.trunk.open", peer=relay_id)
        self.host.sim.process(
            self._trunk_reader(relay_id, sock),
            name=f"mesh-trunk-{self.relay_id}-{relay_id}",
        )
        return sock

    def _trunk_reader(self, relay_id: str, sock: SimSocket) -> Generator:
        """Read replies (routed errors, return traffic) off an outgoing trunk."""
        try:
            while True:
                body = yield from _read_frame(sock)
                yield from self._deliver_trunk(body, sock)
        except (EOFError, RelayError, FrameError, TcpError):
            pass
        if self._trunks.get(relay_id) is sock:
            del self._trunks[relay_id]
        sock.close()

    def _drop_trunk(self, relay_id: str) -> None:
        sock = self._trunks.pop(relay_id, None)
        if sock is not None:
            sock.abort()

    def _trunk_forward(
        self, dst: str, body: bytes, payload_len: int
    ) -> Generator:
        """Forward a routed body toward the relay owning ``dst``.

        Returns True when the frame was handed to a trunk; False sends
        the caller down the unknown-destination path.
        """
        if self.mesh is None:
            return False
        owner = self.mesh.owner_of(dst)
        if (
            owner is None
            or owner.relay_id == self.relay_id
            or owner.relay_id in self._partitioned
        ):
            return False
        trunk = yield from self._get_trunk(owner.relay_id, owner.addr)
        if trunk is None:
            return False
        try:
            yield from _write_frame(trunk, body)
        except (EOFError, TcpError):
            self._drop_trunk(owner.relay_id)
            return False
        self.trunk_tx += 1
        self.forwarded_messages += 1
        self.forwarded_bytes += payload_len
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="sim").inc()
        reg.counter("relay.forwarded_bytes_total", backend="sim").inc(payload_len)
        return True

    def _finish_route(self, key: tuple, outcome: str, **attrs) -> None:
        entry = self._routes.pop(key, None)
        if entry is None:
            return
        t0, ctx, nbytes = entry
        src, dst, channel = key
        obs.record_span(
            "relay.route",
            t0,
            self.host.sim.now,
            ctx=ctx,
            node=self.name,
            src=src,
            dst=dst,
            channel=channel,
            bytes=nbytes,
            outcome=outcome,
            **attrs,
        )
        self.flight.note(
            "relay.route.closed", ctx=ctx,
            src=src, dst=dst, channel=channel, bytes=nbytes, outcome=outcome,
        )

    def _accept_loop(self) -> Generator:
        from ..simnet.tcp import SocketClosed

        listener = self._listener
        try:
            while True:
                sock = yield from listener.accept()
                self.host.sim.process(self._session(sock), name="relay-session")
        except SocketClosed:
            return  # stopped

    def _session(self, sock: SimSocket) -> Generator:
        node_id: Optional[str] = None
        # Until the first frame classifies this connection it belongs to
        # no registry; track it so a stop() mid-hello leaks nothing.
        self._inflight_socks.add(sock)
        try:
            body = yield from _read_frame(sock)
            reader = ByteReader(body)
            first = reader.u8()
            self._inflight_socks.discard(sock)
            if first == T_GOSSIP:
                yield from self._serve_gossip(sock, reader)
                return
            if first == T_TRUNK:
                yield from self._serve_trunk(sock, reader)
                return
            if first != T_REGISTER:
                raise RelayError("expected REGISTER")
            node_id = reader.lp_str()
            if node_id in self.sessions:
                yield from _write_frame(
                    sock, ByteWriter().u8(T_ERROR).lp_str("duplicate id").getvalue()
                )
                sock.close()
                return
            self.sessions[node_id] = sock
            self.flight.note("relay.register", node_id=node_id)
            yield from _write_frame(sock, ByteWriter().u8(T_REGISTER_OK).getvalue())
            if self.mesh is not None:
                # New registrations learn the mesh immediately (their
                # route table needs the view before the first open).
                yield from _write_frame(sock, self._mesh_view_frame())

            while True:
                body = yield from _read_frame(sock)
                if body and body[0] == T_PING:
                    continue  # client keepalive: refreshes middlebox state
                yield from self._forward(node_id, body, sock)
        except (EOFError, RelayError, FrameError, TcpError):
            pass
        finally:
            self._inflight_socks.discard(sock)
            if node_id is not None and self.sessions.get(node_id) is sock:
                del self.sessions[node_id]
                self.flight.note("relay.unregister", node_id=node_id)
                for key in list(self._routes):
                    if node_id in (key[0], key[1]):
                        self._finish_route(key, "error", reason="session lost")
            sock.close()

    def _forward(self, src: str, body: bytes, src_sock: SimSocket) -> Generator:
        reader = ByteReader(body)
        kind = reader.u8()
        if kind not in (T_OPEN, T_MSG, T_CLOSE):
            raise RelayError(f"unexpected frame type {kind}")
        sender_owns = bool(reader.u8())  # flag itself forwarded untouched
        claimed_src = reader.lp_str()
        dst = reader.lp_str()
        channel = reader.u64()
        payload = reader.lp_bytes()
        if claimed_src != src:
            raise RelayError("source spoofing")
        # Channel identity in the opener's numbering, both directions.
        route_key = (src, dst, channel) if sender_owns else (dst, src, channel)
        if kind == T_OPEN:
            ctx = None
            if reader.remaining:
                try:
                    ctx = TraceContext.decode(reader.raw(reader.remaining))
                except ValueError:
                    ctx = None
            # The relay's route span is its own node in the causal tree,
            # a child of the opener's establishment attempt.
            self._routes[route_key] = [
                self.host.sim.now, ctx.child() if ctx is not None else None, 0
            ]
            self.flight.note(
                "relay.route.open",
                ctx=self._routes[route_key][1],
                src=src, dst=dst, channel=channel,
            )
        dest_sock = self.sessions.get(dst)
        if dest_sock is None and self.mesh is not None:
            # Not registered here — maybe at a peer relay (trunk hop).
            sent = yield from self._trunk_forward(dst, body, len(payload))
            if sent:
                route = self._routes.get(route_key)
                if route is not None:
                    route[2] += len(payload)
                if kind == T_CLOSE:
                    self._finish_route(route_key, "ok", via="trunk")
                return
        if dest_sock is None:
            # The error goes back to the channel's opener: from their point
            # of view the channel is their own numbering.
            self._finish_route(route_key, "error", reason="unknown destination")
            yield from _write_frame(
                src_sock,
                _routed_body(
                    T_ERROR, dst, src, channel, b"unknown destination",
                    sender_owns_channel=False,
                ),
            )
            return
        self.forwarded_messages += 1
        self.forwarded_bytes += len(payload)
        route = self._routes.get(route_key)
        if route is not None:
            route[2] += len(payload)
        reg = obs.metrics()
        reg.counter("relay.forwarded_total", backend="sim").inc()
        reg.counter("relay.forwarded_bytes_total", backend="sim").inc(len(payload))
        try:
            yield from _write_frame(dest_sock, body)
        except (EOFError, TcpError):
            # The destination died mid-write.  That is *its* problem, not
            # the sender's: drop the dead registration and answer exactly
            # as if the destination were already unknown, keeping the
            # sender's own session alive.
            if self.sessions.get(dst) is dest_sock:
                del self.sessions[dst]
            dest_sock.abort()
            self._finish_route(route_key, "error", reason="destination died")
            yield from _write_frame(
                src_sock,
                _routed_body(
                    T_ERROR, dst, src, channel, b"unknown destination",
                    sender_owns_channel=False,
                ),
            )
            return
        if kind == T_CLOSE:
            self._finish_route(route_key, "ok")


class ReflectorServer:
    """Address reflector (STUN-style): tells clients their observed address.

    Usually co-located with the relay on a public host; NAT traversal for
    TCP splicing probes its external mapping here (paper §3.2: splicing
    through NAT needs "a known and predictable port translation rule" —
    the probe is how a node learns its mapping under that rule).

    The connection stays open after the reply so the NAT mapping it pinned
    stays alive; the client closes it when done.
    """

    def __init__(self, host, port: int = 3478):
        self.host = host
        self.port = port
        self.probes = 0

    @property
    def addr(self) -> Addr:
        return (self.host.ip, self.port)

    def start(self) -> None:
        listener = listen(self.host, self.port, backlog=32)

        def accept_loop() -> Generator:
            while True:
                sock = yield from listener.accept()
                self.probes += 1
                self.host.sim.process(self._serve(sock), name="reflect")

        self.host.sim.process(accept_loop(), name="reflector-accept")

    def _serve(self, sock: SimSocket) -> Generator:
        ip, port = sock.raddr
        yield from sock.send_all(f"{ip}:{port}".ljust(32).encode())
        yield from sock.recv(1)  # wait for client close
        sock.close()


class RoutedLink(Link):
    """A virtual stream carried as routed messages through the relay."""

    method = "routed"
    native_tcp = False
    relayed = True

    def __init__(self, client: "RelayClient", peer: str, channel: int, owned: bool = True):
        self.client = client
        self.peer = peer
        self.channel = channel
        #: True when this endpoint allocated the channel id (opener side)
        self.owned = owned
        self._buffer = bytearray()
        self._waiters: list[tuple[Event, int]] = []
        self._eof = False
        self._error: Optional[Exception] = None
        self.closed = False
        #: the T_OPEN payload (purpose tag) this channel was opened with
        self.open_payload: bytes = b""
        #: causal context the channel was opened under (rides T_OPEN)
        self.ctx: Optional[TraceContext] = None

    @property
    def sim(self):
        return self.client.sim

    # -- data from the relay ---------------------------------------------------
    def _deliver(self, payload: bytes) -> None:
        self._buffer.extend(payload)
        self._wake()

    def _deliver_eof(self) -> None:
        self._eof = True
        self._wake()

    def _deliver_error(self, exc: Exception) -> None:
        self._error = exc
        self._eof = True
        self._wake()

    def _wake(self) -> None:
        while self._waiters and (self._buffer or self._eof):
            ev, maxbytes = self._waiters.pop(0)
            if self._buffer:
                take = bytes(self._buffer[:maxbytes])
                del self._buffer[: len(take)]
                ev.succeed(take)
            elif self._error is not None:
                ev.fail(self._error)
            else:
                ev.succeed(b"")

    # -- Link interface ----------------------------------------------------------
    def send_all(self, data: bytes) -> Generator:
        if self.closed:
            raise RelayError("send on closed routed link")
        for offset in range(0, len(data), MAX_MSG):
            chunk = bytes(data[offset : offset + MAX_MSG])
            yield from self.client._send_routed(
                T_MSG, self.peer, self.channel, chunk, owned=self.owned
            )

    def recv(self, maxbytes: int) -> Generator:
        ev: Event = self.client.sim.event()
        if self._buffer or self._eof:
            self._waiters.append((ev, maxbytes))
            self._wake()
        else:
            self._waiters.append((ev, maxbytes))
        data = yield ev
        return data

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.client._close_channel(self)
        # Local readers see EOF too (same as when the relay session dies),
        # so a pump parked on recv() cannot leak past the link's lifetime.
        self._deliver_eof()

    def abort(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.client._close_channel(self)
        self._deliver_error(RelayError("routed link aborted"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RoutedLink to {self.peer} ch={self.channel}>"


class RelayClient:
    """A node's connection to the relay; demultiplexes routed links.

    ``connector`` customizes how the relay itself is reached (e.g. through
    a SOCKS proxy on a severely firewalled site); it is a generator
    ``connector(host, relay_addr) -> stream``.

    With ``auto_reconnect`` the client transparently re-registers after
    losing its relay session (relay crash/restart, severed TCP): existing
    routed links are still EOF'd — frames in flight during the outage may
    be gone, so a raw routed stream cannot be resumed exactly-once — but
    new service/data links work again as soon as registration succeeds.
    Exactly-once mid-stream recovery on top of that is the session
    layer's job (:mod:`~repro.core.session`): a ``SessionLink`` re-runs
    establishment over the reconnected relay and negotiates a resume
    offset, replaying whatever the outage swallowed.
    """

    def __init__(
        self,
        host,
        node_id: str,
        relay_addr: Addr,
        connector: Optional[Callable] = None,
        auto_reconnect: bool = False,
        reconnect_policy=None,
        keepalive: float = 10.0,
    ):
        from .retry import RetryPolicy

        self.host = host
        self.sim: Simulator = host.sim
        self.node_id = node_id
        self.relay_addr = relay_addr
        self.connector = connector
        self.auto_reconnect = auto_reconnect
        #: seconds between T_PING frames to the relay (0 disables).  The
        #: ping keeps the registration's conntrack/NAT entries warm: after
        #: a firewall reboot flushes its table, the next outbound ping
        #: re-creates the entry and the relay's queued frames flow again.
        self.keepalive = keepalive
        self.reconnect_policy = reconnect_policy or RetryPolicy(
            max_attempts=10, base_delay=0.25, multiplier=2.0, max_delay=5.0
        )
        self._sock: Optional[SimSocket] = None
        # key: (peer, channel, owned_by_me)
        self._links: dict[tuple[str, int, bool], RoutedLink] = {}
        self._accept_queue: list[RoutedLink] = []
        self._accept_waiters: list[Event] = []
        self._connect_waiters: list[Event] = []
        self._channel_ids = itertools.count(1)
        self.connected = False
        #: True once :meth:`close` was called (suppresses reconnection)
        self.closed = False
        #: successful re-registrations after a lost session
        self.reconnects = 0
        #: latest relay-pushed mesh view (mesh mode; empty otherwise)
        self.mesh_view: list = []
        self.mesh_dead: frozenset = frozenset()
        self.mesh_view_seq = 0
        #: callback fired (with this client) on every new mesh view
        self.on_mesh_view: Optional[Callable[["RelayClient"], None]] = None

    # -- lifecycle -----------------------------------------------------------
    def connect(self) -> Generator:
        """Register with the relay and start the demux loop."""
        self.closed = False
        if self.connector is not None:
            self._sock = yield from self.connector(self.host, self.relay_addr)
        else:
            self._sock = yield from connect(self.host, self.relay_addr)
        yield from _write_frame(
            self._sock, ByteWriter().u8(T_REGISTER).lp_str(self.node_id).getvalue()
        )
        body = yield from _read_frame(self._sock)
        if ByteReader(body).u8() != T_REGISTER_OK:
            raise RelayError(f"registration rejected: {body!r}")
        self.connected = True
        for ev in self._connect_waiters:
            ev.succeed(self)
        self._connect_waiters.clear()
        self.sim.process(self._reader(), name=f"relay-client-{self.node_id}")
        if self.keepalive > 0:
            self.sim.process(
                self._keepalive_loop(self._sock),
                name=f"relay-keepalive-{self.node_id}",
            )
        return self

    def wait_connected(self, timeout: float = 30.0) -> Generator:
        """Wait until the client holds a live relay registration."""
        if self.connected:
            return self
        if self.closed:
            raise RelayError("relay client closed")
        ev = self.sim.event()
        self._connect_waiters.append(ev)
        expiry = self.sim.timeout(timeout)
        result = yield any_of(self.sim, [ev, expiry])
        if ev in result:
            return self
        try:
            self._connect_waiters.remove(ev)
        except ValueError:
            pass
        raise TimeoutError(f"relay connection not up within {timeout}s")

    def close(self) -> None:
        self.closed = True
        self.connected = False
        if self._sock is not None:
            self._sock.close()
        for link in list(self._links.values()):
            link._deliver_eof()

    def drop(self) -> None:
        """Fault-injection hook: sever the relay session abruptly.

        Unlike :meth:`close` this looks like a network failure — the
        session socket is reset, the relay sees the peer disappear
        mid-conversation, and (with ``auto_reconnect``) the client will
        try to re-register.
        """
        if self._sock is not None:
            self._sock.abort()

    def _keepalive_loop(self, sock: SimSocket) -> Generator:
        """Ping the relay periodically while this registration is alive."""
        while True:
            yield self.sim.timeout(self.keepalive)
            if self.closed or not self.connected or self._sock is not sock:
                return
            try:
                yield from _write_frame(sock, bytes([T_PING]))
            except (EOFError, TcpError, RelayError):
                return  # the reader notices the loss and handles it

    # -- outgoing ---------------------------------------------------------------
    def _send_routed(
        self,
        kind: int,
        peer: str,
        channel: int,
        payload: bytes,
        owned: bool = True,
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        if self._sock is None:
            raise RelayError("relay client not connected")
        yield from _write_frame(
            self._sock,
            _routed_body(
                kind, self.node_id, peer, channel, payload,
                sender_owns_channel=owned, ctx=ctx,
            ),
        )

    def open_link(
        self, peer: str, payload: bytes = b"",
        ctx: Optional[TraceContext] = None,
    ) -> Generator:
        """Open a routed link to ``peer`` (optimistic, like the paper's
        request forwarding; an unknown peer surfaces as a link error).

        ``payload`` tags the channel's purpose for the peer's dispatcher
        (e.g. ``b"service"`` vs ``b"data:<nonce>"``).  ``ctx`` rides the
        OPEN frame so the relay and the peer join this trace.
        """
        channel = next(self._channel_ids)
        link = RoutedLink(self, peer, channel, owned=True)
        link.open_payload = payload
        link.ctx = ctx
        self._links[(peer, channel, True)] = link
        obs.event(
            "relay.open", ctx=ctx, node=self.node_id, peer=peer, channel=channel
        )
        yield from self._send_routed(T_OPEN, peer, channel, payload, owned=True, ctx=ctx)
        return link

    def accept_link(self) -> Generator:
        """Wait for a peer-initiated routed link."""
        ev = self.sim.event()
        if self._accept_queue:
            ev.succeed(self._accept_queue.pop(0))
        else:
            self._accept_waiters.append(ev)
        link = yield ev
        return link

    def _close_channel(self, link: RoutedLink) -> None:
        self._links.pop((link.peer, link.channel, link.owned), None)
        if not self.connected:
            return

        def notify() -> Generator:
            # Best-effort: the relay session may die under us mid-frame
            # (crash, reset) — the peer learns about the close from its
            # own session loss in that case.
            try:
                yield from self._send_routed(
                    T_CLOSE, link.peer, link.channel, b"", owned=link.owned
                )
            except (EOFError, TcpError, RelayError):
                pass

        self.sim.process(notify(), name="routed-close")

    # -- incoming ----------------------------------------------------------------
    def _reader(self) -> Generator:
        from ..simnet.tcp import TcpError

        try:
            while True:
                body = yield from _read_frame(self._sock)
                self._dispatch(body)
        except (EOFError, RelayError, FrameError, TcpError) as exc:
            # Relay unreachable/crashed: every routed link is dead.  Close
            # our half too, so a FIN'd session can't linger in CLOSE_WAIT.
            self.connected = False
            if self._sock is not None:
                self._sock.close()
            for link in list(self._links.values()):
                link._deliver_eof()
            if self.auto_reconnect and not self.closed:
                obs.event(
                    "relay.client.lost",
                    node=self.node_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                self.sim.process(
                    self._reconnect_loop(),
                    name=f"relay-reconnect-{self.node_id}",
                )

    def _reconnect_loop(self) -> Generator:
        """Re-register with (jittered, bounded) backoff after a lost session."""
        from ..simnet.tcp import TcpError
        from .retry import RetryExhausted, retrying

        def attempt(_i: int) -> Generator:
            if self.closed:
                return None
            return (yield from self.connect())

        try:
            yield from retrying(
                self.sim,
                attempt,
                self.reconnect_policy,
                retry_on=(TcpError, RelayError, FrameError, EOFError),
                key=self.node_id,
                name="relay.client.reconnect",
            )
        except RetryExhausted:
            return  # stays disconnected; wait_connected() callers time out
        if self.connected:
            self.reconnects += 1
            obs.event(
                "relay.client.reconnected",
                node=self.node_id,
                reconnects=self.reconnects,
            )

    def _dispatch(self, body: bytes) -> None:
        reader = ByteReader(body)
        kind = reader.u8()
        if kind == T_MESH:
            from ..mesh.state import decode_entries

            try:
                entries = decode_entries(reader.lp_bytes())
                dead = frozenset(reader.lp_str() for _ in range(reader.u32()))
            except FrameError:
                return
            self.mesh_view = entries
            self.mesh_dead = dead
            self.mesh_view_seq += 1
            if self.on_mesh_view is not None:
                self.on_mesh_view(self)
            return
        try:
            sender_owns = bool(reader.u8())
            src = reader.lp_str()
            _dst = reader.lp_str()
            channel = reader.u64()
            payload = reader.lp_bytes()
        except FrameError:
            return
        ctx = None
        if kind == T_OPEN and reader.remaining:
            try:
                ctx = TraceContext.decode(reader.raw(reader.remaining))
            except ValueError:
                ctx = None
        # The frame names the channel in its owner's numbering: if the
        # sender owns it, locally it is a not-owned (accepted) channel.
        owned_by_me = not sender_owns
        key = (src, channel, owned_by_me)
        link = self._links.get(key)
        if kind == T_ERROR:
            if link is not None:
                link._deliver_error(RelayError(payload.decode("utf-8", "replace")))
            return
        if kind == T_OPEN:
            if link is None:
                link = RoutedLink(self, src, channel, owned=owned_by_me)
                link.open_payload = payload
                link.ctx = ctx
                self._links[key] = link
                if self._accept_waiters:
                    self._accept_waiters.pop(0).succeed(link)
                else:
                    self._accept_queue.append(link)
            return
        if link is None and kind == T_MSG and not owned_by_me:
            # Data for an unseen peer-opened channel: implicit open.
            link = RoutedLink(self, src, channel, owned=False)
            self._links[key] = link
            if self._accept_waiters:
                self._accept_waiters.pop(0).succeed(link)
            else:
                self._accept_queue.append(link)
        if link is None:
            return
        if kind == T_MSG:
            link._deliver(payload)
        elif kind == T_CLOSE:
            link._deliver_eof()
