"""Send and receive ports (paper §5).

"The IPL provides one elementary communication abstraction, unidirectional
message channels.  Endpoints of communication are send ports and receive
ports.  For supporting group communication, one send port might be
connected to multiple receive ports, and vice versa."

Every ``SendPort → ReceivePort`` connection is "an isolated,
unidirectional, FIFO-ordered virtual networking link" (§5.1): a brokered
driver-stack channel.  A send port connected to several receive ports
writes each finished message to every channel; a receive port fans
incoming channels into one FIFO message queue per arrival order.
"""

from __future__ import annotations

from typing import Generator, Optional

from .. import obs
from ..obs import TraceContext
from ..core.utilization.stream import BlockChannel
from ..simnet.engine import Event
from .identifiers import PortIdentifier
from .serialization import MessageReader, MessageWriter

__all__ = ["SendPort", "ReceivePort", "WriteMessage", "ReadMessage", "PortClosed"]


class PortClosed(Exception):
    """Operation on a closed port."""


class WriteMessage(MessageWriter):
    """A message under construction on a send port.

    Call the typed ``write_*`` methods, then ``finish()`` (a generator) to
    transmit to every connected receive port and release the port for the
    next message.
    """

    def __init__(self, port: "SendPort"):
        super().__init__()
        self._port = port
        self._finished = False

    def finish(self) -> Generator:
        if self._finished:
            raise PortClosed("message already finished")
        self._finished = True
        payload = self.getvalue()
        yield from self._port._transmit(payload)
        self._port._message_done(self)
        return len(payload)


class ReadMessage(MessageReader):
    """A received message; read items in the order they were written."""

    def __init__(
        self,
        payload: bytes,
        origin: Optional[str] = None,
        ctx: Optional[TraceContext] = None,
    ):
        super().__init__(payload)
        #: name of the sending Ibis node, when known
        self.origin = origin
        #: trace context that rode the message header, when the sender traced
        self.ctx = ctx


class SendPort:
    """The sending endpoint of unidirectional message channels."""

    def __init__(self, runtime, name: str):
        self.runtime = runtime
        self.name = name
        self.channels: dict[str, BlockChannel] = {}  # port name -> channel
        self._active_message: Optional[WriteMessage] = None
        self.closed = False
        self.messages_sent = 0
        self.bytes_sent = 0

    @property
    def identifier(self) -> PortIdentifier:
        return PortIdentifier(self.runtime.identifier, self.name)

    def connect(self, port_name: str, spec=None) -> Generator:
        """Connect to a named receive port (resolved via the name service).

        May be called multiple times — one send port, many receive ports.
        """
        if self.closed:
            raise PortClosed(f"send port {self.name} closed")
        if port_name in self.channels:
            raise ValueError(f"already connected to {port_name!r}")
        channel = yield from self.runtime._connect_port(self, port_name, spec)
        self.channels[port_name] = channel
        return channel

    def disconnect(self, port_name: str) -> None:
        channel = self.channels.pop(port_name, None)
        if channel is not None:
            channel.close()

    def new_message(self) -> WriteMessage:
        """Start a message (one at a time per send port, like the IPL)."""
        if self.closed:
            raise PortClosed(f"send port {self.name} closed")
        if not self.channels:
            raise PortClosed(f"send port {self.name} is not connected")
        if self._active_message is not None:
            raise PortClosed("previous message not finished")
        self._active_message = WriteMessage(self)
        return self._active_message

    def _transmit(self, payload: bytes) -> Generator:
        # One trace per IPL message: the same context rides every fan-out
        # channel's header, so all receive-side records share the tree.
        parent = obs.current()
        ctx = parent.child() if parent is not None else TraceContext.new()
        for channel in self.channels.values():
            yield from channel.send_message(payload, ctx=ctx)
        self.messages_sent += 1
        self.bytes_sent += len(payload)
        reg = obs.metrics()
        reg.counter("ipl.messages_total", port=self.name, direction="tx").inc()
        reg.histogram("ipl.message_bytes", port=self.name, direction="tx").observe(
            len(payload)
        )
        obs.event(
            "ipl.message", ctx=ctx, node=self.runtime.name,
            port=self.name, direction="tx", bytes=len(payload),
            fanout=len(self.channels),
        )

    def _message_done(self, message: WriteMessage) -> None:
        if self._active_message is message:
            self._active_message = None

    def close(self) -> None:
        self.closed = True
        for channel in self.channels.values():
            channel.close()
        self.channels.clear()


class ReceivePort:
    """The receiving endpoint; fans in any number of send ports."""

    def __init__(self, runtime, name: str):
        self.runtime = runtime
        self.name = name
        self._queue: list[ReadMessage] = []
        self._waiters: list[Event] = []
        self._channels: list[BlockChannel] = []
        self.closed = False
        self.messages_received = 0
        #: per-channel terminal errors (EOF is normal and not recorded)
        self.channel_errors: list[tuple[str, Exception]] = []

    @property
    def identifier(self) -> PortIdentifier:
        return PortIdentifier(self.runtime.identifier, self.name)

    # -- wiring (driven by the runtime) ---------------------------------------
    def _attach(self, channel: BlockChannel, origin: str) -> None:
        self._channels.append(channel)
        self.runtime.sim.process(
            self._pump(channel, origin), name=f"rcvport-{self.name}"
        )

    def _pump(self, channel: BlockChannel, origin: str) -> Generator:
        try:
            while True:
                payload = yield from channel.recv_message()
                rctx = channel.last_ctx.child() if channel.last_ctx else None
                message = ReadMessage(payload, origin=origin, ctx=rctx)
                self.messages_received += 1
                reg = obs.metrics()
                reg.counter(
                    "ipl.messages_total", port=self.name, direction="rx"
                ).inc()
                reg.histogram(
                    "ipl.message_bytes", port=self.name, direction="rx"
                ).observe(len(payload))
                obs.event(
                    "ipl.message", ctx=rctx, node=self.runtime.name,
                    port=self.name, direction="rx",
                    bytes=len(payload), origin=origin,
                )
                if self._waiters:
                    self._waiters.pop(0).succeed(message)
                else:
                    self._queue.append(message)
        except EOFError:
            return  # the sender disconnected cleanly
        except Exception as exc:
            # Record the failure so applications can inspect it; a dead
            # channel must not take the whole port (other senders) down.
            self.channel_errors.append((origin, exc))
            return

    # -- user API ---------------------------------------------------------------
    def receive(self) -> Generator:
        """The next message, FIFO across all connected senders."""
        if self.closed:
            raise PortClosed(f"receive port {self.name} closed")
        ev = self.runtime.sim.event()
        if self._queue:
            ev.succeed(self._queue.pop(0))
        else:
            self._waiters.append(ev)
        message = yield ev
        return message

    def poll(self) -> Optional[ReadMessage]:
        """Non-blocking receive; None when no message is queued."""
        if self._queue:
            return self._queue.pop(0)
        return None

    def close(self) -> None:
        self.closed = True
        for channel in self._channels:
            channel.close()
        self._channels.clear()
        for ev in self._waiters:
            ev.fail(PortClosed(f"receive port {self.name} closed"))
            ev.defused = True
        self._waiters.clear()
