"""The Ibis Portability Layer: ports, name service, typed messages.

The thin interface layer of Figure 5 — applications create an
:class:`~repro.ipl.runtime.Ibis` instance, register named receive ports,
connect send ports, and move typed messages over unidirectional FIFO
channels.  Everything below (establishment methods, driver stacks,
security) is configuration.
"""

from .collectives import CollectiveError, CollectiveGroup
from .identifiers import IbisIdentifier, PortIdentifier
from .ports import PortClosed, ReadMessage, ReceivePort, SendPort, WriteMessage
from .registry import RegistryClient, RegistryError, RegistryServer
from .runtime import Ibis, IbisError
from .serialization import MessageReader, MessageWriter, SerializationError

__all__ = [
    "Ibis",
    "IbisError",
    "CollectiveGroup",
    "CollectiveError",
    "IbisIdentifier",
    "PortIdentifier",
    "SendPort",
    "ReceivePort",
    "WriteMessage",
    "ReadMessage",
    "PortClosed",
    "RegistryServer",
    "RegistryClient",
    "RegistryError",
    "MessageWriter",
    "MessageReader",
    "SerializationError",
]
