"""The Ibis Name Service (paper §5).

"A registry, called Ibis Name Service, is provided to locate receive
ports, allowing to bootstrap connections."

The registry runs on a publicly reachable host.  Nodes keep a persistent
bootstrap connection to it (dialled directly, or through a SOCKS proxy on
severely firewalled sites) and use it to:

* register themselves with their :class:`~repro.core.addressing.EndpointInfo`
  (so peers can run the Figure 4 decision tree);
* register / unregister / look up named receive ports;
* run elections (first candidate wins — the Ibis election primitive).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..core.addressing import EndpointInfo
from ..core.wire import recv_frame, send_frame
from ..simnet.packet import Addr
from ..simnet.sockets import SimSocket, connect, listen
from ..util.framing import ByteReader, ByteWriter, FrameError

__all__ = ["RegistryServer", "RegistryClient", "RegistryState", "RegistryError"]

OP_REGISTER = 1
OP_LEAVE = 2
OP_LOOKUP_NODE = 3
OP_REGISTER_PORT = 4
OP_UNREGISTER_PORT = 5
OP_LOOKUP_PORT = 6
OP_ELECT = 7
OP_LIST = 8

ST_OK = 0
ST_ERR = 1


class RegistryError(Exception):
    """Name-service failure (unknown name, duplicate registration, ...)."""


class RegistryState:
    """The IO-free name-service state machine.

    Both the simulated and the live (asyncio) registry servers bind this
    to their transport; requests and replies are opaque frame bodies.
    """

    def __init__(self):
        # node name -> encoded EndpointInfo
        self.nodes: dict[str, bytes] = {}
        # port name -> node name
        self.ports: dict[str, str] = {}
        # election name -> winner
        self.elections: dict[str, str] = {}
        self.requests = 0

    def _drop_node(self, name: str) -> None:
        self.nodes.pop(name, None)
        for port, owner in list(self.ports.items()):
            if owner == name:
                del self.ports[port]

    def _handle(self, body: bytes, registered: Optional[str]):
        r = ByteReader(body)
        op = r.u8()
        ok = lambda payload=b"": ByteWriter().u8(ST_OK).raw(payload).getvalue()
        err = lambda msg: ByteWriter().u8(ST_ERR).lp_str(msg).getvalue()

        if op == OP_REGISTER:
            name = r.lp_str()
            info = r.lp_bytes()
            if name in self.nodes:
                return err(f"node {name!r} already registered"), registered
            self.nodes[name] = info
            return ok(), name
        if op == OP_LEAVE:
            name = r.lp_str()
            self._drop_node(name)
            return ok(), None if registered == name else registered
        if op == OP_LOOKUP_NODE:
            name = r.lp_str()
            info = self.nodes.get(name)
            if info is None:
                return err(f"unknown node {name!r}"), registered
            return ok(ByteWriter().lp_bytes(info).getvalue()), registered
        if op == OP_REGISTER_PORT:
            port_name = r.lp_str()
            owner = r.lp_str()
            if port_name in self.ports:
                return err(f"port {port_name!r} already registered"), registered
            if owner not in self.nodes:
                return err(f"owner {owner!r} not registered"), registered
            self.ports[port_name] = owner
            return ok(), registered
        if op == OP_UNREGISTER_PORT:
            port_name = r.lp_str()
            self.ports.pop(port_name, None)
            return ok(), registered
        if op == OP_LOOKUP_PORT:
            port_name = r.lp_str()
            owner = self.ports.get(port_name)
            if owner is None:
                return err(f"unknown port {port_name!r}"), registered
            info = self.nodes[owner]
            payload = ByteWriter().lp_str(owner).lp_bytes(info).getvalue()
            return ok(payload), registered
        if op == OP_ELECT:
            election = r.lp_str()
            candidate = r.lp_str()
            winner = self.elections.setdefault(election, candidate)
            return ok(ByteWriter().lp_str(winner).getvalue()), registered
        if op == OP_LIST:
            w = ByteWriter().u32(len(self.nodes))
            for name in self.nodes:
                w.lp_str(name)
            return ok(w.getvalue()), registered
        return err(f"unknown op {op}"), registered


class RegistryServer:
    """The simulated name-service process."""

    def __init__(self, host, port: int = 4100):
        self.host = host
        self.port = port
        self.state = RegistryState()

    # Back-compat accessors used throughout tests and benchmarks.
    @property
    def nodes(self) -> dict:
        return self.state.nodes

    @property
    def ports(self) -> dict:
        return self.state.ports

    @property
    def elections(self) -> dict:
        return self.state.elections

    @property
    def requests(self) -> int:
        return self.state.requests

    @property
    def addr(self) -> Addr:
        return (self.host.ip, self.port)

    def start(self) -> None:
        listener = listen(self.host, self.port, backlog=64)

        def accept_loop() -> Generator:
            while True:
                sock = yield from listener.accept()
                self.host.sim.process(self._session(sock), name="registry-session")

        self.host.sim.process(accept_loop(), name="registry-accept")

    def _session(self, sock: SimSocket) -> Generator:
        registered: Optional[str] = None
        try:
            while True:
                body = yield from recv_frame(sock)
                self.state.requests += 1
                reply, registered = self.state._handle(body, registered)
                yield from send_frame(sock, reply)
        except (EOFError, FrameError):
            pass
        finally:
            if registered is not None:
                self.state._drop_node(registered)
            sock.close()


class RegistryClient:
    """A node's persistent connection to the name service."""

    def __init__(self, host, registry_addr: Addr, connector: Optional[Callable] = None):
        self.host = host
        self.registry_addr = registry_addr
        self.connector = connector
        self._sock: Optional[SimSocket] = None

    def connect(self) -> Generator:
        if self.connector is not None:
            self._sock = yield from self.connector(self.host, self.registry_addr)
        else:
            self._sock = yield from connect(self.host, self.registry_addr)
        return self

    def close(self) -> None:
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def _call(self, body: bytes) -> Generator:
        if self._sock is None:
            raise RegistryError("registry client not connected")
        yield from send_frame(self._sock, body)
        reply = yield from recv_frame(self._sock)
        r = ByteReader(reply)
        if r.u8() == ST_OK:
            return r
        raise RegistryError(r.lp_str())

    # -- operations ------------------------------------------------------------
    def register(self, name: str, info: EndpointInfo) -> Generator:
        body = (
            ByteWriter().u8(OP_REGISTER).lp_str(name).lp_bytes(info.encode()).getvalue()
        )
        yield from self._call(body)

    def leave(self, name: str) -> Generator:
        yield from self._call(ByteWriter().u8(OP_LEAVE).lp_str(name).getvalue())

    def lookup_node(self, name: str) -> Generator:
        r = yield from self._call(
            ByteWriter().u8(OP_LOOKUP_NODE).lp_str(name).getvalue()
        )
        return EndpointInfo.decode(r.lp_bytes())

    def register_port(self, port_name: str, owner: str) -> Generator:
        body = (
            ByteWriter()
            .u8(OP_REGISTER_PORT)
            .lp_str(port_name)
            .lp_str(owner)
            .getvalue()
        )
        yield from self._call(body)

    def unregister_port(self, port_name: str) -> Generator:
        yield from self._call(
            ByteWriter().u8(OP_UNREGISTER_PORT).lp_str(port_name).getvalue()
        )

    def lookup_port(self, port_name: str) -> Generator:
        """Returns ``(owner_node_id, owner_EndpointInfo)``."""
        r = yield from self._call(
            ByteWriter().u8(OP_LOOKUP_PORT).lp_str(port_name).getvalue()
        )
        owner = r.lp_str()
        info = EndpointInfo.decode(r.lp_bytes())
        return owner, info

    def elect(self, election: str, candidate: str) -> Generator:
        r = yield from self._call(
            ByteWriter().u8(OP_ELECT).lp_str(election).lp_str(candidate).getvalue()
        )
        return r.lp_str()

    def list_nodes(self) -> Generator:
        r = yield from self._call(ByteWriter().u8(OP_LIST).getvalue())
        return [r.lp_str() for _ in range(r.u32())]
