"""The Ibis runtime instance (paper §5, Figure 5).

One :class:`Ibis` object per participating process wires together the whole
stack: the relay registration and broker (:class:`~repro.core.node.GridNode`),
the Ibis Name Service client, the brokered connection factory, and the
send/receive ports of the IPL.

Connection flow for ``send_port.connect("worker-in")``:

1. look up the receive port in the name service → owner node + its
   :class:`~repro.core.addressing.EndpointInfo`;
2. open a service link to the owner (routed via the relay — the bootstrap
   method that always works);
3. send a port-connect request naming the receive port;
4. the factory negotiates the driver-stack spec and establishes the data
   links via the Figure 4 decision tree with fall-back;
5. both sides assemble mirrored driver stacks; the channel is attached to
   the ports.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from .. import obs
from ..core.addressing import EndpointInfo
from ..core.factory import BrokeredConnectionFactory, TlsConfig
from ..core.node import GridNode
from ..core.utilization.spec import StackSpec, StackSpecError
from ..core.utilization.stack import build_stack
from ..core.utilization.stream import DEFAULT_BLOCK, BlockChannel
from ..core.wire import recv_frame, send_frame
from ..simnet.packet import Addr
from ..util.framing import ByteReader, ByteWriter, FrameError
from .identifiers import IbisIdentifier
from .ports import ReceivePort, SendPort
from .registry import RegistryClient

__all__ = [
    "Ibis",
    "IbisError",
    "encode_port_tag",
    "decode_port_tag",
    "is_port_tag",
]

REQ_PORT_CONNECT = 1
RESP_OK = 0
RESP_ERR = 1

#: mux OPEN tags carrying an in-band port-connect request start with this
#: magic.  The factory's conversation tags are exactly 8 nonce bytes, so
#: :func:`is_port_tag` requires the prefix AND a longer tag — it can never
#: steal a nonce tag, whatever the nonce's bytes happen to be.
PORT_TAG_MAGIC = b"ipl1"


def encode_port_tag(
    port_name: str, sender: str, spec: StackSpec, block_size: int
) -> bytes:
    """The OPEN tag for a fast port connect: the whole request, in-band.

    Carrying the request (and the stack agreement) inside the mux OPEN
    saves the service-link round trip the slow path spends on
    ``REQ_PORT_CONNECT``/``RESP_OK`` before negotiation even starts.
    """
    return (
        ByteWriter()
        .raw(PORT_TAG_MAGIC)
        .lp_str(port_name)
        .lp_str(sender)
        .lp_str(str(spec))
        .u32(block_size)
        .getvalue()
    )


def decode_port_tag(tag: bytes) -> tuple[str, str, str, int]:
    """``(port_name, sender, spec_text, block_size)`` from a port tag."""
    reader = ByteReader(tag)
    if reader.raw(len(PORT_TAG_MAGIC)) != PORT_TAG_MAGIC:
        raise FrameError("not a port-connect tag")
    port_name = reader.lp_str()
    sender = reader.lp_str()
    spec_text = reader.lp_str()
    block_size = reader.u32()
    reader.expect_end()
    return port_name, sender, spec_text, block_size


def is_port_tag(tag: bytes) -> bool:
    """Matcher for :meth:`MuxEndpoint.accept_channel`: claims only
    port-connect tags, never a factory conversation's 8-byte nonce."""
    return len(tag) > 8 and tag.startswith(PORT_TAG_MAGIC)


class IbisError(Exception):
    """Runtime-level failure (unknown port, rejected connect, ...)."""


class Ibis:
    """One Ibis instance: the application's entry point to the IPL."""

    def __init__(
        self,
        host,
        name: str,
        info: EndpointInfo,
        relay_addr: Addr,
        registry_addr: Addr,
        reflector_addr: Optional[Addr] = None,
        default_spec: Optional[StackSpec] = None,
        tls_config: Optional[TlsConfig] = None,
        connector: Optional[Callable] = None,
        pool: str = "default",
        auto_reconnect: bool = False,
        mesh_seed=0,
        mesh_config=None,
    ):
        self.host = host
        self.sim = host.sim
        self.name = name
        self.identifier = IbisIdentifier(name, pool)
        self.info = info
        if default_spec is not None and not isinstance(default_spec, StackSpec):
            raise TypeError(
                f"default_spec must be a StackSpec, got {type(default_spec).__name__}"
            )
        self.default_spec = default_spec or StackSpec.tcp()
        self.node = GridNode(
            host,
            info,
            relay_addr,
            reflector_addr=reflector_addr,
            connector=connector,
            auto_reconnect=auto_reconnect,
            mesh_seed=mesh_seed,
            mesh_config=mesh_config,
        )
        self.registry = RegistryClient(host, registry_addr, connector=connector)
        self.factory: Optional[BrokeredConnectionFactory] = None
        self.tls_config = tls_config
        self.receive_ports: dict[str, ReceivePort] = {}
        self.send_ports: dict[str, SendPort] = {}
        self.started = False
        #: shared mux endpoints that already have a fast-open accept loop
        self._port_acceptors: set = set()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Generator:
        """Join the grid: relay, name service, service-request loop."""
        yield from self.node.start()
        yield from self.registry.connect()
        yield from self.registry.register(self.name, self.info)
        self.factory = BrokeredConnectionFactory(self.node, self.tls_config)
        self.sim.process(self._service_loop(), name=f"ibis-{self.name}-services")
        self.started = True
        return self

    def leave(self) -> Generator:
        """Leave the pool: unregister and drop connections."""
        for port in list(self.send_ports.values()):
            port.close()
        for port in list(self.receive_ports.values()):
            port.close()
        yield from self.registry.leave(self.name)
        self.registry.close()
        self.node.stop()
        self.started = False

    # -- ports ---------------------------------------------------------------
    def create_receive_port(self, port_name: str) -> Generator:
        """Create and globally register a named receive port."""
        if port_name in self.receive_ports:
            raise IbisError(f"receive port {port_name!r} already exists")
        port = ReceivePort(self, port_name)
        yield from self.registry.register_port(port_name, self.name)
        self.receive_ports[port_name] = port
        return port

    def create_send_port(self, port_name: str) -> SendPort:
        """Create a send port (local object; connects on demand)."""
        if port_name in self.send_ports:
            raise IbisError(f"send port {port_name!r} already exists")
        port = SendPort(self, port_name)
        self.send_ports[port_name] = port
        return port

    def elect(self, election: str) -> Generator:
        """Run an election; returns the winner's node name."""
        winner = yield from self.registry.elect(election, self.name)
        return winner

    # -- connection machinery ---------------------------------------------------
    def _connect_port(
        self, send_port: SendPort, port_name: str, spec: Optional[StackSpec]
    ) -> Generator:
        if not self.started:
            raise IbisError("Ibis instance not started")
        owner, owner_info = yield from self.registry.lookup_port(port_name)
        parsed = spec or self.default_spec
        fast = yield from self._fast_connect(owner, port_name, parsed)
        if fast is not None:
            return fast
        service = yield from self.node.open_service_link(owner)
        request = (
            ByteWriter()
            .u8(REQ_PORT_CONNECT)
            .lp_str(port_name)
            .lp_str(self.name)
            .getvalue()
        )
        yield from send_frame(service, request)
        reply = yield from recv_frame(service)
        r = ByteReader(reply)
        if r.u8() != RESP_OK:
            raise IbisError(f"connect to {port_name!r} rejected: {r.lp_str()}")
        channel = yield from self.factory.connect(service, owner_info, spec=parsed)
        # a mux spec just created (or reused) a shared endpoint: serve
        # fast opens the peer may initiate over it from now on
        self._ensure_port_acceptors()
        return channel

    def _fast_connect(
        self, owner: str, port_name: str, parsed: StackSpec
    ) -> Generator:
        """Port connect carried in a mux OPEN tag — no service link at all.

        Applies when the spec is muxed (single channel, no session/tls
        layer, which would need per-link negotiation) and this node
        already shares a live mux endpoint with the owner: the OPEN tag
        carries the request plus the stack agreement, saving the slow
        path's ``REQ_PORT_CONNECT``/``RESP_OK`` round trip.  Returns
        ``None`` when the fast path does not apply.  Unlike the slow
        path, an unknown receive port surfaces on first use (the
        responder aborts the channel) rather than at connect time.
        """
        if (
            parsed.mux is None
            or parsed.session is not None
            or parsed.links_required != 1
            or any(layer.name == "tls" for layer in parsed.layers)
        ):
            return None
        endpoint = self.factory.shared_endpoint(owner)
        if endpoint is None:
            return None
        tag = encode_port_tag(port_name, self.name, parsed, DEFAULT_BLOCK)
        channel = yield from endpoint.open_channel(tag)
        stack = build_stack(parsed, [channel], host=self.node.host)
        obs.event(
            "ipl.fast_open", node=self.name, peer=owner, port=port_name
        )
        obs.metrics().counter("ipl.fast_opens_total", node=self.name).inc()
        return BlockChannel(stack, block_size=DEFAULT_BLOCK)

    def _ensure_port_acceptors(self) -> None:
        """Run a fast-open accept loop on every live shared mux endpoint."""
        seen = [cached[1] for cached in self.factory._shared_mux.values()]
        seen.extend(self.factory._shared_mux_resp.values())
        for endpoint in seen:
            if endpoint.alive and endpoint not in self._port_acceptors:
                self._port_acceptors.add(endpoint)
                self.sim.process(
                    self._port_accept_loop(endpoint),
                    name=f"ibis-{self.name}-fastopen",
                )

    def _port_accept_loop(self, endpoint) -> Generator:
        try:
            while endpoint.alive:
                channel = yield from endpoint.accept_channel(match=is_port_tag)
                self.sim.process(
                    self._serve_fast_open(channel),
                    name=f"ibis-{self.name}-fastserve",
                )
        except Exception:  # noqa: BLE001 - endpoint died; loop is done
            pass
        finally:
            self._port_acceptors.discard(endpoint)

    def _serve_fast_open(self, channel) -> Generator:
        try:
            port_name, sender, spec_text, block_size = decode_port_tag(
                channel.tag
            )
            parsed = StackSpec.parse(spec_text)
        except (FrameError, StackSpecError, UnicodeDecodeError):
            channel.abort()
            return
        port = self.receive_ports.get(port_name)
        if port is None or port.closed:
            channel.abort()
            return
        stack = build_stack(parsed, [channel], host=self.node.host)
        port._attach(BlockChannel(stack, block_size=block_size), origin=sender)
        return
        yield  # pragma: no cover - makes this a generator for sim.process

    def _service_loop(self) -> Generator:
        while True:
            peer, service = yield from self.node.accept_service_link()
            self.sim.process(
                self._serve_one(peer, service), name=f"ibis-{self.name}-serve"
            )

    def _serve_one(self, peer: str, service) -> Generator:
        try:
            request = yield from recv_frame(service)
        except (EOFError, Exception):
            return
        r = ByteReader(request)
        if r.u8() != REQ_PORT_CONNECT:
            yield from send_frame(
                service, ByteWriter().u8(RESP_ERR).lp_str("bad request").getvalue()
            )
            return
        port_name = r.lp_str()
        sender = r.lp_str()
        port = self.receive_ports.get(port_name)
        if port is None or port.closed:
            yield from send_frame(
                service,
                ByteWriter().u8(RESP_ERR).lp_str(f"no port {port_name!r}").getvalue(),
            )
            return
        yield from send_frame(service, ByteWriter().u8(RESP_OK).getvalue())
        channel = yield from self.factory.accept(service)
        self._ensure_port_acceptors()
        port._attach(channel, origin=sender)
