"""The Ibis runtime instance (paper §5, Figure 5).

One :class:`Ibis` object per participating process wires together the whole
stack: the relay registration and broker (:class:`~repro.core.node.GridNode`),
the Ibis Name Service client, the brokered connection factory, and the
send/receive ports of the IPL.

Connection flow for ``send_port.connect("worker-in")``:

1. look up the receive port in the name service → owner node + its
   :class:`~repro.core.addressing.EndpointInfo`;
2. open a service link to the owner (routed via the relay — the bootstrap
   method that always works);
3. send a port-connect request naming the receive port;
4. the factory negotiates the driver-stack spec and establishes the data
   links via the Figure 4 decision tree with fall-back;
5. both sides assemble mirrored driver stacks; the channel is attached to
   the ports.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..core.addressing import EndpointInfo
from ..core.factory import BrokeredConnectionFactory, TlsConfig
from ..core.node import GridNode
from ..core.utilization.spec import StackSpec
from ..core.wire import recv_frame, send_frame
from ..simnet.packet import Addr
from ..util.framing import ByteReader, ByteWriter
from .identifiers import IbisIdentifier
from .ports import ReceivePort, SendPort
from .registry import RegistryClient

__all__ = ["Ibis", "IbisError"]

REQ_PORT_CONNECT = 1
RESP_OK = 0
RESP_ERR = 1


class IbisError(Exception):
    """Runtime-level failure (unknown port, rejected connect, ...)."""


class Ibis:
    """One Ibis instance: the application's entry point to the IPL."""

    def __init__(
        self,
        host,
        name: str,
        info: EndpointInfo,
        relay_addr: Addr,
        registry_addr: Addr,
        reflector_addr: Optional[Addr] = None,
        default_spec: Optional[StackSpec] = None,
        tls_config: Optional[TlsConfig] = None,
        connector: Optional[Callable] = None,
        pool: str = "default",
        auto_reconnect: bool = False,
    ):
        self.host = host
        self.sim = host.sim
        self.name = name
        self.identifier = IbisIdentifier(name, pool)
        self.info = info
        if default_spec is not None and not isinstance(default_spec, StackSpec):
            raise TypeError(
                f"default_spec must be a StackSpec, got {type(default_spec).__name__}"
            )
        self.default_spec = default_spec or StackSpec.tcp()
        self.node = GridNode(
            host,
            info,
            relay_addr,
            reflector_addr=reflector_addr,
            connector=connector,
            auto_reconnect=auto_reconnect,
        )
        self.registry = RegistryClient(host, registry_addr, connector=connector)
        self.factory: Optional[BrokeredConnectionFactory] = None
        self.tls_config = tls_config
        self.receive_ports: dict[str, ReceivePort] = {}
        self.send_ports: dict[str, SendPort] = {}
        self.started = False

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> Generator:
        """Join the grid: relay, name service, service-request loop."""
        yield from self.node.start()
        yield from self.registry.connect()
        yield from self.registry.register(self.name, self.info)
        self.factory = BrokeredConnectionFactory(self.node, self.tls_config)
        self.sim.process(self._service_loop(), name=f"ibis-{self.name}-services")
        self.started = True
        return self

    def leave(self) -> Generator:
        """Leave the pool: unregister and drop connections."""
        for port in list(self.send_ports.values()):
            port.close()
        for port in list(self.receive_ports.values()):
            port.close()
        yield from self.registry.leave(self.name)
        self.registry.close()
        self.node.stop()
        self.started = False

    # -- ports ---------------------------------------------------------------
    def create_receive_port(self, port_name: str) -> Generator:
        """Create and globally register a named receive port."""
        if port_name in self.receive_ports:
            raise IbisError(f"receive port {port_name!r} already exists")
        port = ReceivePort(self, port_name)
        yield from self.registry.register_port(port_name, self.name)
        self.receive_ports[port_name] = port
        return port

    def create_send_port(self, port_name: str) -> SendPort:
        """Create a send port (local object; connects on demand)."""
        if port_name in self.send_ports:
            raise IbisError(f"send port {port_name!r} already exists")
        port = SendPort(self, port_name)
        self.send_ports[port_name] = port
        return port

    def elect(self, election: str) -> Generator:
        """Run an election; returns the winner's node name."""
        winner = yield from self.registry.elect(election, self.name)
        return winner

    # -- connection machinery ---------------------------------------------------
    def _connect_port(
        self, send_port: SendPort, port_name: str, spec: Optional[StackSpec]
    ) -> Generator:
        if not self.started:
            raise IbisError("Ibis instance not started")
        owner, owner_info = yield from self.registry.lookup_port(port_name)
        service = yield from self.node.open_service_link(owner)
        request = (
            ByteWriter()
            .u8(REQ_PORT_CONNECT)
            .lp_str(port_name)
            .lp_str(self.name)
            .getvalue()
        )
        yield from send_frame(service, request)
        reply = yield from recv_frame(service)
        r = ByteReader(reply)
        if r.u8() != RESP_OK:
            raise IbisError(f"connect to {port_name!r} rejected: {r.lp_str()}")
        channel = yield from self.factory.connect(
            service, owner_info, spec=spec or self.default_spec
        )
        return channel

    def _service_loop(self) -> Generator:
        while True:
            peer, service = yield from self.node.accept_service_link()
            self.sim.process(
                self._serve_one(peer, service), name=f"ibis-{self.name}-serve"
            )

    def _serve_one(self, peer: str, service) -> Generator:
        try:
            request = yield from recv_frame(service)
        except (EOFError, Exception):
            return
        r = ByteReader(request)
        if r.u8() != REQ_PORT_CONNECT:
            yield from send_frame(
                service, ByteWriter().u8(RESP_ERR).lp_str("bad request").getvalue()
            )
            return
        port_name = r.lp_str()
        sender = r.lp_str()
        port = self.receive_ports.get(port_name)
        if port is None or port.closed:
            yield from send_frame(
                service,
                ByteWriter().u8(RESP_ERR).lp_str(f"no port {port_name!r}").getvalue(),
            )
            return
        yield from send_frame(service, ByteWriter().u8(RESP_OK).getvalue())
        channel = yield from self.factory.accept(service)
        port._attach(channel, origin=sender)
