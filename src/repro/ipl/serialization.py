"""Typed message serialization (paper §5, Figure 5 "Serialization &
Communication").

The IPL carries *typed* messages: primitive values, strings, byte arrays,
numeric arrays and (as an escape hatch) pickled Python objects, each
tag-prefixed so a reader that drifts out of sync fails loudly instead of
silently misinterpreting bytes.

Numeric arrays use :mod:`array` machine encoding — the buffer-oriented
fast path (like Ibis' array serialization, or mpi4py's buffer protocol) —
rather than per-element boxing.
"""

from __future__ import annotations

import array
import pickle
import struct
import sys

from ..util.framing import FrameError

__all__ = ["MessageWriter", "MessageReader", "SerializationError"]

T_BOOL = 1
T_INT = 2
T_LONG = 3
T_DOUBLE = 4
T_STRING = 5
T_BYTES = 6
T_ARRAY = 7
T_OBJECT = 8
T_NDARRAY = 9

_TYPE_NAMES = {
    T_BOOL: "bool",
    T_INT: "int32",
    T_LONG: "int64",
    T_DOUBLE: "float64",
    T_STRING: "string",
    T_BYTES: "bytes",
    T_ARRAY: "array",
    T_OBJECT: "object",
    T_NDARRAY: "ndarray",
}


class SerializationError(Exception):
    """Type mismatch or malformed message data."""


class MessageWriter:
    """Serializes typed items into a message payload."""

    def __init__(self):
        self._parts: list[bytes] = []

    def _tag(self, tag: int) -> None:
        self._parts.append(bytes([tag]))

    def write_bool(self, value: bool) -> "MessageWriter":
        self._tag(T_BOOL)
        self._parts.append(b"\x01" if value else b"\x00")
        return self

    def write_int(self, value: int) -> "MessageWriter":
        self._tag(T_INT)
        self._parts.append(struct.pack("!i", value))
        return self

    def write_long(self, value: int) -> "MessageWriter":
        self._tag(T_LONG)
        self._parts.append(struct.pack("!q", value))
        return self

    def write_double(self, value: float) -> "MessageWriter":
        self._tag(T_DOUBLE)
        self._parts.append(struct.pack("!d", value))
        return self

    def write_string(self, value: str) -> "MessageWriter":
        data = value.encode("utf-8")
        self._tag(T_STRING)
        self._parts.append(struct.pack("!I", len(data)))
        self._parts.append(data)
        return self

    def write_bytes(self, value: bytes) -> "MessageWriter":
        self._tag(T_BYTES)
        self._parts.append(struct.pack("!I", len(value)))
        self._parts.append(bytes(value))
        return self

    def write_array(self, value: "array.array") -> "MessageWriter":
        """Machine-typed numeric array (the fast bulk path)."""
        if not isinstance(value, array.array):
            raise SerializationError(f"write_array needs array.array, got {type(value)}")
        data = value.tobytes()
        typecode = value.typecode.encode("ascii")
        self._tag(T_ARRAY)
        self._parts.append(typecode)
        self._parts.append(b"<" if sys.byteorder == "little" else b">")
        self._parts.append(struct.pack("!I", len(data)))
        self._parts.append(data)
        return self

    def write_ndarray(self, value) -> "MessageWriter":
        """NumPy array, zero-boxing buffer path (dtype + shape + raw data).

        The counterpart of mpi4py's upper-case buffer methods: the array's
        memory is shipped directly, not pickled element by element.
        """
        import numpy

        arr = numpy.asarray(value)
        if not arr.flags["C_CONTIGUOUS"]:
            # Note: ascontiguousarray would also promote 0-d to 1-d, so it
            # only runs when a copy is actually required.
            arr = numpy.ascontiguousarray(arr)
        dtype = arr.dtype.str.encode("ascii")  # includes byte order
        self._tag(T_NDARRAY)
        self._parts.append(struct.pack("!B", len(dtype)))
        self._parts.append(dtype)
        self._parts.append(struct.pack("!B", arr.ndim))
        for dim in arr.shape:
            self._parts.append(struct.pack("!Q", dim))
        data = arr.tobytes()
        self._parts.append(struct.pack("!I", len(data)))
        self._parts.append(data)
        return self

    def write_object(self, value) -> "MessageWriter":
        """Arbitrary picklable object (slow path, like Java serialization)."""
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._tag(T_OBJECT)
        self._parts.append(struct.pack("!I", len(data)))
        self._parts.append(data)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._parts)

    @property
    def size(self) -> int:
        return sum(len(p) for p in self._parts)


class MessageReader:
    """Deserializes typed items, enforcing type agreement."""

    def __init__(self, payload: bytes):
        self._data = payload
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise SerializationError("message truncated")
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def _expect(self, tag: int) -> None:
        got = self._take(1)[0]
        if got != tag:
            raise SerializationError(
                f"type mismatch: expected {_TYPE_NAMES.get(tag, tag)}, "
                f"found {_TYPE_NAMES.get(got, got)}"
            )

    def read_bool(self) -> bool:
        self._expect(T_BOOL)
        return self._take(1) == b"\x01"

    def read_int(self) -> int:
        self._expect(T_INT)
        return struct.unpack("!i", self._take(4))[0]

    def read_long(self) -> int:
        self._expect(T_LONG)
        return struct.unpack("!q", self._take(8))[0]

    def read_double(self) -> float:
        self._expect(T_DOUBLE)
        return struct.unpack("!d", self._take(8))[0]

    def read_string(self) -> str:
        self._expect(T_STRING)
        length = struct.unpack("!I", self._take(4))[0]
        return self._take(length).decode("utf-8")

    def read_bytes(self) -> bytes:
        self._expect(T_BYTES)
        length = struct.unpack("!I", self._take(4))[0]
        return self._take(length)

    def read_array(self) -> "array.array":
        self._expect(T_ARRAY)
        typecode = self._take(1).decode("ascii")
        byteorder = self._take(1)
        length = struct.unpack("!I", self._take(4))[0]
        out = array.array(typecode)
        out.frombytes(self._take(length))
        native = b"<" if sys.byteorder == "little" else b">"
        if byteorder != native:
            out.byteswap()
        return out

    def read_ndarray(self):
        """NumPy array written with :meth:`MessageWriter.write_ndarray`."""
        import numpy

        self._expect(T_NDARRAY)
        dtype_len = struct.unpack("!B", self._take(1))[0]
        dtype = numpy.dtype(self._take(dtype_len).decode("ascii"))
        ndim = struct.unpack("!B", self._take(1))[0]
        shape = tuple(
            struct.unpack("!Q", self._take(8))[0] for _ in range(ndim)
        )
        length = struct.unpack("!I", self._take(4))[0]
        return numpy.frombuffer(self._take(length), dtype=dtype).reshape(shape).copy()

    def read_object(self):
        self._expect(T_OBJECT)
        length = struct.unpack("!I", self._take(4))[0]
        return pickle.loads(self._take(length))

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def finish(self) -> None:
        """Assert the message was fully consumed."""
        if self.remaining:
            raise SerializationError(f"{self.remaining} unread bytes in message")
