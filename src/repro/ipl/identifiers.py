"""Location-independent Ibis identifiers (paper §5).

"Unlike many message passing systems, the IPL has no concept of hosts or
threads, but uses location-independent Ibis identifiers to identify Ibis
nodes."  An identifier names a node within a pool; receive ports are named
``<ibis-name>/<port-name>`` strings resolved through the name service.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.framing import ByteReader, ByteWriter

__all__ = ["IbisIdentifier", "PortIdentifier"]


@dataclass(frozen=True)
class IbisIdentifier:
    """Identity of one Ibis instance (node) in a pool."""

    name: str
    pool: str = "default"

    def encode(self) -> bytes:
        return ByteWriter().lp_str(self.name).lp_str(self.pool).getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "IbisIdentifier":
        r = ByteReader(data)
        return cls(name=r.lp_str(), pool=r.lp_str())

    def __str__(self) -> str:
        return f"{self.pool}:{self.name}"


@dataclass(frozen=True)
class PortIdentifier:
    """Identity of a receive port: which node it lives on, and its name."""

    ibis: IbisIdentifier
    port_name: str

    def encode(self) -> bytes:
        return ByteWriter().lp_bytes(self.ibis.encode()).lp_str(self.port_name).getvalue()

    @classmethod
    def decode(cls, data: bytes) -> "PortIdentifier":
        r = ByteReader(data)
        return cls(ibis=IbisIdentifier.decode(r.lp_bytes()), port_name=r.lp_str())

    def __str__(self) -> str:
        return f"{self.ibis}/{self.port_name}"
