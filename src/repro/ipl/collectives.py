"""WAN-aware collective operations over the IPL (MagPIe-style).

The paper's group cites the authors' MagPIe library: "optimizes the
performance of MPI's collective operations in grid systems" by ensuring
every wide-area link is traversed at most once — a broadcast crosses the
WAN once per remote *cluster* (to a coordinator that fans out locally)
instead of once per remote *member*.

:class:`CollectiveGroup` implements that structure on top of IPL send and
receive ports: a static two-level tree rooted at a designated member, with
one coordinator per cluster.  ``broadcast``, ``reduce`` and ``barrier``
are provided; a flat (cluster-oblivious) mode serves as the baseline the
ablation benchmark compares against.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from .ports import ReceivePort, SendPort
from .runtime import Ibis

__all__ = ["CollectiveGroup", "CollectiveError"]


class CollectiveError(Exception):
    """Group misconfiguration or protocol failure."""


class CollectiveGroup:
    """One member's view of a collective group.

    Every member constructs the group with identical parameters
    (deterministic topology) and calls :meth:`setup`; afterwards the
    collective operations can be invoked in the same order on every
    member (standard collective semantics).

    Parameters
    ----------
    ibis:
        This member's runtime.
    name:
        Group name (namespaces the ports).
    members:
        All member node names.
    clusters:
        ``member -> cluster name`` (e.g. derived from sites).
    root:
        The tree root (defaults to the first member).
    wan_aware:
        If False, a flat topology is used — the root talks to every member
        directly across the WAN (the baseline MagPIe improves on).
    """

    def __init__(
        self,
        ibis: Ibis,
        name: str,
        members: list[str],
        clusters: dict[str, str],
        root: Optional[str] = None,
        wan_aware: bool = True,
    ):
        if sorted(set(members)) != sorted(members):
            raise CollectiveError("duplicate members")
        if set(clusters) != set(members):
            raise CollectiveError("clusters must cover exactly the members")
        self.ibis = ibis
        self.name = name
        self.members = list(members)
        self.clusters = dict(clusters)
        self.root = root or members[0]
        if self.root not in members:
            raise CollectiveError(f"root {self.root!r} not a member")
        self.me = ibis.name
        if self.me not in members:
            raise CollectiveError(f"{self.me!r} not in the group")
        self.wan_aware = wan_aware
        self._receive_port: Optional[ReceivePort] = None
        self._send_ports: dict[str, SendPort] = {}
        self._op_seq = 0
        # (op, seq) -> [(origin, payload)]: messages that arrived ahead of
        # the operation this member is currently executing (a fast sender
        # may race ahead to its next collective)
        self._pending: dict[tuple, list] = {}

    # -- topology ---------------------------------------------------------
    def coordinator(self, cluster: str) -> str:
        """The cluster's coordinator: the root if it lives there, else the
        first member of the cluster."""
        if self.clusters[self.root] == cluster:
            return self.root
        return min(m for m in self.members if self.clusters[m] == cluster)

    @property
    def my_cluster(self) -> str:
        return self.clusters[self.me]

    @property
    def is_coordinator(self) -> bool:
        return self.coordinator(self.my_cluster) == self.me

    def children(self) -> list[str]:
        """Members this node sends to in a root-to-leaves sweep."""
        if not self.wan_aware:
            return [m for m in self.members if m != self.root] if self.me == self.root else []
        if self.me == self.root:
            remote_coords = [
                self.coordinator(c)
                for c in sorted(set(self.clusters.values()))
                if c != self.my_cluster
            ]
            local = [
                m
                for m in self.members
                if self.clusters[m] == self.my_cluster and m != self.me
            ]
            return remote_coords + local
        if self.is_coordinator:
            return [
                m
                for m in self.members
                if self.clusters[m] == self.my_cluster and m != self.me
            ]
        return []

    def parent(self) -> Optional[str]:
        """The member this node receives from in a root-to-leaves sweep."""
        if self.me == self.root:
            return None
        if not self.wan_aware:
            return self.root
        coord = self.coordinator(self.my_cluster)
        if self.me == coord:
            return self.root
        return coord

    # -- wiring ------------------------------------------------------------
    def _port_name(self, member: str) -> str:
        return f"coll:{self.name}:{member}"

    def setup(self) -> Generator:
        """Create this member's port and connect the tree edges.

        Every edge is wired in both directions (down-sweep for broadcast,
        up-sweep for reduce/barrier).
        """
        self._receive_port = yield from self.ibis.create_receive_port(
            self._port_name(self.me)
        )
        neighbours = list(self.children())
        if self.parent() is not None:
            neighbours.append(self.parent())
        for peer in neighbours:
            port = self.ibis.create_send_port(f"coll:{self.name}:to:{peer}")
            while True:
                try:
                    yield from port.connect(self._port_name(peer))
                    break
                except Exception:
                    yield self.ibis.sim.timeout(0.2)
            self._send_ports[peer] = port

    # -- primitives ----------------------------------------------------------
    def _send(self, peer: str, op: str, seq: int, payload) -> Generator:
        message = self._send_ports[peer].new_message()
        message.write_string(op)
        message.write_int(seq)
        message.write_object(payload)
        yield from message.finish()

    def _recv(self, op: str, seq: int) -> Generator:
        key = (op, seq)
        stash = self._pending.get(key)
        if stash:
            item = stash.pop(0)
            if not stash:
                del self._pending[key]
            return item
        while True:
            message = yield from self._receive_port.receive()
            got_op = message.read_string()
            got_seq = message.read_int()
            payload = message.read_object()
            if (got_op, got_seq) == key:
                return message.origin, payload
            if got_seq < seq:
                raise CollectiveError(
                    f"stale collective message {got_op}#{got_seq} "
                    f"while executing {op}#{seq}"
                )
            # A sender raced ahead: park its message for the later op.
            self._pending.setdefault((got_op, got_seq), []).append(
                (message.origin, payload)
            )

    # -- operations -----------------------------------------------------------
    def broadcast(self, value=None) -> Generator:
        """Root's ``value`` delivered to every member; returns it."""
        self._op_seq += 1
        seq = self._op_seq
        if self.me != self.root:
            _origin, value = yield from self._recv("bcast", seq)
        for child in self.children():
            yield from self._send(child, "bcast", seq, value)
        return value

    def reduce(self, value, op: Callable) -> Generator:
        """Combine every member's ``value`` with ``op`` at the root.

        Returns the reduction at the root, None elsewhere.  ``op`` must be
        associative and commutative (partial reductions happen at
        coordinators — the MagPIe trick that keeps WAN traffic at one
        message per cluster).
        """
        self._op_seq += 1
        seq = self._op_seq
        accumulated = value
        for _child in self.children():
            _origin, contribution = yield from self._recv("reduce", seq)
            accumulated = op(accumulated, contribution)
        parent = self.parent()
        if parent is not None:
            yield from self._send(parent, "reduce", seq, accumulated)
            return None
        return accumulated

    def barrier(self) -> Generator:
        """All members arrive before any leaves (reduce + broadcast)."""
        self._op_seq += 1
        seq = self._op_seq
        for _child in self.children():
            yield from self._recv("barrier-up", seq)
        parent = self.parent()
        if parent is not None:
            yield from self._send(parent, "barrier-up", seq, None)
            _origin, _none = yield from self._recv("barrier-down", seq)
        for child in self.children():
            yield from self._send(child, "barrier-down", seq, None)

    def allreduce(self, value, op: Callable) -> Generator:
        """Reduce followed by broadcast: everyone gets the result."""
        reduced = yield from self.reduce(value, op)
        result = yield from self.broadcast(reduced)
        return result
